//! The VM-wide permission decision cache.
//!
//! Stack-inspection checks are highly cacheable: the set of domains on a
//! stack, the demanded permission, and the running user fully determine the
//! decision, and all three change far more slowly than checks are issued.
//! [`DecisionCache`] memoizes **granted** decisions keyed by
//! `(context fingerprint, demand, running user)`; denials are deliberately
//! never cached, so every denial re-runs the full walk and re-derives the
//! exact refusing-domain audit message (the audit-exactness invariant).
//!
//! Invalidation is epoch-based: every entry records the epoch it was derived
//! under, and anything that can change a decision — `set_policy`,
//! `set_security_manager`, a user-resolver change — bumps the epoch, which
//! kills every stale entry at once without a sweep. Entries are *inserted*
//! with the epoch captured **before** the policy walk began, so a reload
//! that races a concurrent walk invalidates the in-flight result too: the
//! walker's captured epoch no longer matches and its insert can never serve
//! a future lookup.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jmp_obs::{DemandCell, DemandLedger};
use jmp_security::{ContextFingerprint, Permission};
use parking_lot::RwLock;

/// Shard count; must be a power of two. Spreads lock contention across
/// concurrently-checking threads.
const SHARDS: usize = 16;

/// Per-shard entry cap. A full shard is cleared rather than evicted
/// entry-by-entry — decisions are cheap to re-derive and workloads with more
/// than `SHARDS * SHARD_CAP` distinct live keys are not the target.
const SHARD_CAP: usize = 4096;

/// Key of one cached decision: the fingerprint of the visible domain set
/// plus a hash of `(demand, running user)`. Keeping the demand hashed (not
/// cloned) keeps the hot path allocation-free; a 64+64-bit collision is
/// vanishingly unlikely and the worst case re-runs a sound walk.
type Key = (u64, u64);

/// A fast multiply-xor hasher (FxHash-style) for the hot path. The warm
/// check hashes the demanded permission once and the 128-bit key once per
/// lookup; a keyed SipHash there costs more than the lookup itself, and the
/// cache needs no DoS resistance — a collision merely re-runs a sound walk.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// One cached granted decision: the epoch it was derived under plus the
/// demand-ledger cell recorded during the original walk (when the ledger
/// accepted the demand). A warm hit bumps the cell directly, so the
/// always-on demand ledger costs the hot path no hashing and no strings.
#[derive(Debug)]
struct CachedGrant {
    epoch: u64,
    demand_cell: Option<Arc<DemandCell>>,
}

type Shard = HashMap<Key, CachedGrant, BuildHasherDefault<FxHasher>>;

/// A sharded, epoch-invalidated map of granted access-control decisions.
#[derive(Debug, Default)]
pub struct DecisionCache {
    epoch: AtomicU64,
    shards: [RwLock<Shard>; SHARDS],
}

fn demand_key(demand: &Permission, user: Option<&str>) -> u64 {
    let mut hasher = FxHasher::default();
    demand.hash(&mut hasher);
    user.hash(&mut hasher);
    hasher.finish()
}

impl DecisionCache {
    /// Creates an empty cache at epoch 0.
    pub fn new() -> DecisionCache {
        DecisionCache::default()
    }

    /// The current epoch. Capture it **before** walking the policy, and pass
    /// the captured value to [`DecisionCache::insert_granted`].
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Bumps the epoch, logically discarding every cached decision.
    pub fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    fn shard(&self, key: &Key) -> &RwLock<Shard> {
        // The fingerprint half is already avalanche-mixed; its low bits pick
        // the shard.
        &self.shards[(key.0 as usize) & (SHARDS - 1)]
    }

    /// Looks up a granted decision for this exact `(context, demand, user)`
    /// triple derived under the current epoch; `true` means granted. On a
    /// hit, the demand-ledger cell captured during the original walk (if
    /// any) is bumped through `ledger` while the shard guard is held —
    /// handing the `Arc` out instead would cost the hot path a clone+drop
    /// pair of shared-cache-line RMWs, roughly doubling the always-on
    /// ledger's warm cost.
    pub fn lookup_granted(
        &self,
        fingerprint: ContextFingerprint,
        demand: &Permission,
        user: Option<&str>,
        ledger: &DemandLedger,
    ) -> bool {
        let key = (fingerprint.hash, demand_key(demand, user));
        let current = self.epoch();
        let shard = self.shard(&key).read();
        let Some(entry) = shard.get(&key) else {
            return false;
        };
        if entry.epoch != current {
            return false;
        }
        if let Some(cell) = &entry.demand_cell {
            if ledger.enabled() {
                ledger.bump(cell, true);
            }
        }
        true
    }

    /// Like [`DecisionCache::lookup_granted`], but on a hit also returns a
    /// clone of the stored demand cell so the caller can populate a
    /// [`NativeSiteCache`]. Used only when a native call site is active —
    /// the extra `Arc` clone is paid once to warm the site, after which the
    /// site hit path skips this probe entirely.
    pub(crate) fn lookup_granted_with_cell(
        &self,
        fingerprint: ContextFingerprint,
        demand: &Permission,
        user: Option<&str>,
        ledger: &DemandLedger,
    ) -> Option<Option<Arc<DemandCell>>> {
        let key = (fingerprint.hash, demand_key(demand, user));
        let current = self.epoch();
        let shard = self.shard(&key).read();
        let entry = shard.get(&key)?;
        if entry.epoch != current {
            return None;
        }
        if let Some(cell) = &entry.demand_cell {
            if ledger.enabled() {
                ledger.bump(cell, true);
            }
        }
        Some(entry.demand_cell.clone())
    }

    /// Records a granted decision derived while the epoch was
    /// `derived_epoch`, carrying the demand-ledger cell (if any) the walk
    /// recorded. A stale insert (the epoch moved during the walk) is stored
    /// but can never match a future lookup, so a policy reload racing a walk
    /// never resurrects a pre-reload decision.
    pub fn insert_granted(
        &self,
        fingerprint: ContextFingerprint,
        demand: &Permission,
        user: Option<&str>,
        derived_epoch: u64,
        demand_cell: Option<Arc<DemandCell>>,
    ) {
        let key = (fingerprint.hash, demand_key(demand, user));
        let mut shard = self.shard(&key).write();
        if shard.len() >= SHARD_CAP && !shard.contains_key(&key) {
            shard.clear();
        }
        shard.insert(
            key,
            CachedGrant {
                epoch: derived_epoch,
                demand_cell,
            },
        );
    }
}

/// A per-`CallNative`-site monomorphic inline cache over the shared
/// [`DecisionCache`].
///
/// The compiled interpreter allocates one of these per `CallNative` site at
/// pre-decode time and pushes it onto a thread-local *active site* stack for
/// the duration of the host invocation. When the security manager then runs
/// an access check on behalf of that native call, it consults the active
/// site first: a warm site holds the `(epoch, fingerprint, demand, user)`
/// quadruple of the last grant issued through this call site, so the steady
/// state — the same applet calling the same native under the same policy —
/// costs one fingerprint compare instead of a sharded map probe.
///
/// Invalidation is inherited from the shared cache: the stored epoch is the
/// [`DecisionCache::epoch`] the grant was derived under, so any policy /
/// security-manager / user-resolver change that bumps the epoch silently
/// kills every site cache at once. Denials are never stored (the
/// audit-exactness invariant), and `try_lock` is used on both paths so a
/// contended site degrades to the shared cache instead of blocking.
#[derive(Debug, Default)]
pub(crate) struct NativeSiteCache {
    grant: parking_lot::Mutex<Option<SiteGrant>>,
}

/// The last grant issued through one native call site.
#[derive(Debug)]
struct SiteGrant {
    epoch: u64,
    fingerprint: ContextFingerprint,
    demand: u64,
    demand_cell: Option<Arc<DemandCell>>,
}

impl NativeSiteCache {
    /// Creates an empty (cold) site cache.
    pub(crate) fn new() -> NativeSiteCache {
        NativeSiteCache::default()
    }

    /// `true` if the site's cached grant matches this exact
    /// `(epoch, fingerprint, demand-key)` triple. On a hit, the stored
    /// demand-ledger cell is bumped (same contract as
    /// [`DecisionCache::lookup_granted`]).
    fn check(
        &self,
        epoch: u64,
        fingerprint: ContextFingerprint,
        demand: u64,
        ledger: &DemandLedger,
    ) -> bool {
        let Some(guard) = self.grant.try_lock() else {
            return false;
        };
        let Some(grant) = guard.as_ref() else {
            return false;
        };
        if grant.epoch != epoch || grant.fingerprint != fingerprint || grant.demand != demand {
            return false;
        }
        if let Some(cell) = &grant.demand_cell {
            if ledger.enabled() {
                ledger.bump(cell, true);
            }
        }
        true
    }

    /// Stores a grant derived under `epoch` (captured before the walk, same
    /// staleness discipline as [`DecisionCache::insert_granted`]).
    fn store(
        &self,
        epoch: u64,
        fingerprint: ContextFingerprint,
        demand: u64,
        demand_cell: Option<Arc<DemandCell>>,
    ) {
        if let Some(mut guard) = self.grant.try_lock() {
            *guard = Some(SiteGrant {
                epoch,
                fingerprint,
                demand,
                demand_cell,
            });
        }
    }
}

thread_local! {
    /// The stack of native call sites currently being invoked on this
    /// thread. Nested entries happen when a native re-enters the
    /// interpreter; the innermost site owns any checks issued.
    static ACTIVE_SITES: std::cell::RefCell<Vec<Arc<NativeSiteCache>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Marks `site` as the active native call site until the guard drops.
pub(crate) fn enter_native_site(site: &Arc<NativeSiteCache>) -> NativeSiteGuard {
    ACTIVE_SITES.with(|s| s.borrow_mut().push(Arc::clone(site)));
    NativeSiteGuard { _priv: () }
}

/// RAII guard for [`enter_native_site`]; pops the site on drop.
pub(crate) struct NativeSiteGuard {
    _priv: (),
}

impl Drop for NativeSiteGuard {
    fn drop(&mut self) {
        ACTIVE_SITES.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// `true` if an access check issued right now would run on behalf of a
/// native call site (cheap: one thread-local read).
pub(crate) fn has_active_site() -> bool {
    ACTIVE_SITES.with(|s| !s.borrow().is_empty())
}

/// Consults the active site's inline cache; `true` means this exact
/// `(epoch, context, demand, user)` was the last grant issued through the
/// site. `false` when no site is active or the site is cold/stale.
pub(crate) fn site_check(
    epoch: u64,
    fingerprint: ContextFingerprint,
    demand: &Permission,
    user: Option<&str>,
    ledger: &DemandLedger,
) -> bool {
    ACTIVE_SITES.with(|s| {
        s.borrow()
            .last()
            .is_some_and(|site| site.check(epoch, fingerprint, demand_key(demand, user), ledger))
    })
}

/// Records a grant into the active site's inline cache (no-op when no site
/// is active).
pub(crate) fn site_store(
    epoch: u64,
    fingerprint: ContextFingerprint,
    demand: &Permission,
    user: Option<&str>,
    demand_cell: Option<Arc<DemandCell>>,
) {
    ACTIVE_SITES.with(|s| {
        if let Some(site) = s.borrow().last() {
            site.store(epoch, fingerprint, demand_key(demand, user), demand_cell);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmp_security::FileActions;

    fn fp(hash: u64) -> ContextFingerprint {
        ContextFingerprint { hash, unique: 1 }
    }

    fn ledger() -> DemandLedger {
        DemandLedger::new(8)
    }

    #[test]
    fn lookup_returns_only_current_epoch_entries() {
        let cache = DecisionCache::new();
        let ledger = ledger();
        let demand = Permission::runtime("x");
        assert!(!cache.lookup_granted(fp(1), &demand, None, &ledger));
        cache.insert_granted(fp(1), &demand, None, cache.epoch(), None);
        assert!(cache.lookup_granted(fp(1), &demand, None, &ledger));
        cache.invalidate();
        assert!(!cache.lookup_granted(fp(1), &demand, None, &ledger));
    }

    #[test]
    fn key_covers_fingerprint_demand_and_user() {
        let cache = DecisionCache::new();
        let ledger = ledger();
        let read = Permission::file("/a", FileActions::READ);
        let write = Permission::file("/a", FileActions::WRITE);
        cache.insert_granted(fp(1), &read, Some("alice"), cache.epoch(), None);
        assert!(cache.lookup_granted(fp(1), &read, Some("alice"), &ledger));
        assert!(!cache.lookup_granted(fp(2), &read, Some("alice"), &ledger));
        assert!(!cache.lookup_granted(fp(1), &write, Some("alice"), &ledger));
        assert!(!cache.lookup_granted(fp(1), &read, Some("bob"), &ledger));
        assert!(!cache.lookup_granted(fp(1), &read, None, &ledger));
    }

    #[test]
    fn stale_insert_never_serves_lookups() {
        let cache = DecisionCache::new();
        let ledger = ledger();
        let demand = Permission::runtime("x");
        // A walker captured the epoch, then a reload raced it.
        let captured = cache.epoch();
        cache.invalidate();
        cache.insert_granted(fp(1), &demand, None, captured, None);
        assert!(
            !cache.lookup_granted(fp(1), &demand, None, &ledger),
            "pre-reload decision must not survive the reload"
        );
        // A post-reload derivation does serve.
        cache.insert_granted(fp(1), &demand, None, cache.epoch(), None);
        assert!(cache.lookup_granted(fp(1), &demand, None, &ledger));
    }

    #[test]
    fn hit_bumps_the_stored_demand_cell() {
        let cache = DecisionCache::new();
        let ledger = ledger();
        let demand = Permission::runtime("x");
        let cell = ledger
            .record(
                None,
                "file:/apps/x",
                None,
                "permission runtime \"x\"",
                true,
                false,
                1,
            )
            .unwrap();
        cache.insert_granted(fp(1), &demand, None, cache.epoch(), Some(Arc::clone(&cell)));
        assert!(cache.lookup_granted(fp(1), &demand, None, &ledger));
        assert!(cache.lookup_granted(fp(1), &demand, None, &ledger));
        let rows = ledger.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].granted, 3, "1 record + 2 warm hits");

        // A disabled ledger stops the bump-through but not the hit.
        ledger.set_enabled(false);
        assert!(cache.lookup_granted(fp(1), &demand, None, &ledger));
        ledger.set_enabled(true);
        assert_eq!(ledger.rows()[0].granted, 3);
    }

    #[test]
    fn full_shard_clears_and_keeps_accepting() {
        let cache = DecisionCache::new();
        let ledger = ledger();
        let demand = Permission::runtime("x");
        // Drive one shard past its cap; all keys here land in shard 0.
        for i in 0..(SHARD_CAP as u64 + 10) {
            cache.insert_granted(fp(i * SHARDS as u64), &demand, None, cache.epoch(), None);
        }
        // The overflow cleared the shard (dropping the earliest entries) but
        // later inserts still land and serve.
        assert!(!cache.lookup_granted(fp(0), &demand, None, &ledger));
        let last = (SHARD_CAP as u64 + 9) * SHARDS as u64;
        assert!(cache.lookup_granted(fp(last), &demand, None, &ledger));
    }

    #[test]
    fn site_cache_hits_only_on_exact_quadruple() {
        let ledger = ledger();
        let site = NativeSiteCache::new();
        let demand = Permission::file("/a", FileActions::READ);
        let other = Permission::file("/a", FileActions::WRITE);
        let key = demand_key(&demand, Some("alice"));
        assert!(!site.check(0, fp(1), key, &ledger), "cold site misses");
        site.store(0, fp(1), key, None);
        assert!(site.check(0, fp(1), key, &ledger));
        assert!(!site.check(1, fp(1), key, &ledger), "epoch bump kills it");
        assert!(!site.check(0, fp(2), key, &ledger), "other context misses");
        assert!(
            !site.check(0, fp(1), demand_key(&other, Some("alice")), &ledger),
            "other demand misses"
        );
        assert!(
            !site.check(0, fp(1), demand_key(&demand, Some("bob")), &ledger),
            "other user misses"
        );
    }

    #[test]
    fn site_hit_bumps_the_stored_demand_cell() {
        let ledger = ledger();
        let site = NativeSiteCache::new();
        let demand = Permission::runtime("x");
        let cell = ledger
            .record(
                None,
                "file:/apps/x",
                None,
                "permission runtime \"x\"",
                true,
                false,
                1,
            )
            .unwrap();
        let key = demand_key(&demand, None);
        site.store(0, fp(1), key, Some(Arc::clone(&cell)));
        assert!(site.check(0, fp(1), key, &ledger));
        assert!(site.check(0, fp(1), key, &ledger));
        assert_eq!(ledger.rows()[0].granted, 3, "1 record + 2 site hits");
    }

    #[test]
    fn active_site_stack_nests_and_unwinds() {
        let ledger = ledger();
        let demand = Permission::runtime("x");
        let outer = Arc::new(NativeSiteCache::new());
        let inner = Arc::new(NativeSiteCache::new());
        assert!(!has_active_site());
        assert!(!site_check(0, fp(1), &demand, None, &ledger));
        {
            let _g1 = enter_native_site(&outer);
            assert!(has_active_site());
            site_store(0, fp(1), &demand, None, None);
            assert!(site_check(0, fp(1), &demand, None, &ledger));
            {
                // A nested native (host re-enters the interpreter) owns the
                // checks while active; the outer grant is invisible.
                let _g2 = enter_native_site(&inner);
                assert!(!site_check(0, fp(1), &demand, None, &ledger));
            }
            assert!(site_check(0, fp(1), &demand, None, &ledger));
        }
        assert!(!has_active_site());
    }

    #[test]
    fn lookup_with_cell_returns_the_stored_cell() {
        let cache = DecisionCache::new();
        let ledger = ledger();
        let demand = Permission::runtime("x");
        assert!(cache
            .lookup_granted_with_cell(fp(1), &demand, None, &ledger)
            .is_none());
        let cell = ledger
            .record(
                None,
                "file:/apps/x",
                None,
                "permission runtime \"x\"",
                true,
                false,
                1,
            )
            .unwrap();
        cache.insert_granted(fp(1), &demand, None, cache.epoch(), Some(Arc::clone(&cell)));
        let got = cache
            .lookup_granted_with_cell(fp(1), &demand, None, &ledger)
            .expect("hit");
        assert!(got.is_some_and(|c| Arc::ptr_eq(&c, &cell)));
        cache.invalidate();
        assert!(cache
            .lookup_granted_with_cell(fp(1), &demand, None, &ledger)
            .is_none());
    }
}
