use std::error::Error;
use std::fmt;

use jmp_security::SecurityError;

/// Error type for runtime operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// A security check failed (Java's `SecurityException`).
    Security(SecurityError),
    /// The current thread was interrupted while blocked (Java's
    /// `InterruptedException`). All blocking runtime primitives — pipe
    /// reads/writes, joins, sleeps, event waits — are interruption points;
    /// this is how application teardown unsticks blocked threads.
    Interrupted,
    /// No class material with the requested name exists
    /// (`ClassNotFoundException`).
    ClassNotFound {
        /// The class name that could not be resolved.
        name: String,
    },
    /// A class could not be defined or linked, e.g. defining the same name
    /// twice in one loader (`LinkageError`).
    Linkage {
        /// Description of the linkage problem.
        message: String,
    },
    /// The class exists but has no `main` entry point, or the entry point is
    /// of the wrong kind for the invocation.
    NoMainMethod {
        /// The class name.
        name: String,
    },
    /// An operation was attempted in an invalid state (e.g. spawning a
    /// thread into a destroyed group).
    IllegalState {
        /// Description of the state violation.
        message: String,
    },
    /// A read or write was attempted on a closed stream.
    StreamClosed,
    /// A multi-chunk write (`write_all`) was cut short: the peer closed (the
    /// runtime's `EPIPE`) or the writer was interrupted after some bytes had
    /// already been accepted. Carries the accepted count so callers know how
    /// much of the payload the reader can still observe.
    ShortWrite {
        /// Bytes accepted into the pipe before the failure.
        accepted: usize,
        /// Why the write could not continue (boxed: `StreamClosed` or
        /// `Interrupted`).
        cause: Box<VmError>,
    },
    /// A stream close was attempted by a holder that did not open the stream
    /// (paper §5.1: "applications may only close streams that they opened").
    NotStreamOwner,
    /// The virtual machine is shutting down; no new work is accepted.
    VmShutdown,
    /// A joined thread panicked.
    ThreadPanicked {
        /// The panicking thread's name.
        thread: String,
    },
    /// Bytecode verification rejected a class image.
    Verification {
        /// Class being verified.
        class: String,
        /// What the verifier objected to.
        message: String,
    },
    /// The interpreter trapped (bad opcode state, division by zero, stack
    /// underflow in unverified code, missing native, ...).
    Trap {
        /// Description of the trap.
        message: String,
    },
    /// An I/O style failure surfaced from a device backing a stream.
    Io {
        /// Description of the failure.
        message: String,
    },
    /// An allocation was refused because the owning application's resource
    /// quota was exhausted (the multi-processing denial-of-service guard).
    /// The failed allocation is rolled back; the denial is counted and
    /// audited by the owning [`AppContext`](crate::context::AppContext).
    QuotaExceeded {
        /// The application whose quota was exhausted.
        app: u64,
        /// The stable resource name (`threads`, `pipe.bytes`,
        /// `queued.events`, `handles`).
        resource: &'static str,
        /// The ceiling that would have been exceeded.
        limit: u64,
    },
    /// The interpreter parked at a safepoint to take a checkpoint instead
    /// of finishing the run. Not a failure: the caller collects the
    /// deposited [`InterpSnapshot`](crate::snapshot::InterpSnapshot) and
    /// either resumes it or serializes it for migration.
    Checkpointed,
}

impl VmError {
    /// Convenience constructor for [`VmError::IllegalState`].
    pub fn illegal_state(message: impl Into<String>) -> VmError {
        VmError::IllegalState {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`VmError::Trap`].
    pub fn trap(message: impl Into<String>) -> VmError {
        VmError::Trap {
            message: message.into(),
        }
    }

    /// Returns `true` if this error is a security denial.
    pub fn is_security(&self) -> bool {
        matches!(self, VmError::Security(_))
    }

    /// Returns `true` if this error is an interruption (including a short
    /// write whose underlying cause was interruption).
    pub fn is_interrupted(&self) -> bool {
        match self {
            VmError::Interrupted => true,
            VmError::ShortWrite { cause, .. } => cause.is_interrupted(),
            _ => false,
        }
    }

    /// Returns `true` if this error is a resource-quota denial (including a
    /// short write cut off by one).
    pub fn is_quota_exceeded(&self) -> bool {
        match self {
            VmError::QuotaExceeded { .. } => true,
            VmError::ShortWrite { cause, .. } => cause.is_quota_exceeded(),
            _ => false,
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Security(err) => write!(f, "security exception: {err}"),
            VmError::Interrupted => write!(f, "interrupted"),
            VmError::ClassNotFound { name } => write!(f, "class not found: {name}"),
            VmError::Linkage { message } => write!(f, "linkage error: {message}"),
            VmError::NoMainMethod { name } => write!(f, "class {name} has no main method"),
            VmError::IllegalState { message } => write!(f, "illegal state: {message}"),
            VmError::StreamClosed => write!(f, "stream closed"),
            VmError::ShortWrite { accepted, cause } => {
                write!(f, "short write: {accepted} bytes accepted, then {cause}")
            }
            VmError::NotStreamOwner => {
                write!(f, "stream may only be closed by the holder that opened it")
            }
            VmError::VmShutdown => write!(f, "virtual machine is shutting down"),
            VmError::ThreadPanicked { thread } => write!(f, "thread {thread:?} panicked"),
            VmError::Verification { class, message } => {
                write!(f, "verification of {class} failed: {message}")
            }
            VmError::Trap { message } => write!(f, "interpreter trap: {message}"),
            VmError::Io { message } => write!(f, "i/o error: {message}"),
            VmError::QuotaExceeded {
                app,
                resource,
                limit,
            } => {
                write!(f, "quota exceeded: app {app} over {resource} limit {limit}")
            }
            VmError::Checkpointed => write!(f, "interpreter parked for checkpoint"),
        }
    }
}

impl Error for VmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VmError::Security(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SecurityError> for VmError {
    fn from(err: SecurityError) -> VmError {
        VmError::Security(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmp_security::{Permission, SecurityError};

    #[test]
    fn security_error_converts_and_sources() {
        let sec = SecurityError::denied(&Permission::runtime("exitVM"), "test");
        let vm: VmError = sec.clone().into();
        assert!(vm.is_security());
        assert_eq!(
            vm.source().unwrap().to_string(),
            sec.to_string(),
            "source should expose the underlying security error"
        );
    }

    #[test]
    fn interruption_predicate() {
        assert!(VmError::Interrupted.is_interrupted());
        assert!(!VmError::StreamClosed.is_interrupted());
    }

    #[test]
    fn displays_are_nonempty() {
        let samples = [
            VmError::Interrupted,
            VmError::ClassNotFound { name: "X".into() },
            VmError::illegal_state("bad"),
            VmError::StreamClosed,
            VmError::NotStreamOwner,
            VmError::VmShutdown,
            VmError::trap("boom"),
            VmError::QuotaExceeded {
                app: 1,
                resource: "threads",
                limit: 4,
            },
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn quota_predicate_sees_through_short_writes() {
        let quota = VmError::QuotaExceeded {
            app: 3,
            resource: "pipe.bytes",
            limit: 64,
        };
        assert!(quota.is_quota_exceeded());
        let short = VmError::ShortWrite {
            accepted: 10,
            cause: Box::new(quota),
        };
        assert!(short.is_quota_exceeded());
        assert!(!VmError::StreamClosed.is_quota_exceeded());
    }
}
