use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jmp_security::{CodeSource, PermissionCollection, ProtectionDomain};
use parking_lot::RwLock;

use super::class::Class;
use super::def::ClassDef;
use super::registry::MaterialRegistry;
use crate::error::VmError;
use crate::Result;

static NEXT_LOADER_ID: AtomicU64 = AtomicU64::new(1);

/// Identifier of a class loader. Part of every [`ClassId`](super::ClassId).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoaderId(pub u64);

impl fmt::Display for LoaderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ld:{}", self.0)
    }
}

/// Resolves the permissions to grant a code source at class-definition time
/// (normally `policy.permissions_for(source)`, possibly with loader-specific
/// additions — the appletviewer's loader grants connect-back permission this
/// way, paper §6.3).
pub type DomainResolver = Arc<dyn Fn(&CodeSource) -> PermissionCollection + Send + Sync>;

/// Called after every successful class definition with the class name and
/// whether it was a *local* re-definition off the loader's re-load list
/// (§5.5). Installed by the VM to feed the observability hub; children
/// created after installation inherit the observer.
pub type DefineObserver = Arc<dyn Fn(&str, bool) + Send + Sync>;

struct LoaderInner {
    id: LoaderId,
    name: String,
    parent: Option<ClassLoader>,
    registry: Arc<MaterialRegistry>,
    resolver: DomainResolver,
    /// Class names this loader defines locally instead of delegating —
    /// the paper's re-load list (§5.5).
    reload: RwLock<HashSet<String>>,
    defined: RwLock<HashMap<String, Class>>,
    observer: RwLock<Option<DefineObserver>>,
}

/// A class loader: defines classes from material, creating a namespace.
///
/// Loading follows parent delegation (as in the JDK), *except* for names on
/// the loader's re-load list, which are defined locally even though the same
/// material is visible to the parent — the mechanism behind the paper's
/// per-application `System` class (§5.5).
///
/// Cheap handle; clones refer to the same loader.
#[derive(Clone)]
pub struct ClassLoader {
    inner: Arc<LoaderInner>,
}

impl ClassLoader {
    /// Creates a root (system) loader over `registry`, resolving protection
    /// domains with `resolver`.
    pub fn new_system(
        name: impl Into<String>,
        registry: Arc<MaterialRegistry>,
        resolver: DomainResolver,
    ) -> ClassLoader {
        ClassLoader {
            inner: Arc::new(LoaderInner {
                id: LoaderId(NEXT_LOADER_ID.fetch_add(1, Ordering::Relaxed)),
                name: name.into(),
                parent: None,
                registry,
                resolver,
                reload: RwLock::new(HashSet::new()),
                defined: RwLock::new(HashMap::new()),
                observer: RwLock::new(None),
            }),
        }
    }

    /// Creates a child loader delegating to `self`, with the same registry
    /// and resolver.
    pub fn new_child(&self, name: impl Into<String>) -> ClassLoader {
        self.new_child_with_resolver(name, Arc::clone(&self.inner.resolver))
    }

    /// Creates a child loader with a custom domain resolver (e.g. the
    /// applet class loader granting extra permissions to the applets it
    /// loads).
    pub fn new_child_with_resolver(
        &self,
        name: impl Into<String>,
        resolver: DomainResolver,
    ) -> ClassLoader {
        ClassLoader {
            inner: Arc::new(LoaderInner {
                id: LoaderId(NEXT_LOADER_ID.fetch_add(1, Ordering::Relaxed)),
                name: name.into(),
                parent: Some(self.clone()),
                registry: Arc::clone(&self.inner.registry),
                resolver,
                reload: RwLock::new(HashSet::new()),
                defined: RwLock::new(HashMap::new()),
                observer: RwLock::new(self.inner.observer.read().clone()),
            }),
        }
    }

    /// Installs the definition observer on this loader (and, via
    /// inheritance, on children created from now on).
    pub fn set_define_observer(&self, observer: DefineObserver) {
        *self.inner.observer.write() = Some(observer);
    }

    /// The loader's id.
    pub fn id(&self) -> LoaderId {
        self.inner.id
    }

    /// The loader's name (diagnostics only).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The parent loader, if any.
    pub fn parent(&self) -> Option<&ClassLoader> {
        self.inner.parent.as_ref()
    }

    /// Adds `class_name` to the re-load list: this loader will define the
    /// class locally from shared material instead of delegating to its
    /// parent (paper §5.5).
    pub fn add_reload(&self, class_name: impl Into<String>) {
        self.inner.reload.write().insert(class_name.into());
    }

    /// Returns `true` if `class_name` is on the re-load list.
    pub fn reloads(&self, class_name: &str) -> bool {
        self.inner.reload.read().contains(class_name)
    }

    /// Loads a class: returns the already-defined class, or defines it
    /// locally if on the re-load list, or delegates to the parent, or (for a
    /// root loader) defines it from the registry.
    ///
    /// # Errors
    ///
    /// [`VmError::ClassNotFound`] if no material with that name exists.
    pub fn load_class(&self, name: &str) -> Result<Class> {
        if let Some(class) = self.inner.defined.read().get(name) {
            return Ok(class.clone());
        }
        if self.reloads(name) {
            return self.define_from_registry(name);
        }
        match &self.inner.parent {
            Some(parent) => parent.load_class(name),
            None => self.define_from_registry(name),
        }
    }

    fn define_from_registry(&self, name: &str) -> Result<Class> {
        let (def, source) =
            self.inner
                .registry
                .get(name)
                .ok_or_else(|| VmError::ClassNotFound {
                    name: name.to_string(),
                })?;
        self.define_class(def, source)
    }

    /// Defines a class in this loader from explicit material and code
    /// source — the analogue of `ClassLoader.defineClass`, used e.g. by the
    /// applet loader for class images fetched over the network.
    ///
    /// # Errors
    ///
    /// [`VmError::Linkage`] if this loader already defined the name.
    pub fn define_class(&self, def: Arc<ClassDef>, source: CodeSource) -> Result<Class> {
        // Pre-decode interpreted material now (cached on the def, shared by
        // every later interpreter over it), outside the `defined` lock —
        // defining a class is the JVM's verify/link moment, and doing it
        // here keeps first execution on the fast path. A verification
        // failure is deliberately not raised here: it surfaces exactly as
        // before, when something tries to *run* the class.
        let _ = def.compiled();
        let class = {
            let mut defined = self.inner.defined.write();
            if defined.contains_key(def.name()) {
                return Err(VmError::Linkage {
                    message: format!(
                        "loader {} already defines class {:?}",
                        self.inner.name,
                        def.name()
                    ),
                });
            }
            let permissions = (self.inner.resolver)(&source);
            let domain = Arc::new(ProtectionDomain::new(source, permissions));
            let class = Class::define(Arc::clone(&def), self.inner.id, domain);
            defined.insert(def.name().to_string(), class.clone());
            class
        };
        // Outside the `defined` lock: the observer may inspect the loader.
        let observer = self.inner.observer.read().clone();
        if let Some(observer) = observer {
            observer(class.name(), self.reloads(class.name()));
        }
        Ok(class)
    }

    /// The class with `name` if *this* loader defined it (no delegation).
    pub fn find_defined(&self, name: &str) -> Option<Class> {
        self.inner.defined.read().get(name).cloned()
    }

    /// Names of all classes defined by this loader, sorted.
    pub fn defined_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.defined.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// The material registry this loader reads from.
    pub fn registry(&self) -> &Arc<MaterialRegistry> {
        &self.inner.registry
    }
}

impl fmt::Debug for ClassLoader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassLoader")
            .field("id", &self.inner.id)
            .field("name", &self.inner.name)
            .field(
                "parent",
                &self.inner.parent.as_ref().map(|p| p.name().to_string()),
            )
            .field("defined", &self.defined_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<MaterialRegistry>, ClassLoader) {
        let registry = Arc::new(MaterialRegistry::new());
        registry
            .register(
                ClassDef::builder("java.lang.System")
                    .static_slot("out")
                    .build(),
                CodeSource::local("file:/sys/classes"),
            )
            .unwrap();
        registry
            .register(
                ClassDef::builder("Helper").build(),
                CodeSource::local("file:/sys/classes"),
            )
            .unwrap();
        let resolver: DomainResolver = Arc::new(|_source| PermissionCollection::all_permissions());
        let system = ClassLoader::new_system("system", Arc::clone(&registry), resolver);
        (registry, system)
    }

    #[test]
    fn load_is_idempotent() {
        let (_reg, system) = setup();
        let a = system.load_class("java.lang.System").unwrap();
        let b = system.load_class("java.lang.System").unwrap();
        assert!(a.same_class(&b));
    }

    #[test]
    fn children_delegate_to_parent_by_default() {
        let (_reg, system) = setup();
        let child = system.new_child("app-1");
        let from_child = child.load_class("Helper").unwrap();
        let from_parent = system.load_class("Helper").unwrap();
        assert!(from_child.same_class(&from_parent));
        assert_eq!(from_child.loader(), system.id());
        assert!(child.find_defined("Helper").is_none(), "defined by parent");
    }

    #[test]
    fn reload_list_creates_per_loader_definitions() {
        // The paper's §5.5 mechanism in miniature.
        let (_reg, system) = setup();
        let sys_class = system.load_class("java.lang.System").unwrap();

        let app1 = system.new_child("app-1");
        app1.add_reload("java.lang.System");
        let app2 = system.new_child("app-2");
        app2.add_reload("java.lang.System");

        let c1 = app1.load_class("java.lang.System").unwrap();
        let c2 = app2.load_class("java.lang.System").unwrap();

        assert!(!c1.same_class(&c2));
        assert!(!c1.same_class(&sys_class));
        assert!(c1.same_material(&c2), "same class material");
        assert_eq!(c1.name(), c2.name());

        c1.set_static("out", Arc::new(1u32));
        c2.set_static("out", Arc::new(2u32));
        assert_eq!(*c1.static_as::<u32>("out").unwrap(), 1);
        assert_eq!(*c2.static_as::<u32>("out").unwrap(), 2);

        // Non-reloaded classes are still shared.
        let h1 = app1.load_class("Helper").unwrap();
        let h2 = app2.load_class("Helper").unwrap();
        assert!(h1.same_class(&h2));
    }

    #[test]
    fn missing_material_is_class_not_found() {
        let (_reg, system) = setup();
        assert!(matches!(
            system.load_class("NoSuchClass").unwrap_err(),
            VmError::ClassNotFound { .. }
        ));
    }

    #[test]
    fn define_class_rejects_duplicates_per_loader() {
        let (_reg, system) = setup();
        let def = ClassDef::builder("Applet").build();
        let source = CodeSource::remote("http://host/applets/");
        system
            .define_class(Arc::clone(&def), source.clone())
            .unwrap();
        assert!(matches!(
            system.define_class(def, source).unwrap_err(),
            VmError::Linkage { .. }
        ));
    }

    #[test]
    fn resolver_assigns_domains_at_definition() {
        let registry = Arc::new(MaterialRegistry::new());
        registry
            .register(
                ClassDef::builder("X").build(),
                CodeSource::local("file:/apps/x"),
            )
            .unwrap();
        let resolver: DomainResolver = Arc::new(|source| {
            let mut perms = PermissionCollection::new();
            if source.url().starts_with("file:/apps/") {
                perms.add(jmp_security::Permission::runtime("appMarker"));
            }
            perms
        });
        let loader = ClassLoader::new_system("s", registry, resolver);
        let class = loader.load_class("X").unwrap();
        assert!(class
            .domain()
            .implies(&jmp_security::Permission::runtime("appMarker")));
        assert!(!class.domain().implies(&jmp_security::Permission::All));
    }

    #[test]
    fn custom_child_resolver_grants_extras() {
        let (_reg, system) = setup();
        let applet_resolver: DomainResolver = Arc::new(|source| {
            let mut perms = PermissionCollection::new();
            if let Some(host) = source.host() {
                perms.add(jmp_security::Permission::socket(
                    host,
                    jmp_security::SocketActions::CONNECT,
                ));
            }
            perms
        });
        let applet_loader = system.new_child_with_resolver("applets", applet_resolver);
        let class = applet_loader
            .define_class(
                ClassDef::builder("Game").build(),
                CodeSource::remote("http://games.example.com/Game"),
            )
            .unwrap();
        assert!(class.domain().implies(&jmp_security::Permission::socket(
            "games.example.com",
            jmp_security::SocketActions::CONNECT
        )));
        assert!(!class.domain().implies(&jmp_security::Permission::socket(
            "other.example.com",
            jmp_security::SocketActions::CONNECT
        )));
    }

    #[test]
    fn defined_names_listing() {
        let (_reg, system) = setup();
        system.load_class("Helper").unwrap();
        system.load_class("java.lang.System").unwrap();
        assert_eq!(
            system.defined_names(),
            vec!["Helper".to_string(), "java.lang.System".to_string()]
        );
    }
}
