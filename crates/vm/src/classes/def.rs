use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::interp::{ClassImage, CompiledImage};
use crate::Result;

/// A native entry point: the body of a class's `main` method, implemented in
/// Rust.
///
/// Trusted, locally-installed code (the JDK class library, the shell, the
/// utilities) is implemented natively against the runtime API — the analogue
/// of JDK system classes being backed by native code. Untrusted *mobile*
/// code is never native: it ships as a [`ClassImage`] and is interpreted.
pub type NativeMain = Arc<dyn Fn(Vec<String>) -> Result<()> + Send + Sync>;

/// Immutable class material: what a `.class` file is to a JVM.
///
/// The same `ClassDef` can be defined by many loaders; each definition
/// produces a distinct [`Class`](crate::Class) with its own statics (paper
/// §5.5: re-loading the `System` class "albeit from the same class
/// material").
pub struct ClassDef {
    name: String,
    main: Option<NativeMain>,
    image: Option<Arc<ClassImage>>,
    /// The pre-decoded form of `image`, compiled once per material (not per
    /// definition — superinstruction selection and string interning depend
    /// only on the image) and shared by every interpreter over it.
    compiled: OnceLock<Arc<CompiledImage>>,
    static_slots: Vec<String>,
}

impl ClassDef {
    /// Starts building class material named `name`.
    pub fn builder(name: impl Into<String>) -> ClassDefBuilder {
        ClassDefBuilder {
            name: name.into(),
            main: None,
            image: None,
            static_slots: Vec::new(),
        }
    }

    /// The class name (dotted, e.g. `java.lang.System` or `MyClass`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The native `main` entry point, if this is a runnable native class.
    pub fn main(&self) -> Option<&NativeMain> {
        self.main.as_ref()
    }

    /// The bytecode image, if this is interpreted (mobile) code.
    pub fn image(&self) -> Option<&Arc<ClassImage>> {
        self.image.as_ref()
    }

    /// The verified, pre-decoded form of the image — compiled on first call
    /// and cached on the material, so defining or running the class many
    /// times verifies and pre-decodes once. `None` for native classes.
    ///
    /// # Errors
    ///
    /// [`crate::VmError::Verification`] if the image is rejected. (Failures
    /// are not cached; a rejected image fails on every call.)
    pub fn compiled(&self) -> Option<Result<Arc<CompiledImage>>> {
        let image = self.image.as_ref()?;
        if let Some(ready) = self.compiled.get() {
            return Some(Ok(Arc::clone(ready)));
        }
        match CompiledImage::compile(Arc::clone(image)) {
            Ok(ci) => {
                let arc = Arc::new(ci);
                // A concurrent compile of the same image wins or loses the
                // publish race; both results are identical, keep the winner.
                let winner = self.compiled.get_or_init(|| arc);
                Some(Ok(Arc::clone(winner)))
            }
            Err(err) => Some(Err(err)),
        }
    }

    /// Names of the static slots every definition of this class carries.
    pub fn static_slots(&self) -> &[String] {
        &self.static_slots
    }
}

impl fmt::Debug for ClassDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassDef")
            .field("name", &self.name)
            .field("native_main", &self.main.is_some())
            .field("interpreted", &self.image.is_some())
            .field("static_slots", &self.static_slots)
            .finish()
    }
}

/// Builder for [`ClassDef`].
pub struct ClassDefBuilder {
    name: String,
    main: Option<NativeMain>,
    image: Option<Arc<ClassImage>>,
    static_slots: Vec<String>,
}

impl ClassDefBuilder {
    /// Sets a native `main` entry point.
    pub fn main(
        mut self,
        f: impl Fn(Vec<String>) -> Result<()> + Send + Sync + 'static,
    ) -> ClassDefBuilder {
        self.main = Some(Arc::new(f));
        self
    }

    /// Sets a bytecode image (interpreted class).
    pub fn image(mut self, image: ClassImage) -> ClassDefBuilder {
        self.image = Some(Arc::new(image));
        self
    }

    /// Declares a static slot, present (independently) in every definition
    /// of the class.
    pub fn static_slot(mut self, name: impl Into<String>) -> ClassDefBuilder {
        self.static_slots.push(name.into());
        self
    }

    /// Finishes the material.
    pub fn build(self) -> Arc<ClassDef> {
        Arc::new(ClassDef {
            name: self.name,
            main: self.main,
            image: self.image,
            compiled: OnceLock::new(),
            static_slots: self.static_slots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_named_material() {
        let def = ClassDef::builder("java.lang.System")
            .static_slot("in")
            .static_slot("out")
            .build();
        assert_eq!(def.name(), "java.lang.System");
        assert_eq!(
            def.static_slots(),
            &["in".to_string(), "out".to_string()][..]
        );
        assert!(def.main().is_none());
        assert!(def.image().is_none());
    }

    #[test]
    fn native_main_is_invocable() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = Arc::new(AtomicUsize::new(0));
        let count2 = Arc::clone(&count);
        let def = ClassDef::builder("Main")
            .main(move |args| {
                count2.fetch_add(args.len(), Ordering::SeqCst);
                Ok(())
            })
            .build();
        let main = def.main().unwrap();
        main(vec!["a".into(), "b".into()]).unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn compiled_form_is_cached_per_material() {
        use crate::interp::{Insn, MethodImage};
        let def = ClassDef::builder("M")
            .image(ClassImage {
                name: "M".into(),
                methods: vec![MethodImage {
                    name: "main".into(),
                    params: 0,
                    locals: 0,
                    code: vec![Insn::PushInt(1), Insn::ReturnValue],
                }],
            })
            .build();
        let a = def.compiled().unwrap().unwrap();
        let b = def.compiled().unwrap().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "compiled once, shared after");

        let native = ClassDef::builder("N").main(|_| Ok(())).build();
        assert!(native.compiled().is_none());

        let bad = ClassDef::builder("B")
            .image(ClassImage {
                name: "B".into(),
                methods: vec![MethodImage {
                    name: "main".into(),
                    params: 0,
                    locals: 0,
                    code: vec![Insn::Add, Insn::Return],
                }],
            })
            .build();
        assert!(bad.compiled().unwrap().is_err());
    }

    #[test]
    fn debug_does_not_leak_closures() {
        let def = ClassDef::builder("X").main(|_| Ok(())).build();
        let text = format!("{def:?}");
        assert!(text.contains("native_main: true"));
    }
}
