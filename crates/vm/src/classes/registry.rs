use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use jmp_security::CodeSource;
use parking_lot::RwLock;

use super::def::ClassDef;
use crate::error::VmError;
use crate::Result;

/// The store of class *material*: name → (definition, code source).
///
/// This is the runtime's stand-in for the class path — "the external class
/// file representation" (paper §3.1) that loaders convert into live classes.
/// The code source recorded here is where the material came from, which the
/// defining loader resolves against the policy to build the class's
/// protection domain.
#[derive(Default)]
pub struct MaterialRegistry {
    map: RwLock<HashMap<String, (Arc<ClassDef>, CodeSource)>>,
}

impl MaterialRegistry {
    /// Creates an empty registry.
    pub fn new() -> MaterialRegistry {
        MaterialRegistry::default()
    }

    /// Registers material under its own name.
    ///
    /// # Errors
    ///
    /// [`VmError::Linkage`] if the name is already registered.
    pub fn register(&self, def: Arc<ClassDef>, source: CodeSource) -> Result<()> {
        let mut map = self.map.write();
        let name = def.name().to_string();
        if map.contains_key(&name) {
            return Err(VmError::Linkage {
                message: format!("class material {name:?} already registered"),
            });
        }
        map.insert(name, (def, source));
        Ok(())
    }

    /// Replaces or adds material (used by tests and by the simulated network
    /// fetch, where re-fetching a class image is legitimate).
    pub fn register_replacing(&self, def: Arc<ClassDef>, source: CodeSource) {
        self.map
            .write()
            .insert(def.name().to_string(), (def, source));
    }

    /// Looks up material by name.
    pub fn get(&self, name: &str) -> Option<(Arc<ClassDef>, CodeSource)> {
        self.map.read().get(name).cloned()
    }

    /// Returns `true` if material with `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.map.read().contains_key(name)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.map.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered definitions.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Returns `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

impl fmt::Debug for MaterialRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MaterialRegistry")
            .field("classes", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let reg = MaterialRegistry::new();
        let def = ClassDef::builder("A").build();
        reg.register(def, CodeSource::local("file:/sys")).unwrap();
        let (found, source) = reg.get("A").unwrap();
        assert_eq!(found.name(), "A");
        assert_eq!(source.url(), "file:/sys");
        assert!(reg.contains("A"));
        assert!(!reg.contains("B"));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn duplicate_registration_is_linkage_error() {
        let reg = MaterialRegistry::new();
        reg.register(ClassDef::builder("A").build(), CodeSource::local("u"))
            .unwrap();
        let err = reg
            .register(ClassDef::builder("A").build(), CodeSource::local("u"))
            .unwrap_err();
        assert!(matches!(err, VmError::Linkage { .. }));
    }

    #[test]
    fn register_replacing_overwrites() {
        let reg = MaterialRegistry::new();
        reg.register(ClassDef::builder("A").build(), CodeSource::local("old"))
            .unwrap();
        reg.register_replacing(ClassDef::builder("A").build(), CodeSource::local("new"));
        assert_eq!(reg.get("A").unwrap().1.url(), "new");
    }

    #[test]
    fn names_sorted() {
        let reg = MaterialRegistry::new();
        for n in ["zeta", "alpha"] {
            reg.register(ClassDef::builder(n).build(), CodeSource::local("u"))
                .unwrap();
        }
        assert_eq!(reg.names(), vec!["alpha", "zeta"]);
        assert!(!reg.is_empty());
    }
}
