use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use jmp_security::ProtectionDomain;
use parking_lot::RwLock;

use super::def::ClassDef;
use super::loader::LoaderId;
use crate::error::VmError;
use crate::stack;
use crate::Result;

/// The identity of a defined class: the defining loader plus the name.
///
/// Two classes with the same name defined by different loaders are
/// *different classes* — the property the paper's per-application `System`
/// class depends on (§5.5).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClassId {
    /// The defining loader.
    pub loader: LoaderId,
    /// The class name.
    pub name: String,
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.name, self.loader)
    }
}

/// A value stored in a class's statics table.
///
/// Statics are type-erased so the class system does not need to know about
/// streams, security managers, or anything else layered above it; use
/// [`Class::static_as`] for typed access.
pub type StaticValue = Arc<dyn Any + Send + Sync>;

struct ClassInner {
    id: ClassId,
    def: Arc<ClassDef>,
    domain: Arc<ProtectionDomain>,
    statics: RwLock<HashMap<String, StaticValue>>,
}

/// A class *defined* by a loader: shared immutable material plus this
/// definition's own protection domain and statics table.
///
/// Cheap handle; clones refer to the same defined class.
#[derive(Clone)]
pub struct Class {
    inner: Arc<ClassInner>,
}

impl Class {
    pub(crate) fn define(
        def: Arc<ClassDef>,
        loader: LoaderId,
        domain: Arc<ProtectionDomain>,
    ) -> Class {
        let statics = def
            .static_slots()
            .iter()
            .map(|slot| {
                (
                    slot.clone(),
                    Arc::new(()) as StaticValue, // unset marker
                )
            })
            .collect();
        Class {
            inner: Arc::new(ClassInner {
                id: ClassId {
                    loader,
                    name: def.name().to_string(),
                },
                def,
                domain,
                statics: RwLock::new(statics),
            }),
        }
    }

    /// The class identity (defining loader + name).
    pub fn id(&self) -> &ClassId {
        &self.inner.id
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.inner.id.name
    }

    /// The defining loader's id.
    pub fn loader(&self) -> LoaderId {
        self.inner.id.loader
    }

    /// The class material this class was defined from.
    pub fn def(&self) -> &Arc<ClassDef> {
        &self.inner.def
    }

    /// The protection domain assigned at definition time.
    pub fn domain(&self) -> &Arc<ProtectionDomain> {
        &self.inner.domain
    }

    /// Returns `true` if `other` is the very same defined class (same
    /// definition, not merely same name).
    pub fn same_class(&self, other: &Class) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Returns `true` if this class was defined from the same material as
    /// `other` (possibly by a different loader).
    pub fn same_material(&self, other: &Class) -> bool {
        Arc::ptr_eq(&self.inner.def, &other.inner.def)
    }

    /// Reads a static slot.
    pub fn static_value(&self, slot: &str) -> Option<StaticValue> {
        self.inner.statics.read().get(slot).cloned()
    }

    /// Reads a static slot, downcast to `T`. Returns `None` if the slot is
    /// absent, unset, or of another type.
    pub fn static_as<T: Any + Send + Sync>(&self, slot: &str) -> Option<Arc<T>> {
        self.static_value(slot)?.downcast::<T>().ok()
    }

    /// Writes a static slot (created if not declared in the material).
    pub fn set_static(&self, slot: impl Into<String>, value: StaticValue) {
        self.inner.statics.write().insert(slot.into(), value);
    }

    /// Runs `f` attributed to this class: a stack frame carrying the class's
    /// protection domain is pushed for the duration (see [`crate::stack`]).
    pub fn call<R>(&self, f: impl FnOnce() -> R) -> R {
        stack::call_as(self.name(), Arc::clone(&self.inner.domain), f)
    }

    /// Invokes the class's native `main` with `args`, attributed to the
    /// class (a frame with its protection domain is on the stack).
    ///
    /// # Errors
    ///
    /// [`VmError::NoMainMethod`] if the material has no native entry point;
    /// otherwise whatever `main` returns.
    pub fn run_main(&self, args: Vec<String>) -> Result<()> {
        let main = self
            .inner
            .def
            .main()
            .cloned()
            .ok_or_else(|| VmError::NoMainMethod {
                name: self.name().to_string(),
            })?;
        self.call(|| main(args))
    }
}

impl fmt::Debug for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Class")
            .field("id", &self.inner.id)
            .field("domain", &self.inner.domain.code_source().url())
            .finish()
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inner.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jmp_security::{CodeSource, PermissionCollection};

    fn test_domain() -> Arc<ProtectionDomain> {
        Arc::new(ProtectionDomain::new(
            CodeSource::local("file:/sys"),
            PermissionCollection::all_permissions(),
        ))
    }

    #[test]
    fn same_material_different_definitions() {
        let def = ClassDef::builder("java.lang.System")
            .static_slot("out")
            .build();
        let a = Class::define(Arc::clone(&def), LoaderId(1), test_domain());
        let b = Class::define(def, LoaderId(2), test_domain());
        assert!(a.same_material(&b));
        assert!(!a.same_class(&b));
        assert_eq!(a.name(), b.name());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn statics_are_per_definition() {
        let def = ClassDef::builder("java.lang.System")
            .static_slot("out")
            .build();
        let a = Class::define(Arc::clone(&def), LoaderId(1), test_domain());
        let b = Class::define(def, LoaderId(2), test_domain());
        a.set_static("out", Arc::new("stream-A".to_string()));
        b.set_static("out", Arc::new("stream-B".to_string()));
        assert_eq!(*a.static_as::<String>("out").unwrap(), "stream-A");
        assert_eq!(*b.static_as::<String>("out").unwrap(), "stream-B");
    }

    #[test]
    fn declared_slot_starts_unset() {
        let def = ClassDef::builder("X").static_slot("s").build();
        let c = Class::define(def, LoaderId(1), test_domain());
        assert!(c.static_value("s").is_some(), "slot exists");
        assert!(
            c.static_as::<String>("s").is_none(),
            "but holds no String yet"
        );
        assert!(c.static_value("missing").is_none());
    }

    #[test]
    fn call_attributes_frames_to_class() {
        let def = ClassDef::builder("Attributed").build();
        let c = Class::define(def, LoaderId(1), test_domain());
        c.call(|| {
            assert_eq!(stack::top_class().as_deref(), Some("Attributed"));
        });
        assert_eq!(stack::depth(), 0);
    }

    #[test]
    fn run_main_requires_entry_point() {
        let def = ClassDef::builder("NoMain").build();
        let c = Class::define(def, LoaderId(1), test_domain());
        assert!(matches!(
            c.run_main(vec![]).unwrap_err(),
            VmError::NoMainMethod { .. }
        ));

        let def = ClassDef::builder("WithMain")
            .main(|args| {
                assert_eq!(args, vec!["x".to_string()]);
                Ok(())
            })
            .build();
        let c = Class::define(def, LoaderId(1), test_domain());
        c.run_main(vec!["x".into()]).unwrap();
    }
}
