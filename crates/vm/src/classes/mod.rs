//! Classes, class material, and class loaders.
//!
//! The runtime's unit of code identity is the *class*. Immutable class
//! *material* ([`ClassDef`], the stand-in for a `.class` file) lives in a
//! [`MaterialRegistry`]; a [`ClassLoader`] *defines* a class from material,
//! producing a [`Class`] whose identity is the pair `(loader, name)` and
//! which owns a fresh statics table.
//!
//! This reproduces the JVM property the paper's §5.5 mechanism rests on:
//! "Since we use a new class loader for every application, to the JVM, the
//! different incarnations of the `System` class are just different classes
//! that happen to have the same name." Re-defining a class from the *same
//! material* under a different loader yields a distinct class with distinct
//! statics — which is exactly how each application gets its own
//! `System.in/out/err` while sharing one `SystemProperties`.

mod class;
mod def;
mod loader;
mod registry;

pub use class::{Class, ClassId, StaticValue};
pub use def::{ClassDef, ClassDefBuilder, NativeMain};
pub use loader::{ClassLoader, DefineObserver, DomainResolver, LoaderId};
pub use registry::MaterialRegistry;
