//! # jmp-vm
//!
//! A miniature managed runtime — the substrate the multi-processing
//! architecture of Balfanz & Gong, *Experience with Secure Multi-Processing
//! in Java* (ICDCS 1998), is built on. Rust has no JVM, so this crate
//! provides the JVM properties the paper's mechanisms actually rely on:
//!
//! * **Threads and thread groups** ([`VmThread`], [`ThreadGroup`]) with
//!   daemon/non-daemon accounting and the Fig-1 lifetime rule: the VM exits
//!   when the last non-daemon thread finishes ([`Vm::await_termination`]).
//! * **Explicit call-stack frames** ([`stack`]) carrying protection domains,
//!   so JDK 1.2-style stack inspection (`jmp-security`) works over native
//!   Rust code, including `doPrivileged` and inherited thread contexts.
//! * **A class system** ([`ClassLoader`], [`Class`], [`MaterialRegistry`])
//!   where class identity is *(loader, name)* and every definition gets its
//!   own statics table — the property behind the paper's per-application
//!   re-loaded `System` class (§5.5).
//! * **Streams and pipes** ([`io`]) with the paper's ownership-restricted
//!   close semantics (§5.1).
//! * **A verified bytecode interpreter** ([`interp`]) so untrusted mobile
//!   code (applets, §6.3) stays *data* executed under the security manager
//!   rather than compiled-in Rust.
//! * **System properties** ([`Properties`]) and a swappable
//!   [`SecurityManager`]/user-resolver so the multi-processing layer can
//!   install the paper's system security manager and per-application users.
//!
//! # Example: the Fig-1 lifetime
//!
//! ```
//! use jmp_vm::{ClassDef, Vm};
//! use jmp_security::CodeSource;
//!
//! let vm = Vm::builder().name("demo").build();
//! vm.material().register(
//!     ClassDef::builder("Hello")
//!         .main(|args| {
//!             assert_eq!(args, vec!["world".to_string()]);
//!             Ok(())
//!         })
//!         .build(),
//!     CodeSource::local("file:/sys/classes"),
//! )?;
//! // Like `java Hello world`: runs main on a non-daemon thread and waits
//! // until no non-daemon threads remain.
//! let exit_code = vm.run("Hello", vec!["world".into()])?;
//! assert_eq!(exit_code, 0);
//! # Ok::<(), jmp_vm::VmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classes;
/// Per-application ownership records, resource ledgers, and quota limits.
pub mod context;
mod decision_cache;
mod epoch_cell;
mod error;
mod group;
pub mod interp;
pub mod io;
mod profloc;
mod properties;
/// Versioned checkpoint images for parked interpreter runs
/// (checkpoint/restore/migrate).
pub mod snapshot;
pub mod stack;
/// VM threads: daemon flags, interruption, joins, and the current-thread
/// helpers blocking primitives build on.
pub mod thread;
mod vm;

pub use classes::{
    Class, ClassDef, ClassDefBuilder, ClassId, ClassLoader, DefineObserver, DomainResolver,
    LoaderId, MaterialRegistry, NativeMain, StaticValue,
};
pub use context::{
    AppContext, ResourceKind, ResourceLedger, ResourceLimits, APP_ARENA_POOL_CAP, RESOURCE_KINDS,
};
pub use error::VmError;
pub use group::{GroupId, ThreadGroup};
pub use properties::Properties;
pub use snapshot::{FrameSnap, InterpSnapshot, SNAPSHOT_VERSION};
pub use thread::{ThreadId, VmThread};
pub use vm::{SecurityManager, ThreadBuilder, UserResolver, Vm, VmBuilder};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, VmError>;
