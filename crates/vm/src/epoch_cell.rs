//! Epoch-published roots for the VM's security configuration.
//!
//! The policy, security manager, and user resolver used to live behind
//! single `RwLock`s that every access check read-locked and every reload
//! write-locked. Under an exec storm the root becomes the hottest lock in
//! the VM, and with a fair rwlock one queued writer stalls every subsequent
//! reader behind it (writer-starvation turned reader-starvation). The
//! [`EpochCell`] here replaces that: readers clone the published `Arc` out
//! of a per-thread *stripe*, and a publisher rewrites all stripes in turn
//! without ever queueing behind the read side.
//!
//! Concretely, the cell holds `STRIPES` copies of the published
//! `Option<Arc<T>>`, each behind its own mutex. A reader locks only the
//! stripe assigned to its thread (one thread-local read + one uncontended
//! lock + one refcount increment), so readers on different threads never
//! touch the same lock and a reload never waits on more than one in-flight
//! clone per stripe. A publisher serializes against other publishers, then
//! installs the new value stripe by stripe; when [`EpochCell::store`]
//! returns, every subsequent [`EpochCell::load`] observes the new value.
//!
//! During publication a reader may still observe the *previous* value from
//! a not-yet-rewritten stripe. That window is sound for the security roots
//! because of the PR-3 decision-cache discipline: `access_check` captures
//! the cache epoch **before** consulting the resolver or policy, and every
//! `set_policy`/`set_security_manager`/`set_user_resolver` bumps the epoch
//! only **after** its `store` completes. A walk that read the old value
//! therefore captured a pre-bump epoch, and its cache insert can never
//! serve a post-reload lookup.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Stripe count; a power of two. Eight stripes keep eight concurrently
/// checking threads off each other's cache lines without making a reload
/// rewrite an unreasonable number of slots.
const STRIPES: usize = 8;

static NEXT_READER: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The stripe this thread reads from, assigned round-robin on first
    /// use so concurrent readers spread across the stripes.
    static READER_STRIPE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn reader_stripe() -> usize {
    READER_STRIPE.with(|slot| match slot.get() {
        Some(idx) => idx,
        None => {
            let idx = NEXT_READER.fetch_add(1, Ordering::Relaxed) & (STRIPES - 1);
            slot.set(Some(idx));
            idx
        }
    })
}

/// A striped, epoch-published `Option<Arc<T>>` cell: lock-free-read in the
/// sense that readers never contend with each other or queue behind a
/// publisher — see the module docs for the protocol and its interaction
/// with the decision cache.
pub(crate) struct EpochCell<T: ?Sized> {
    stripes: [Mutex<Option<Arc<T>>>; STRIPES],
    /// Serializes publishers; never taken by readers.
    writer: Mutex<()>,
    /// Completed publications, for tests and diagnostics.
    version: AtomicU64,
}

impl<T: ?Sized> EpochCell<T> {
    /// Creates a cell publishing `initial`.
    pub(crate) fn new(initial: Option<Arc<T>>) -> EpochCell<T> {
        EpochCell {
            stripes: std::array::from_fn(|_| Mutex::new(initial.clone())),
            writer: Mutex::new(()),
            version: AtomicU64::new(0),
        }
    }

    /// Clones the published value out of the calling thread's stripe.
    pub(crate) fn load(&self) -> Option<Arc<T>> {
        self.stripes[reader_stripe()].lock().clone()
    }

    /// Publishes `value`. Once this returns, every subsequent
    /// [`EpochCell::load`] on any thread observes it. Publishers serialize
    /// with each other but never queue behind readers: each stripe lock is
    /// only ever held for the duration of one `Arc` clone.
    pub(crate) fn store(&self, value: Option<Arc<T>>) {
        let _publish = self.writer.lock();
        for stripe in &self.stripes {
            *stripe.lock() = value.clone();
        }
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Number of completed publications.
    #[cfg(test)]
    pub(crate) fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("version", &self.version.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::{Duration, Instant};

    #[test]
    fn load_sees_the_initial_and_stored_values() {
        let cell: EpochCell<u32> = EpochCell::new(Some(Arc::new(1)));
        assert_eq!(cell.load().as_deref(), Some(&1));
        cell.store(Some(Arc::new(2)));
        assert_eq!(cell.load().as_deref(), Some(&2));
        cell.store(None);
        assert!(cell.load().is_none());
        assert_eq!(cell.version(), 2);
    }

    #[test]
    fn empty_cell_loads_none() {
        let cell: EpochCell<String> = EpochCell::new(None);
        assert!(cell.load().is_none());
    }

    #[test]
    fn unsized_values_are_supported() {
        type Resolver = dyn Fn() -> u32 + Send + Sync;
        let cell: EpochCell<Resolver> = EpochCell::new(None);
        cell.store(Some(Arc::new(|| 7)));
        assert_eq!(cell.load().map(|f| f()), Some(7));
    }

    #[test]
    fn every_thread_observes_a_completed_store() {
        let cell: Arc<EpochCell<u64>> = Arc::new(EpochCell::new(Some(Arc::new(0))));
        cell.store(Some(Arc::new(42)));
        let handles: Vec<_> = (0..2 * STRIPES)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || *cell.load().expect("published"))
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), 42);
        }
    }

    #[test]
    fn stores_complete_while_readers_hammer_the_cell() {
        // The writer-starvation regression: with a fair rwlock, spinning
        // readers can keep a writer queued indefinitely. Here publications
        // must keep completing under sustained read pressure.
        let cell: Arc<EpochCell<u64>> = Arc::new(EpochCell::new(Some(Arc::new(0))));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..8)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let seen = *cell.load().expect("published");
                        assert!(seen >= last, "published values are monotone");
                        last = seen;
                    }
                })
            })
            .collect();
        let started = Instant::now();
        for i in 1..=100 {
            cell.store(Some(Arc::new(i)));
        }
        let elapsed = started.elapsed();
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            reader.join().unwrap();
        }
        assert_eq!(cell.version(), 100);
        assert!(
            elapsed < Duration::from_secs(5),
            "100 publications took {elapsed:?} under read pressure"
        );
    }
}
