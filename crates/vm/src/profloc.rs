//! Per-thread publication of the current call location for the sampling
//! profiler.
//!
//! Each thread that executes attributable code owns a
//! [`ThreadLoc`](jmp_obs::ThreadLoc) slot registered with the VM's
//! [`Profiler`]; every frame transition republishes the thread's *entire*
//! shadow stack into the slot (a `Vec<Arc<str>>` swap under a `try_lock`),
//! so the profiler's sampler thread can read a coherent stack at any
//! instant without stopping the world. A contended publish is simply
//! dropped — the next transition republishes the complete stack, so the
//! slot self-heals and the publisher never blocks.
//!
//! Frames come from two places: [`crate::stack::call_as`] publishes the
//! class name of natively-executing library code, and the `jbc`
//! interpreter publishes `Class.method` per interpreted call. Publication
//! is gated on [`Profiler::sampling_enabled`] (one atomic load) and is a
//! no-op on threads with no reachable profiler.

use std::cell::RefCell;
use std::sync::Arc;

use jmp_obs::{Profiler, ThreadLoc};

enum LocState {
    /// No profiler resolved on this thread yet; each push retries, so a
    /// thread that later enters a VM starts publishing.
    Unresolved,
    /// Registered with the profiler; `shadow` mirrors the published stack.
    Active {
        profiler: Profiler,
        slot: Arc<ThreadLoc>,
        shadow: Vec<Arc<str>>,
    },
}

thread_local! {
    static LOC: RefCell<LocState> = const { RefCell::new(LocState::Unresolved) };
}

/// Pushes `name` (a class or `Class.method` label) onto the thread's
/// published stack, returning a guard that pops it on drop.
///
/// `hint` supplies a profiler when no VM is current on the thread (benches,
/// embedding); otherwise the ambient [`Vm::current`](crate::Vm::current)
/// profiler is used. When no profiler is reachable or sampling is disabled
/// the guard is a no-op.
pub(crate) fn frame(name: &str, hint: Option<&Profiler>) -> FrameGuard {
    push_frame(|| Arc::from(name), hint)
}

/// Like [`frame`], but clones an already-interned label instead of
/// allocating a fresh `Arc<str>` — the interpreter's per-call path, where
/// the `Class.method` label was precomputed at image compile time.
pub(crate) fn frame_arc(name: &Arc<str>, hint: Option<&Profiler>) -> FrameGuard {
    push_frame(|| Arc::clone(name), hint)
}

/// Shared body: `make` materializes the label only when a profiler is
/// reachable and sampling is on, so the disabled path allocates nothing.
fn push_frame(make: impl FnOnce() -> Arc<str>, hint: Option<&Profiler>) -> FrameGuard {
    let pushed = LOC.with(|loc| {
        let mut state = loc.borrow_mut();
        if let LocState::Unresolved = &*state {
            let resolved = hint
                .cloned()
                .or_else(|| crate::Vm::current().map(|vm| vm.obs().profiler().clone()));
            let Some(profiler) = resolved else {
                return false;
            };
            let app = crate::thread::current_app_context().map(|ctx| ctx.app_id());
            let slot = profiler.register_thread(app);
            *state = LocState::Active {
                profiler,
                slot,
                shadow: Vec::new(),
            };
        }
        let LocState::Active {
            profiler,
            slot,
            shadow,
        } = &mut *state
        else {
            return false;
        };
        if !profiler.sampling_enabled() {
            return false;
        }
        shadow.push(make());
        slot.publish(shadow);
        true
    });
    FrameGuard { pushed }
}

/// Drops the thread's location state (spawn-wrapper teardown). The
/// profiler's weak registry entry dies with the slot and is pruned on the
/// next sampling pass.
pub(crate) fn clear() {
    LOC.with(|loc| *loc.borrow_mut() = LocState::Unresolved);
}

/// Pops the frame pushed by [`frame`] when dropped (no-op if nothing was
/// pushed).
pub(crate) struct FrameGuard {
    pushed: bool,
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        if !self.pushed {
            return;
        }
        LOC.with(|loc| {
            let mut state = loc.borrow_mut();
            if let LocState::Active { slot, shadow, .. } = &mut *state {
                shadow.pop();
                slot.publish(shadow);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_publish_and_pop_with_an_explicit_profiler() {
        let profiler = Profiler::new();
        {
            let _a = frame("Outer", Some(&profiler));
            let _b = frame("Outer.inner", Some(&profiler));
            assert!(profiler.sample_once(1_000) >= 1);
            let report = profiler.report();
            assert!(report.vm.stacks.keys().any(|k| k == "Outer;Outer.inner"));
        }
        clear();
    }

    #[test]
    fn no_profiler_means_noop_guards() {
        clear();
        let guard = frame("Nothing", None);
        assert!(!guard.pushed);
    }
}
