use std::collections::HashSet;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::VmError;
use crate::thread::ThreadId;
use crate::Result;

static NEXT_GROUP_ID: AtomicU64 = AtomicU64::new(1);

/// Identifier of a [`ThreadGroup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u64);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tg:{}", self.0)
    }
}

#[derive(Default)]
struct GroupState {
    /// Thread ids registered directly in this group.
    local_threads: HashSet<ThreadId>,
    /// Non-daemon threads in this group's entire subtree.
    nondaemon_in_subtree: usize,
    /// All threads (daemon + non-daemon) in this group's subtree.
    threads_in_subtree: usize,
    /// Child groups (weak: a group dies when its last handle drops).
    children: Vec<Weak<GroupInner>>,
    /// Destroyed groups accept no new threads or children.
    destroyed: bool,
    /// Invoked (outside the lock) when `nondaemon_in_subtree` falls to zero.
    empty_hook: Option<Arc<dyn Fn() + Send + Sync>>,
}

struct GroupInner {
    id: GroupId,
    name: String,
    parent: Option<ThreadGroup>,
    state: Mutex<GroupState>,
    nondaemon_zero: Condvar,
}

/// A node in the thread-group tree.
///
/// This is the paper's unit of application identity: "we define an
/// application to be a set of threads", delimited by a thread group; "the new
/// application is allowed to create threads only in its own thread group"
/// (paper §5.1, Fig 3). Groups count the non-daemon threads in their subtree,
/// which gives both the JVM-exit rule (Fig 1, on the root group) and the
/// application-exit rule (paper Feature 1, on the application's group).
///
/// `ThreadGroup` is a cheap handle; clones refer to the same group.
#[derive(Clone)]
pub struct ThreadGroup {
    inner: Arc<GroupInner>,
}

impl ThreadGroup {
    /// Creates a root group (no parent).
    pub fn new_root(name: impl Into<String>) -> ThreadGroup {
        ThreadGroup {
            inner: Arc::new(GroupInner {
                id: GroupId(NEXT_GROUP_ID.fetch_add(1, Ordering::Relaxed)),
                name: name.into(),
                parent: None,
                state: Mutex::new(GroupState::default()),
                nondaemon_zero: Condvar::new(),
            }),
        }
    }

    /// Creates a child group of `self`.
    ///
    /// # Errors
    ///
    /// [`VmError::IllegalState`] if this group has been destroyed.
    pub fn new_child(&self, name: impl Into<String>) -> Result<ThreadGroup> {
        let child = ThreadGroup {
            inner: Arc::new(GroupInner {
                id: GroupId(NEXT_GROUP_ID.fetch_add(1, Ordering::Relaxed)),
                name: name.into(),
                parent: Some(self.clone()),
                state: Mutex::new(GroupState::default()),
                nondaemon_zero: Condvar::new(),
            }),
        };
        let mut state = self.inner.state.lock();
        if state.destroyed {
            return Err(VmError::illegal_state(format!(
                "thread group {} is destroyed",
                self.inner.name
            )));
        }
        state.children.push(Arc::downgrade(&child.inner));
        Ok(child)
    }

    /// The group's identifier.
    pub fn id(&self) -> GroupId {
        self.inner.id
    }

    /// The group's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The parent group, if any.
    pub fn parent(&self) -> Option<&ThreadGroup> {
        self.inner.parent.as_ref()
    }

    /// Returns `true` if `self` and `other` are the same group.
    pub fn same_group(&self, other: &ThreadGroup) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Returns `true` if `self` is `other` or an ancestor of `other` — the
    /// relation the paper's system security manager bases thread and
    /// thread-group access on (§5.6).
    pub fn is_ancestor_of(&self, other: &ThreadGroup) -> bool {
        let mut cursor = Some(other.clone());
        while let Some(group) = cursor {
            if self.same_group(&group) {
                return true;
            }
            cursor = group.inner.parent.clone();
        }
        false
    }

    /// Registers a thread in this group, updating subtree counts up the
    /// ancestor chain. Low-level bookkeeping: [`crate::Vm`]'s thread spawner
    /// calls this; it is public for alternative runtimes layered on the
    /// group tree (and for property tests over the counting invariants).
    ///
    /// # Errors
    ///
    /// [`VmError::IllegalState`] if the group is destroyed.
    pub fn register_thread(&self, id: ThreadId, daemon: bool) -> Result<()> {
        {
            let mut state = self.inner.state.lock();
            if state.destroyed {
                return Err(VmError::illegal_state(format!(
                    "thread group {} is destroyed",
                    self.inner.name
                )));
            }
            state.local_threads.insert(id);
        }
        let mut cursor = Some(self.clone());
        while let Some(group) = cursor {
            let mut state = group.inner.state.lock();
            state.threads_in_subtree += 1;
            if !daemon {
                state.nondaemon_in_subtree += 1;
            }
            cursor = group.inner.parent.clone();
        }
        Ok(())
    }

    /// Removes a thread from this group, updating counts and firing
    /// empty-hooks / waking waiters on groups whose non-daemon count reaches
    /// zero. Low-level counterpart of [`ThreadGroup::register_thread`].
    pub fn deregister_thread(&self, id: ThreadId, daemon: bool) {
        self.inner.state.lock().local_threads.remove(&id);
        let mut hooks: Vec<Arc<dyn Fn() + Send + Sync>> = Vec::new();
        let mut cursor = Some(self.clone());
        while let Some(group) = cursor {
            {
                let mut state = group.inner.state.lock();
                state.threads_in_subtree = state.threads_in_subtree.saturating_sub(1);
                if !daemon {
                    state.nondaemon_in_subtree = state.nondaemon_in_subtree.saturating_sub(1);
                    if state.nondaemon_in_subtree == 0 {
                        group.inner.nondaemon_zero.notify_all();
                        if let Some(hook) = &state.empty_hook {
                            hooks.push(Arc::clone(hook));
                        }
                    }
                }
            }
            cursor = group.inner.parent.clone();
        }
        // Hooks run outside all group locks: they typically schedule
        // application teardown, which itself takes group locks.
        for hook in hooks {
            hook();
        }
    }

    /// Installs a hook invoked whenever the subtree's non-daemon count drops
    /// to zero. The multi-processing layer uses this for the paper's rule
    /// "the JVM will call the exit method as soon as there are only daemon
    /// threads left in the application's thread group" (§5.1).
    pub fn set_empty_hook(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        self.inner.state.lock().empty_hook = Some(hook);
    }

    /// Non-daemon threads currently in this group's subtree.
    pub fn nondaemon_count(&self) -> usize {
        self.inner.state.lock().nondaemon_in_subtree
    }

    /// All threads currently in this group's subtree.
    pub fn thread_count(&self) -> usize {
        self.inner.state.lock().threads_in_subtree
    }

    /// Thread ids registered directly in this group (not in children).
    pub fn local_thread_ids(&self) -> Vec<ThreadId> {
        let mut ids: Vec<ThreadId> = self
            .inner
            .state
            .lock()
            .local_threads
            .iter()
            .copied()
            .collect();
        ids.sort();
        ids
    }

    /// Live child groups.
    pub fn children(&self) -> Vec<ThreadGroup> {
        self.inner
            .state
            .lock()
            .children
            .iter()
            .filter_map(|w| w.upgrade().map(|inner| ThreadGroup { inner }))
            .collect()
    }

    /// Blocks until the subtree's non-daemon count is zero or `timeout`
    /// elapses. Returns `true` if the count reached zero.
    ///
    /// This is a low-level wait without interruption semantics; callers that
    /// must remain interruptible (anything running on a VM thread) should
    /// call it with a short timeout in a loop, checking
    /// [`crate::thread::check_interrupt`] between rounds — which is exactly
    /// what [`crate::Vm::await_termination`] and the application layer do.
    pub fn wait_nondaemon_zero(&self, timeout: Duration) -> bool {
        let mut state = self.inner.state.lock();
        if state.nondaemon_in_subtree == 0 {
            return true;
        }
        self.inner.nondaemon_zero.wait_for(&mut state, timeout);
        state.nondaemon_in_subtree == 0
    }

    /// Marks the group destroyed: no new threads or child groups may be
    /// added. Existing threads are unaffected (stopping them is the
    /// application layer's job).
    pub fn destroy(&self) {
        self.inner.state.lock().destroyed = true;
    }

    /// Returns `true` if [`ThreadGroup::destroy`] has been called.
    pub fn is_destroyed(&self) -> bool {
        self.inner.state.lock().destroyed
    }
}

impl fmt::Debug for ThreadGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.inner.state.lock();
        f.debug_struct("ThreadGroup")
            .field("id", &self.inner.id)
            .field("name", &self.inner.name)
            .field("nondaemon_in_subtree", &state.nondaemon_in_subtree)
            .field("threads_in_subtree", &state.threads_in_subtree)
            .field("destroyed", &state.destroyed)
            .finish()
    }
}

impl fmt::Display for ThreadGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.inner.name, self.inner.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tid(n: u64) -> ThreadId {
        ThreadId(n)
    }

    #[test]
    fn ancestor_relation() {
        let root = ThreadGroup::new_root("system");
        let main = root.new_child("main").unwrap();
        let app = main.new_child("app-1").unwrap();

        assert!(root.is_ancestor_of(&root));
        assert!(root.is_ancestor_of(&app));
        assert!(main.is_ancestor_of(&app));
        assert!(!app.is_ancestor_of(&main));
        assert!(!main.is_ancestor_of(&root));

        let sibling = main.new_child("app-2").unwrap();
        assert!(!app.is_ancestor_of(&sibling));
        assert!(!sibling.is_ancestor_of(&app));
    }

    #[test]
    fn counts_propagate_to_ancestors() {
        let root = ThreadGroup::new_root("system");
        let app = root.new_child("app").unwrap();

        app.register_thread(tid(1), false).unwrap();
        app.register_thread(tid(2), true).unwrap();
        assert_eq!(app.nondaemon_count(), 1);
        assert_eq!(app.thread_count(), 2);
        assert_eq!(root.nondaemon_count(), 1);
        assert_eq!(root.thread_count(), 2);

        app.deregister_thread(tid(1), false);
        assert_eq!(app.nondaemon_count(), 0);
        assert_eq!(root.nondaemon_count(), 0);
        assert_eq!(root.thread_count(), 1);
    }

    #[test]
    fn daemon_threads_do_not_keep_group_alive() {
        // Fig 1: only non-daemon threads matter for exit.
        let root = ThreadGroup::new_root("system");
        root.register_thread(tid(1), true).unwrap();
        assert!(root.wait_nondaemon_zero(Duration::from_millis(1)));
    }

    #[test]
    fn empty_hook_fires_on_last_nondaemon_exit() {
        let root = ThreadGroup::new_root("system");
        let app = root.new_child("app").unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        app.set_empty_hook(Arc::new(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        }));

        app.register_thread(tid(1), false).unwrap();
        app.register_thread(tid(2), false).unwrap();
        app.deregister_thread(tid(1), false);
        assert_eq!(fired.load(Ordering::SeqCst), 0, "one non-daemon remains");
        app.deregister_thread(tid(2), false);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn hook_on_parent_does_not_fire_while_child_has_threads() {
        let root = ThreadGroup::new_root("system");
        let a = root.new_child("a").unwrap();
        let b = root.new_child("b").unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        root.set_empty_hook(Arc::new(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        }));
        a.register_thread(tid(1), false).unwrap();
        b.register_thread(tid(2), false).unwrap();
        a.deregister_thread(tid(1), false);
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        b.deregister_thread(tid(2), false);
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn destroyed_group_rejects_new_threads_and_children() {
        let root = ThreadGroup::new_root("system");
        let app = root.new_child("app").unwrap();
        app.destroy();
        assert!(app.is_destroyed());
        assert!(app.register_thread(tid(1), false).is_err());
        assert!(app.new_child("sub").is_err());
        // The parent is unaffected.
        root.register_thread(tid(2), false).unwrap();
    }

    #[test]
    fn wait_nondaemon_zero_blocks_until_exit() {
        let root = ThreadGroup::new_root("system");
        root.register_thread(tid(1), false).unwrap();
        assert!(!root.wait_nondaemon_zero(Duration::from_millis(5)));

        let root2 = root.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            root2.deregister_thread(tid(1), false);
        });
        assert!(root.wait_nondaemon_zero(Duration::from_secs(5)));
        handle.join().unwrap();
    }

    #[test]
    fn children_enumeration_sees_live_groups_only() {
        let root = ThreadGroup::new_root("system");
        let _a = root.new_child("a").unwrap();
        {
            let _b = root.new_child("b").unwrap();
            assert_eq!(root.children().len(), 2);
        }
        // `b`'s last handle dropped; the weak ref no longer upgrades.
        assert_eq!(root.children().len(), 1);
        assert_eq!(root.children()[0].name(), "a");
    }

    #[test]
    fn local_thread_ids_sorted() {
        let g = ThreadGroup::new_root("g");
        g.register_thread(tid(5), false).unwrap();
        g.register_thread(tid(3), true).unwrap();
        assert_eq!(g.local_thread_ids(), vec![tid(3), tid(5)]);
    }
}
