//! The cost model: parameters of the simulated operating system.
//!
//! Defaults are order-of-magnitude figures consistent with the systems
//! literature the paper cites (SPIN, Exokernel-era measurements, single
//! address-space O/S papers): what matters for reproducing the paper's §2
//! argument is the *ratios* — an address-space switch costs several times a
//! same-space thread switch once TLB/cache refill is charged; a process
//! launch plus runtime boot costs orders of magnitude more than a thread
//! spawn; per-process fixed memory dwarfs per-application state. All
//! parameters are plain fields so experiments can sweep them.

use serde::{Deserialize, Serialize};

/// Parameters for the simulated O/S and hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of entering/leaving the kernel (one syscall), ns.
    pub syscall_ns: u64,
    /// Direct cost of switching between threads of one address space, ns.
    pub thread_switch_ns: u64,
    /// Extra direct cost of switching address spaces (page-table swap,
    /// pipeline effects), ns.
    pub addr_space_switch_extra_ns: u64,
    /// Cache+TLB refill charged after an address-space switch, per KiB of
    /// the incoming working set, ns.
    pub cache_refill_ns_per_kib: u64,
    /// Copying data kernel<->user, ns per KiB.
    pub copy_ns_per_kib: u64,
    /// Pipe buffer capacity, bytes.
    pub pipe_capacity: usize,
    /// fork+exec of a new process, µs.
    pub process_spawn_us: u64,
    /// Booting a JVM inside a fresh process (runtime init, core class
    /// loading/linking — paper §3.1), ms.
    pub jvm_boot_ms: u64,
    /// Creating a thread in an existing process, µs.
    pub thread_spawn_us: u64,
    /// Per-application setup inside a running multi-processing VM (thread
    /// group, class loader, re-defined `System` class), µs.
    pub app_setup_us: u64,
    /// Fixed memory of one JVM process (runtime, heap reserve, JIT, core
    /// class metadata), KiB.
    pub jvm_base_kib: u64,
    /// Memory of one application's own state (objects, stacks), KiB.
    pub app_kib: u64,
    /// Extra per-application memory inside a multi-processing VM (the
    /// re-loaded `System` class, loader, group bookkeeping), KiB.
    pub mp_app_overhead_kib: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            syscall_ns: 500,
            thread_switch_ns: 600,
            addr_space_switch_extra_ns: 1_800,
            cache_refill_ns_per_kib: 150,
            copy_ns_per_kib: 60,
            pipe_capacity: 65_536,
            process_spawn_us: 900,
            jvm_boot_ms: 350,
            thread_spawn_us: 25,
            app_setup_us: 120,
            jvm_base_kib: 8 * 1024,
            app_kib: 512,
            mp_app_overhead_kib: 48,
        }
    }
}

impl CostModel {
    /// Cost of one context switch, ns.
    ///
    /// `cross_address_space` charges the page-table swap and the cache/TLB
    /// refill for `working_set_kib` — the costs the paper's §2 says a
    /// single-address-space system avoids ("caches need not be cleared,
    /// page-table pointers don't have to be adjusted").
    pub fn context_switch_ns(&self, cross_address_space: bool, working_set_kib: u64) -> u64 {
        if cross_address_space {
            self.thread_switch_ns
                + self.addr_space_switch_extra_ns
                + self.cache_refill_ns_per_kib * working_set_kib
        } else {
            self.thread_switch_ns
        }
    }

    /// Cost of copying `bytes` across the user/kernel boundary once, ns.
    pub fn copy_ns(&self, bytes: usize) -> u64 {
        // Round up to whole KiB so tiny writes still pay something.
        let kib = bytes.div_ceil(1024) as u64;
        self.copy_ns_per_kib * kib.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_space_switch_is_much_more_expensive() {
        let m = CostModel::default();
        let same = m.context_switch_ns(false, 256);
        let cross = m.context_switch_ns(true, 256);
        assert!(
            cross > 10 * same,
            "cross-AS switch ({cross}ns) should dwarf same-AS ({same}ns)"
        );
    }

    #[test]
    fn cross_space_cost_grows_with_working_set() {
        let m = CostModel::default();
        assert!(m.context_switch_ns(true, 1024) > m.context_switch_ns(true, 16));
        // Same-space cost does not depend on the working set.
        assert_eq!(
            m.context_switch_ns(false, 1024),
            m.context_switch_ns(false, 16)
        );
    }

    #[test]
    fn copy_rounds_up() {
        let m = CostModel::default();
        assert_eq!(m.copy_ns(1), m.copy_ns(1024));
        assert_eq!(m.copy_ns(1025), 2 * m.copy_ns_per_kib);
        assert!(m.copy_ns(0) > 0);
    }

    #[test]
    fn model_serializes() {
        let m = CostModel::default();
        let json = serde_json::to_string(&m).unwrap();
        let back: CostModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
