//! A small discrete-event simulation engine.
//!
//! Events are closures over a world state `W`, scheduled at absolute
//! [`SimTime`]s; ties break in schedule order, so runs are deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Simulated time in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from nanoseconds.
    pub fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Builds from microseconds.
    pub fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Builds from milliseconds.
    pub fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since start (truncating).
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since start (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating addition of a nanosecond delta.
    pub fn after(self, delta_ns: u64) -> SimTime {
        SimTime(self.0.saturating_add(delta_ns))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

type EventFn<W> = Box<dyn FnOnce(&mut Simulation<W>, &mut W)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    run: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event-driven simulation over world state `W`.
pub struct Simulation<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<W>>>,
    executed: u64,
}

impl<W> Default for Simulation<W> {
    fn default() -> Simulation<W> {
        Simulation::new()
    }
}

impl<W> Simulation<W> {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Simulation<W> {
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Schedules `event` at absolute time `at` (clamped to now if in the
    /// past).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        event: impl FnOnce(&mut Simulation<W>, &mut W) + 'static,
    ) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq,
            run: Box::new(event),
        }));
    }

    /// Schedules `event` `delta_ns` after now.
    pub fn schedule_in(
        &mut self,
        delta_ns: u64,
        event: impl FnOnce(&mut Simulation<W>, &mut W) + 'static,
    ) {
        self.schedule_at(self.now.after(delta_ns), event);
    }

    /// Runs until the queue drains; returns the final time.
    pub fn run(&mut self, world: &mut W) -> SimTime {
        while let Some(Reverse(next)) = self.queue.pop() {
            self.now = next.at;
            self.executed += 1;
            (next.run)(self, world);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime(1_500_000).as_millis(), 1);
        assert_eq!(SimTime(500).to_string(), "500ns");
        assert_eq!(SimTime(1_500).to_string(), "1.500us");
        assert_eq!(SimTime(2_000_000).to_string(), "2.000ms");
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime(30), |_s, w: &mut Vec<u32>| w.push(3));
        sim.schedule_at(SimTime(10), |_s, w| w.push(1));
        sim.schedule_at(SimTime(20), |_s, w| w.push(2));
        let end = sim.run(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(end, SimTime(30));
        assert_eq!(sim.executed(), 3);
    }

    #[test]
    fn ties_break_in_schedule_order() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new();
        let mut world = Vec::new();
        for i in 0..5 {
            sim.schedule_at(SimTime(7), move |_s, w: &mut Vec<u32>| w.push(i));
        }
        sim.run(&mut world);
        assert_eq!(world, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_may_schedule_events() {
        // A chain: each event schedules the next until a counter runs out.
        struct World {
            remaining: u32,
            hops: u32,
        }
        fn hop(sim: &mut Simulation<World>, world: &mut World) {
            world.hops += 1;
            if world.remaining > 0 {
                world.remaining -= 1;
                sim.schedule_in(100, hop);
            }
        }
        let mut sim = Simulation::new();
        let mut world = World {
            remaining: 9,
            hops: 0,
        };
        sim.schedule_at(SimTime::ZERO, hop);
        let end = sim.run(&mut world);
        assert_eq!(world.hops, 10);
        assert_eq!(end, SimTime(900));
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut sim: Simulation<Vec<u64>> = Simulation::new();
        let mut world = Vec::new();
        sim.schedule_at(SimTime(100), |sim, w: &mut Vec<u64>| {
            sim.schedule_at(SimTime(5), |sim2, w2: &mut Vec<u64>| {
                w2.push(sim2.now().as_nanos());
            });
            w.push(sim.now().as_nanos());
        });
        sim.run(&mut world);
        assert_eq!(world, vec![100, 100]);
    }
}
