//! A round-robin scheduler model: interactive responsiveness under
//! compute load.
//!
//! §2's desktop scenario is many applications sharing one machine. What a
//! user *feels* is the latency of the interactive application while
//! compute-bound neighbors hog the CPU. The scheduler charges a context
//! switch on every task change — cross-address-space (multi-JVM) or
//! same-space (single VM) — so the per-switch gap of
//! [`CostModel::context_switch_ns`] compounds into response-time gaps.

use crate::cost::CostModel;
use crate::engine::SimTime;
use crate::os::HostingMode;

/// Workload parameters for [`simulate_interactive_load`].
#[derive(Debug, Clone)]
pub struct InteractiveLoad {
    /// Number of compute-bound tasks sharing the CPU.
    pub compute_tasks: u32,
    /// Scheduler quantum, ns.
    pub quantum_ns: u64,
    /// Interval between interactive events (user keystrokes/clicks), ns.
    pub event_interval_ns: u64,
    /// CPU work needed to respond to one event, ns.
    pub response_burst_ns: u64,
    /// Number of interactive events to simulate.
    pub events: u32,
    /// Working set per task, KiB (drives the cross-space refill charge).
    pub working_set_kib: u64,
}

impl Default for InteractiveLoad {
    fn default() -> InteractiveLoad {
        InteractiveLoad {
            compute_tasks: 4,
            quantum_ns: 10_000_000,         // 10ms quantum
            event_interval_ns: 100_000_000, // one event per 100ms
            response_burst_ns: 2_000_000,   // 2ms of work per response
            events: 50,
            working_set_kib: 512,
        }
    }
}

/// Response-latency statistics from a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseStats {
    /// Mean event-to-response-complete latency.
    pub mean: SimTime,
    /// Worst-case latency.
    pub max: SimTime,
    /// Total simulated span.
    pub span: SimTime,
    /// Context switches taken.
    pub switches: u64,
}

/// Simulates a round-robin CPU shared by `compute_tasks` always-runnable
/// tasks and one interactive task that wakes for each event, needs
/// `response_burst_ns` of CPU, then sleeps again. Returns the interactive
/// task's response-latency statistics.
///
/// `mode` selects the switch cost: separate processes
/// ([`HostingMode::MultiJvm`]) pay the cross-address-space price on every
/// hand-off; threads of one VM ([`HostingMode::SingleVm`]) pay the thread
/// switch only.
pub fn simulate_interactive_load(
    model: &CostModel,
    load: &InteractiveLoad,
    mode: HostingMode,
) -> ResponseStats {
    let cross = mode == HostingMode::MultiJvm;
    let switch_ns = model.context_switch_ns(cross, load.working_set_kib);

    let mut clock: u64 = 0;
    let mut switches: u64 = 0;
    let mut latencies: Vec<u64> = Vec::with_capacity(load.events as usize);

    let mut events_done: u32 = 0;
    let mut next_event: u64 = load.event_interval_ns;
    let mut burst_left: u64 = 0; // outstanding interactive work
    let mut event_arrived_at: u64 = 0;
    // Plain round-robin: the K compute tasks and the interactive task take
    // turns in a fixed cycle. An event that arrives mid-round waits until
    // the interactive task's slot comes around — so the wait scales with K,
    // and every hand-off in between is charged a context switch.
    loop {
        if events_done >= load.events && burst_left == 0 {
            break;
        }
        if load.compute_tasks == 0 && burst_left == 0 {
            // Idle machine: sleep until the next event.
            clock = clock.max(next_event);
        } else {
            // One round of the compute tasks, quantum each (non-preemptive:
            // an arriving event waits out the round — the round-robin cost
            // the user feels).
            for _ in 0..load.compute_tasks {
                switches += 1;
                clock += switch_ns + load.quantum_ns;
            }
        }
        // Deliver a pending event at the interactive task's slot.
        if burst_left == 0 && clock >= next_event && events_done < load.events {
            event_arrived_at = next_event;
            burst_left = load.response_burst_ns;
            next_event += load.event_interval_ns;
        }
        // The interactive task's turn.
        if burst_left > 0 {
            while burst_left > 0 {
                switches += 1;
                clock += switch_ns;
                let run = burst_left.min(load.quantum_ns);
                clock += run;
                burst_left -= run;
            }
            latencies.push(clock.saturating_sub(event_arrived_at));
            events_done += 1;
        }
    }

    let mean = if latencies.is_empty() {
        0
    } else {
        latencies.iter().sum::<u64>() / latencies.len() as u64
    };
    ResponseStats {
        mean: SimTime(mean),
        max: SimTime(latencies.iter().copied().max().unwrap_or(0)),
        span: SimTime(clock),
        switches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_vm_responds_faster_under_load() {
        let model = CostModel::default();
        let load = InteractiveLoad::default();
        let multi = simulate_interactive_load(&model, &load, HostingMode::MultiJvm);
        let single = simulate_interactive_load(&model, &load, HostingMode::SingleVm);
        assert!(
            multi.mean > single.mean,
            "multi {:?} vs single {:?}",
            multi.mean,
            single.mean
        );
        // (No assertion on max: it depends on event phase relative to the
        // round, which shifts between modes as rounds stretch.)
    }

    #[test]
    fn latency_grows_with_compute_load() {
        let model = CostModel::default();
        let quiet = InteractiveLoad {
            compute_tasks: 0,
            ..InteractiveLoad::default()
        };
        let busy = InteractiveLoad {
            compute_tasks: 8,
            ..InteractiveLoad::default()
        };
        let quiet_stats = simulate_interactive_load(&model, &quiet, HostingMode::SingleVm);
        let busy_stats = simulate_interactive_load(&model, &busy, HostingMode::SingleVm);
        assert!(busy_stats.mean > quiet_stats.mean);
    }

    #[test]
    fn idle_system_latency_is_burst_plus_one_switch() {
        let model = CostModel::default();
        let load = InteractiveLoad {
            compute_tasks: 0,
            events: 10,
            ..InteractiveLoad::default()
        };
        let stats = simulate_interactive_load(&model, &load, HostingMode::SingleVm);
        let expected =
            load.response_burst_ns + model.context_switch_ns(false, load.working_set_kib);
        assert_eq!(stats.mean.as_nanos(), expected);
        assert_eq!(stats.max.as_nanos(), expected);
    }

    #[test]
    fn all_events_are_served() {
        let model = CostModel::default();
        let load = InteractiveLoad {
            events: 25,
            ..InteractiveLoad::default()
        };
        let stats = simulate_interactive_load(&model, &load, HostingMode::MultiJvm);
        assert!(stats.span > SimTime::ZERO);
        assert!(stats.switches >= 25);
    }

    #[test]
    fn working_set_widens_the_gap() {
        let model = CostModel::default();
        let small = InteractiveLoad {
            working_set_kib: 16,
            ..InteractiveLoad::default()
        };
        let large = InteractiveLoad {
            working_set_kib: 2048,
            ..InteractiveLoad::default()
        };
        let gap = |load: &InteractiveLoad| {
            let multi = simulate_interactive_load(&model, load, HostingMode::MultiJvm);
            let single = simulate_interactive_load(&model, load, HostingMode::SingleVm);
            multi.mean.as_nanos() as f64 / single.mean.as_nanos().max(1) as f64
        };
        assert!(gap(&large) > gap(&small));
    }
}
