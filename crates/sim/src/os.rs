//! Scenario simulations: the multi-JVM (one process per application)
//! baseline that the paper's single-VM design is compared against (§2).

use crate::cost::CostModel;
use crate::engine::{SimTime, Simulation};

/// How applications are hosted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostingMode {
    /// One O/S process (with its own JVM) per application — the baseline.
    MultiJvm,
    /// All applications inside one multi-processing VM — the paper's design.
    SingleVm,
}

/// Simulates launching `n_apps` applications sequentially and returns the
/// total time.
///
/// Multi-JVM: each launch pays `fork+exec` plus a full JVM boot (runtime
/// init and core class linking, paper §3.1). Single-VM: each launch pays a
/// thread spawn plus the multi-processing setup (thread group, loader,
/// re-defined `System` class, §5.1/§5.5).
pub fn simulate_launch(model: &CostModel, n_apps: u32, mode: HostingMode) -> SimTime {
    struct World {
        per_launch_ns: u64,
        remaining: u32,
    }
    let per_launch_ns = match mode {
        HostingMode::MultiJvm => (model.process_spawn_us + model.jvm_boot_ms * 1_000) * 1_000,
        HostingMode::SingleVm => (model.thread_spawn_us + model.app_setup_us) * 1_000,
    };
    let mut sim = Simulation::new();
    let mut world = World {
        per_launch_ns,
        remaining: n_apps,
    };
    fn launch_one(sim: &mut Simulation<World>, world: &mut World) {
        if world.remaining == 0 {
            return;
        }
        world.remaining -= 1;
        let cost = world.per_launch_ns;
        sim.schedule_in(cost, launch_one);
    }
    sim.schedule_at(SimTime::ZERO, launch_one);
    sim.run(&mut world)
}

/// Simulates `switches` context switches between two tasks with the given
/// working set, and returns the total time. `cross_address_space` selects
/// process-to-process (multi-JVM) vs thread-to-thread (single VM) switching.
pub fn simulate_context_switches(
    model: &CostModel,
    switches: u32,
    cross_address_space: bool,
    working_set_kib: u64,
) -> SimTime {
    struct World {
        cost_ns: u64,
        remaining: u32,
    }
    let mut sim = Simulation::new();
    let mut world = World {
        cost_ns: model.context_switch_ns(cross_address_space, working_set_kib),
        remaining: switches,
    };
    fn switch(sim: &mut Simulation<World>, world: &mut World) {
        if world.remaining == 0 {
            return;
        }
        world.remaining -= 1;
        let cost = world.cost_ns;
        sim.schedule_in(cost, switch);
    }
    sim.schedule_at(SimTime::ZERO, switch);
    sim.run(&mut world)
}

/// Result of a pipe-transfer simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipeRun {
    /// Total simulated time.
    pub elapsed: SimTime,
    /// Context switches that occurred.
    pub switches: u64,
    /// Bytes transferred.
    pub bytes: u64,
}

impl PipeRun {
    /// Throughput in MiB/s.
    pub fn mib_per_sec(&self) -> f64 {
        if self.elapsed.as_nanos() == 0 {
            return f64::INFINITY;
        }
        (self.bytes as f64 / (1024.0 * 1024.0)) / (self.elapsed.as_nanos() as f64 / 1e9)
    }
}

/// Simulates transferring `total_bytes` through a blocking O/S pipe between
/// a writer and a reader in `chunk`-byte writes, and returns elapsed time
/// and context-switch count.
///
/// The writer fills the pipe buffer (one syscall + one copy per chunk),
/// blocks, and the scheduler switches to the reader, which drains it; each
/// hand-off is a context switch, cross-address-space when the endpoints are
/// separate processes (multi-JVM). This is the §2 claim "inter-process
/// communication is also much cheaper in a single address space" — compare
/// against the *measured* in-VM pipe of `jmp-vm`.
pub fn simulate_pipe_transfer(
    model: &CostModel,
    total_bytes: u64,
    chunk: usize,
    cross_address_space: bool,
    working_set_kib: u64,
) -> PipeRun {
    struct World {
        model: CostModel,
        total: u64,
        chunk: usize,
        produced: u64,
        consumed: u64,
        buffered: u64,
        cross: bool,
        ws: u64,
        switches: u64,
    }
    let mut sim = Simulation::new();
    let mut world = World {
        model: model.clone(),
        total: total_bytes,
        chunk: chunk.max(1),
        produced: 0,
        consumed: 0,
        buffered: 0,
        cross: cross_address_space,
        ws: working_set_kib,
        switches: 0,
    };

    fn writer_turn(sim: &mut Simulation<World>, world: &mut World) {
        let mut busy = 0u64;
        // Write whole chunks until the buffer has no room for another.
        while world.produced < world.total
            && world.buffered + world.chunk as u64 <= world.model.pipe_capacity as u64
        {
            let n = world.chunk.min((world.total - world.produced) as usize);
            busy += world.model.syscall_ns + world.model.copy_ns(n);
            world.produced += n as u64;
            world.buffered += n as u64;
        }
        if world.consumed < world.total {
            // Writer blocks (or finished); switch to the reader.
            world.switches += 1;
            let switch = world.model.context_switch_ns(world.cross, world.ws);
            sim.schedule_in(busy + switch, reader_turn);
        }
    }

    fn reader_turn(sim: &mut Simulation<World>, world: &mut World) {
        let mut busy = 0u64;
        while world.buffered > 0 {
            let n = world.chunk.min(world.buffered as usize);
            busy += world.model.syscall_ns + world.model.copy_ns(n);
            world.consumed += n as u64;
            world.buffered -= n as u64;
        }
        if world.consumed < world.total {
            // Pipe drained but more is coming; switch back to the writer.
            world.switches += 1;
            let switch = world.model.context_switch_ns(world.cross, world.ws);
            sim.schedule_in(busy + switch, writer_turn);
        } else {
            // Account the reader's final drain time.
            sim.schedule_in(busy, |_sim, _world| {});
        }
    }

    sim.schedule_at(SimTime::ZERO, writer_turn);
    let elapsed = sim.run(&mut world);
    PipeRun {
        elapsed,
        switches: world.switches,
        bytes: world.consumed,
    }
}

/// Total memory footprint (KiB) of hosting `n_apps` applications.
///
/// Multi-JVM: every application pays the fixed per-JVM cost. Single VM: one
/// fixed cost, plus per-application state and the small multi-processing
/// overhead (re-loaded `System` class, loader, group — §5.5).
pub fn memory_footprint_kib(model: &CostModel, n_apps: u64, mode: HostingMode) -> u64 {
    match mode {
        HostingMode::MultiJvm => n_apps * (model.jvm_base_kib + model.app_kib),
        HostingMode::SingleVm => {
            model.jvm_base_kib + n_apps * (model.app_kib + model.mp_app_overhead_kib)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_vm_launch_is_orders_of_magnitude_faster() {
        let m = CostModel::default();
        let multi = simulate_launch(&m, 8, HostingMode::MultiJvm);
        let single = simulate_launch(&m, 8, HostingMode::SingleVm);
        assert!(
            multi.as_nanos() > 100 * single.as_nanos(),
            "multi {multi} vs single {single}"
        );
    }

    #[test]
    fn launch_scales_linearly() {
        let m = CostModel::default();
        let four = simulate_launch(&m, 4, HostingMode::SingleVm);
        let eight = simulate_launch(&m, 8, HostingMode::SingleVm);
        assert_eq!(eight.as_nanos(), 2 * four.as_nanos());
        assert_eq!(simulate_launch(&m, 0, HostingMode::MultiJvm), SimTime::ZERO);
    }

    #[test]
    fn context_switch_storm_matches_unit_cost() {
        let m = CostModel::default();
        let n = 1000;
        let same = simulate_context_switches(&m, n, false, 256);
        assert_eq!(same.as_nanos(), u64::from(n) * m.thread_switch_ns);
        let cross = simulate_context_switches(&m, n, true, 256);
        assert_eq!(
            cross.as_nanos(),
            u64::from(n) * m.context_switch_ns(true, 256)
        );
    }

    #[test]
    fn pipe_transfer_conserves_bytes_and_counts_switches() {
        let m = CostModel::default();
        let run = simulate_pipe_transfer(&m, 1 << 20, 4096, true, 256);
        assert_eq!(run.bytes, 1 << 20);
        // 1 MiB through a 64 KiB buffer: 16 fills, two switches per round
        // trip except the final drain.
        assert_eq!(run.switches, 31);
        assert!(run.elapsed > SimTime::ZERO);
        assert!(run.mib_per_sec() > 0.0);
    }

    #[test]
    fn same_space_pipe_is_faster_than_cross_space() {
        let m = CostModel::default();
        let cross = simulate_pipe_transfer(&m, 1 << 22, 4096, true, 512);
        let same = simulate_pipe_transfer(&m, 1 << 22, 4096, false, 512);
        assert_eq!(cross.bytes, same.bytes);
        assert!(
            cross.elapsed.as_nanos() > same.elapsed.as_nanos(),
            "cross {} vs same {}",
            cross.elapsed,
            same.elapsed
        );
    }

    #[test]
    fn small_chunks_cost_more_than_large() {
        let m = CostModel::default();
        let small = simulate_pipe_transfer(&m, 1 << 20, 256, true, 256);
        let large = simulate_pipe_transfer(&m, 1 << 20, 16 * 1024, true, 256);
        assert!(small.elapsed > large.elapsed);
        assert!(small.mib_per_sec() < large.mib_per_sec());
    }

    #[test]
    fn memory_crossover() {
        let m = CostModel::default();
        // One application: single VM carries the same JVM base; roughly a
        // wash. Sixteen applications: multi-JVM pays 16 JVMs.
        let multi_16 = memory_footprint_kib(&m, 16, HostingMode::MultiJvm);
        let single_16 = memory_footprint_kib(&m, 16, HostingMode::SingleVm);
        assert!(
            multi_16 > 5 * single_16,
            "multi {multi_16} KiB vs single {single_16} KiB"
        );
        // Zero applications: the single VM still holds its base.
        assert_eq!(memory_footprint_kib(&m, 0, HostingMode::MultiJvm), 0);
        assert_eq!(
            memory_footprint_kib(&m, 0, HostingMode::SingleVm),
            m.jvm_base_kib
        );
    }
}
