//! # jmp-sim
//!
//! A discrete-event cost model of a conventional operating system hosting
//! **one JVM process per application** — the baseline the paper's §2 case
//! for a single multi-processing JVM argues against.
//!
//! The paper's claims are qualitative ("context switching is much less
//! expensive if performed within one address space, because caches need not
//! be cleared, page-table pointers don't have to be adjusted... IPC is also
//! much cheaper in a single address space"); hardware to measure 1997-era
//! processes is long gone, so per the substitution rule the comparison's
//! *multi-JVM side* is simulated from a parameterized [`CostModel`] while
//! the single-VM side is **measured** on the real `jmp-core` runtime by the
//! benchmark harness. The experiments in EXPERIMENTS.md (E5a–E5e) check
//! shapes and ratios, not absolute numbers.
//!
//! # Example
//!
//! ```
//! use jmp_sim::{simulate_launch, CostModel, HostingMode};
//!
//! let model = CostModel::default();
//! let multi = simulate_launch(&model, 4, HostingMode::MultiJvm);
//! let single = simulate_launch(&model, 4, HostingMode::SingleVm);
//! assert!(multi > single);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod engine;
mod os;
mod sched;

pub use cost::CostModel;
pub use engine::{SimTime, Simulation};
pub use os::{
    memory_footprint_kib, simulate_context_switches, simulate_launch, simulate_pipe_transfer,
    HostingMode, PipeRun,
};
pub use sched::{simulate_interactive_load, InteractiveLoad, ResponseStats};
