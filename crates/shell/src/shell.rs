//! The shell (paper §6.1).
//!
//! "The shell executes an infinite loop in which it reads in a command line
//! (provided by a terminal), interprets it, and possibly launches one or
//! more applications... The shell that we implemented uses pipes between
//! applications and input/output redirection. Normally, the input and output
//! streams of the applications that the shell launches are not changed (and,
//! hence, are the same as the shell's). However, in the case of pipes or
//! input/output redirection, the shell temporarily changes its own standard
//! input and output streams (to point to the appropriate pipe or file
//! streams) before each application is launched... Afterwards, the shell's
//! streams are re-set to their original values."

use jmp_core::{files, jsystem, pipes, Application, Error, MpRuntime};
use jmp_vm::io::{InStream, OutStream};
use jmp_vm::{Result, VmError};
use parking_lot::Mutex;

use crate::parser::{parse_line, Command, Stage};
use crate::terminal::Terminal;

/// One backgrounded pipeline.
struct Job {
    id: usize,
    line: String,
    apps: Vec<Application>,
}

/// The interactive shell state for one session.
pub struct Shell {
    jobs: Mutex<Vec<Job>>,
    next_job: Mutex<usize>,
}

impl Default for Shell {
    fn default() -> Shell {
        Shell::new()
    }
}

impl Shell {
    /// Creates a shell with no jobs.
    pub fn new() -> Shell {
        Shell {
            jobs: Mutex::new(Vec::new()),
            next_job: Mutex::new(1),
        }
    }

    /// The shell application's `main`: the read–interpret–launch loop.
    ///
    /// # Errors
    ///
    /// Only fatal stream failures; command errors are printed and the loop
    /// continues, like any shell.
    pub fn run(&self) -> Result<()> {
        let app = Application::current()
            .ok_or_else(|| VmError::illegal_state("shell must run as an application"))?;
        let stdin = app.stdin();
        let terminal = Terminal::from_stdin(&stdin);
        loop {
            let prompt = format!("{}@jmp:{}$ ", app.user().name(), app.cwd());
            let line = match &terminal {
                Some(term) => term.read_string(&prompt)?,
                None => stdin.read_line()?,
            };
            let Some(line) = line else {
                return Ok(()); // end of input: session over
            };
            match self.execute_line(&line) {
                Ok(ControlFlow::Continue) => {}
                Ok(ControlFlow::Quit) => return Ok(()),
                Err(Error::Interrupted) => return Ok(()),
                Err(err) => {
                    let _ = jsystem::eprintln(&format!("shell: {err}"));
                }
            }
        }
    }

    /// Executes one input line (sequence of `;`-separated commands).
    ///
    /// # Errors
    ///
    /// Parse and launch failures (printed by [`Shell::run`]).
    pub fn execute_line(&self, line: &str) -> std::result::Result<ControlFlow, Error> {
        for command in parse_line(line)? {
            if let ControlFlow::Quit = self.execute_command(&command, line)? {
                return Ok(ControlFlow::Quit);
            }
        }
        Ok(ControlFlow::Continue)
    }

    fn execute_command(
        &self,
        command: &Command,
        line: &str,
    ) -> std::result::Result<ControlFlow, Error> {
        // Builtins apply only to plain single-stage foreground commands.
        if command.stages.len() == 1 && !command.background {
            let stage = &command.stages[0];
            if stage.stdin_from.is_none() && stage.stdout_to.is_none() {
                match self.builtin(stage)? {
                    Builtin::Handled => return Ok(ControlFlow::Continue),
                    Builtin::Quit => return Ok(ControlFlow::Quit),
                    Builtin::NotBuiltin => {}
                }
            }
        }
        // Causal root for everything this command sets in motion: execs,
        // checks, pipe traffic, and AWT dispatches launched below all hang
        // off this span (or its children) in the flight record.
        let span = MpRuntime::current().and_then(|rt| {
            rt.vm()
                .obs()
                .recorder()
                .begin(jmp_obs::SpanCategory::Command, format!("sh:{line}"))
        });
        let outcome = self.run_pipeline(command, line);
        drop(span);
        outcome?;
        Ok(ControlFlow::Continue)
    }

    fn builtin(&self, stage: &Stage) -> std::result::Result<Builtin, Error> {
        match stage.program.as_str() {
            "quit" | "exit" | "logout" => Ok(Builtin::Quit),
            "cd" => {
                let target = match stage.args.first() {
                    Some(dir) => dir.clone(),
                    None => Application::current()
                        .map(|app| app.user().home().to_string())
                        .unwrap_or_else(|| "/".to_string()),
                };
                if let Err(e) = Application::set_cwd(&target) {
                    jsystem::eprintln(&format!("cd: {e}"))?;
                }
                Ok(Builtin::Handled)
            }
            "jobs" => {
                let jobs = self.jobs.lock();
                for job in jobs.iter() {
                    let running = job
                        .apps
                        .iter()
                        .filter(|a| !matches!(a.status(), jmp_core::AppStatus::Finished(_)))
                        .count();
                    jsystem::println(&format!("[{}] {} ({} running)", job.id, job.line, running))?;
                }
                Ok(Builtin::Handled)
            }
            "history" => {
                if let Some(term) = Application::current()
                    .map(|app| app.stdin())
                    .as_ref()
                    .and_then(Terminal::from_stdin)
                {
                    for (i, entry) in term.history().iter().enumerate() {
                        jsystem::println(&format!("{:>4}  {entry}", i + 1))?;
                    }
                }
                Ok(Builtin::Handled)
            }
            "help" => {
                jsystem::println(
                    "builtins: cd pwd jobs history top vmstat audit trace profile \
                     policyinfer ulimit migrate ps -l help quit; \
                     programs: ls cat echo head wc grep ps kill sleep touch \
                     mkdir rm cp mv whoami su passwd login appletviewer edit",
                )?;
                Ok(Builtin::Handled)
            }
            "top" => {
                self.top()?;
                Ok(Builtin::Handled)
            }
            "vmstat" => {
                self.vmstat()?;
                Ok(Builtin::Handled)
            }
            "audit" => {
                self.audit(&stage.args)?;
                Ok(Builtin::Handled)
            }
            // `ps -l` (the ledger view) is a permission-gated builtin; plain
            // `ps` falls through to the unprivileged program.
            "ps" if stage.args.first().map(String::as_str) == Some("-l") => {
                self.ps_ledger()?;
                Ok(Builtin::Handled)
            }
            "ulimit" => {
                self.ulimit(&stage.args)?;
                Ok(Builtin::Handled)
            }
            "migrate" => {
                self.migrate(&stage.args)?;
                Ok(Builtin::Handled)
            }
            "trace" => {
                self.trace(&stage.args)?;
                Ok(Builtin::Handled)
            }
            "profile" => {
                self.profile(&stage.args)?;
                Ok(Builtin::Handled)
            }
            "policyinfer" => {
                self.policyinfer(&stage.args)?;
                Ok(Builtin::Handled)
            }
            _ => Ok(Builtin::NotBuiltin),
        }
    }

    /// The `top` builtin: the live per-application metric table
    /// (`RuntimePermission("readMetrics")`-gated; a denial is printed — and
    /// audited — rather than killing the session).
    fn top(&self) -> std::result::Result<(), Error> {
        let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
        let rows = match jmp_core::obs::top_rows(&rt) {
            Ok(rows) => rows,
            Err(err) => {
                jsystem::eprintln(&format!("top: {err}"))?;
                return Ok(());
            }
        };
        jsystem::println(&format!(
            "{:>4} {:<16} {:<10} {:>4} {:>4} {:>4} {:>6} {:>7} {:>6} {:>6} {:>7} {:>9}",
            "ID",
            "NAME",
            "USER",
            "THR",
            "WIN",
            "STR",
            "QDEPTH",
            "CHECKS",
            "DENIED",
            "DISP",
            "CLASSES",
            "PIPE-B",
        ))?;
        for row in rows {
            jsystem::println(&format!(
                "{:>4} {:<16} {:<10} {:>4} {:>4} {:>4} {:>6} {:>7} {:>6} {:>6} {:>7} {:>9}",
                row.id,
                row.name,
                row.user,
                row.threads,
                row.windows,
                row.streams,
                row.queue_depth,
                row.checks,
                row.denied,
                row.dispatched,
                row.classes,
                row.pipe_bytes,
            ))?;
        }
        Ok(())
    }

    /// The `ps -l` builtin: one ledger row per application — live resource
    /// usage against quota, straight off each application's `AppContext`
    /// (`RuntimePermission("readMetrics")`-gated like `top`/`vmstat`).
    fn ps_ledger(&self) -> std::result::Result<(), Error> {
        let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
        let rows = match jmp_core::obs::ledger_rows(&rt) {
            Ok(rows) => rows,
            Err(err) => {
                jsystem::eprintln(&format!("ps: {err}"))?;
                return Ok(());
            }
        };
        jsystem::println(&format!(
            "{:>4} {:<16} {:<10} {:>12} {:>16} {:>14} {:>10} {:>16} {:>7}",
            "ID", "NAME", "USER", "THREADS", "PIPE-BYTES", "EVENTS", "HANDLES", "MEMORY", "BREACH",
        ))?;
        for row in rows {
            let cells: Vec<String> = row
                .resources
                .iter()
                .map(|(kind, used, limit)| fmt_quota(*kind, *used, *limit))
                .collect();
            jsystem::println(&format!(
                "{:>4} {:<16} {:<10} {:>12} {:>16} {:>14} {:>10} {:>16} {:>7}",
                row.id,
                row.name,
                row.user,
                cells.first().map_or("-", String::as_str),
                cells.get(1).map_or("-", String::as_str),
                cells.get(2).map_or("-", String::as_str),
                cells.get(3).map_or("-", String::as_str),
                cells.get(4).map_or("-", String::as_str),
                row.breaches,
            ))?;
        }
        Ok(())
    }

    /// The `ulimit` builtin: with no arguments, prints the current
    /// application's ledger against its quotas; `ulimit <resource> <limit>`
    /// re-quotas the current application and
    /// `ulimit <app-id> <resource> <limit>` another one — both through
    /// [`MpRuntime::set_limits`], i.e. gated by
    /// `ResourcePermission("setLimits")`.
    fn ulimit(&self, args: &[String]) -> std::result::Result<(), Error> {
        let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
        let app = Application::current().ok_or(Error::NotAnApplication)?;
        match args {
            [] => {
                let ctx = app.context();
                for &kind in jmp_vm::RESOURCE_KINDS.iter() {
                    jsystem::println(&format!(
                        "{:<16} {}",
                        kind.as_str(),
                        fmt_quota(kind, ctx.ledger().get(kind), ctx.limits().get(kind)),
                    ))?;
                }
                Ok(())
            }
            [resource, limit] => self.set_limit(&rt, app.id(), resource, limit),
            [id, resource, limit] => match id.parse::<u64>() {
                Ok(id) => self.set_limit(&rt, jmp_core::AppId(id), resource, limit),
                Err(_) => {
                    jsystem::eprintln("ulimit: expected a numeric application id")?;
                    Ok(())
                }
            },
            _ => {
                jsystem::eprintln(
                    "ulimit: usage: ulimit [[app-id] <resource> <limit>] \
                     (resources: threads pipe.bytes queued.events handles memory)",
                )?;
                Ok(())
            }
        }
    }

    /// The `migrate` builtin — the two halves of an application migration:
    ///
    /// * `migrate <app-id> <file>` checkpoints the running application to a
    ///   versioned snapshot file (written with the shell user's authority,
    ///   so ordinary file access control applies);
    /// * `migrate restore <file>` restores a snapshot file as a running
    ///   application, preserving its id, user, limits, and progress.
    ///
    /// Carrying the file between two VMs is the migration; both halves are
    /// gated by `RuntimePermission("checkpointApplication")`, and a denial
    /// is printed (and audited) rather than killing the session.
    fn migrate(&self, args: &[String]) -> std::result::Result<(), Error> {
        let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
        match args {
            [sub, path] if sub == "restore" => {
                let bytes = match files::read(path) {
                    Ok(bytes) => bytes,
                    Err(err) => {
                        jsystem::eprintln(&format!("migrate: {err}"))?;
                        return Ok(());
                    }
                };
                match rt.restore_app(&bytes) {
                    Ok(app) => jsystem::println(&format!(
                        "restored app {} ({}) as {}",
                        app.id().0,
                        app.name(),
                        app.user().name(),
                    ))?,
                    Err(err) => jsystem::eprintln(&format!("migrate: {err}"))?,
                }
                Ok(())
            }
            [id, path] => {
                let Ok(id) = id.parse::<u64>() else {
                    jsystem::eprintln("migrate: expected a numeric application id")?;
                    return Ok(());
                };
                match rt.checkpoint_app(jmp_core::AppId(id)) {
                    Ok(bytes) => {
                        let len = bytes.len();
                        if let Err(err) = files::write(path, &bytes) {
                            jsystem::eprintln(&format!("migrate: {err}"))?;
                        } else {
                            jsystem::println(&format!(
                                "checkpointed app {id} to {path} ({len} bytes)"
                            ))?;
                        }
                    }
                    Err(err) => jsystem::eprintln(&format!("migrate: {err}"))?,
                }
                Ok(())
            }
            _ => {
                jsystem::eprintln(
                    "migrate: usage: migrate <app-id> <file> | migrate restore <file>",
                )?;
                Ok(())
            }
        }
    }

    fn set_limit(
        &self,
        rt: &MpRuntime,
        id: jmp_core::AppId,
        resource: &str,
        limit: &str,
    ) -> std::result::Result<(), Error> {
        let Some(kind) = jmp_vm::ResourceKind::parse(resource) else {
            jsystem::eprintln(&format!(
                "ulimit: unknown resource {resource} \
                 (resources: threads pipe.bytes queued.events handles memory)"
            ))?;
            return Ok(());
        };
        let limit = match limit {
            "unlimited" => u64::MAX,
            other => match other.parse::<u64>() {
                Ok(limit) => limit,
                Err(_) => {
                    jsystem::eprintln("ulimit: the limit must be a number or `unlimited`")?;
                    return Ok(());
                }
            },
        };
        match rt.set_limits(id, kind, limit) {
            Ok(()) => jsystem::println(&format!(
                "app {} {} limit set to {}",
                id.0,
                kind.as_str(),
                if limit == u64::MAX {
                    "unlimited".to_string()
                } else {
                    limit.to_string()
                },
            ))?,
            Err(err) => jsystem::eprintln(&format!("ulimit: {err}"))?,
        }
        Ok(())
    }

    /// The `vmstat` builtin: the VM-wide rollup (counters summed and
    /// histograms merged across the VM registry and every live application),
    /// plus the event-sink and audit-log accounting.
    fn vmstat(&self) -> std::result::Result<(), Error> {
        let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
        let snapshot = match jmp_core::obs::vm_snapshot(&rt) {
            Ok(snapshot) => snapshot,
            Err(err) => {
                jsystem::eprintln(&format!("vmstat: {err}"))?;
                return Ok(());
            }
        };
        let rollup = jmp_core::obs::vm_rollup(&rt)?;
        for (name, value) in &rollup.counters {
            jsystem::println(&format!("{name:<24} {value}"))?;
        }
        for (name, value) in &snapshot.vm.gauges {
            jsystem::println(&format!("{name:<24} {value}"))?;
        }
        for (name, hist) in &rollup.histograms {
            jsystem::println(&format!("{name:<24} {}", hist.render_compact()))?;
        }
        // `sink.`-prefixed: the observability event sink's own accounting,
        // distinct from the GUI data-plane counters (`events.coalesced`,
        // `events.dropped`) printed from the rollup above.
        jsystem::println(&format!(
            "sink.events.published    {}",
            snapshot.events_published
        ))?;
        jsystem::println(&format!(
            "sink.events.dropped      {}",
            snapshot.events_dropped
        ))?;
        jsystem::println(&format!(
            "audit.total              {}",
            snapshot.audit_total
        ))?;
        jsystem::println(&format!(
            "spans.recorded           {}",
            snapshot.spans_recorded
        ))?;
        jsystem::println(&format!(
            "spans.dropped            {}",
            snapshot.spans_dropped
        ))?;
        let ledgers = jmp_core::obs::ledger_rows(&rt)?;
        if !ledgers.is_empty() {
            jsystem::println("ledgers:")?;
            for row in &ledgers {
                let cells: Vec<String> = row
                    .resources
                    .iter()
                    .map(|(kind, used, limit)| {
                        format!("{}={}", kind.as_str(), fmt_quota(*kind, *used, *limit))
                    })
                    .collect();
                jsystem::println(&format!(
                    "  {:>4} {:<16} {} breaches={}",
                    row.id,
                    row.name,
                    cells.join(" "),
                    row.breaches,
                ))?;
            }
        }
        let watchdogs = jmp_core::obs::watchdog_rows(&rt)?;
        if !watchdogs.is_empty() {
            jsystem::println("watchdogs:")?;
            for row in &watchdogs {
                jsystem::println(&format!(
                    "  {:<24} app={:<4} last-beat={:>6}ms beats={:<8} {}",
                    row.name,
                    row.app.map_or_else(|| "-".to_string(), |id| id.to_string()),
                    row.age_ms,
                    row.beats,
                    if row.stalled {
                        "STALLED"
                    } else if row.parked {
                        "parked"
                    } else {
                        "ok"
                    },
                ))?;
            }
        }
        // The demand ledger's busiest rows. Needs `readDemands` on top of
        // `readMetrics`; silently omitted (the denial is still audited)
        // so vmstat stays useful to metrics-only readers. The demands.*
        // counters themselves print with the rollup above.
        if let Ok(rows) = jmp_core::obs::demand_rows(&rt, None, None) {
            if !rows.is_empty() {
                let mut rows = rows;
                rows.sort_by_key(|r| std::cmp::Reverse(r.granted + r.denied));
                jsystem::println("demands:")?;
                for row in rows.iter().take(5) {
                    jsystem::println(&format!(
                        "  {:<24} user={:<10} granted={:<8} denied={:<6} {}{}",
                        row.source,
                        row.user.as_deref().unwrap_or("-"),
                        row.granted,
                        row.denied,
                        row.permission,
                        if row.via_user { " (via user)" } else { "" },
                    ))?;
                }
            }
        }
        // Top opcodes from the VM profiler. Needs `readProfile` on top of
        // `readMetrics`; silently omitted (the denial is still audited)
        // so vmstat stays useful to metrics-only readers.
        if let Ok(report) = jmp_core::obs::profile_report(&rt) {
            let top = report.vm.top_opcodes(5);
            if !top.is_empty() {
                jsystem::println("top opcodes:")?;
                for op in top {
                    jsystem::println(&format!(
                        "  {:<16} count={:<10} cost={}ns p50={}/p95={}/p99={}",
                        op.opcode, op.count, op.cost_ns, op.p50_ns, op.p95_ns, op.p99_ns,
                    ))?;
                }
            }
        }
        Ok(())
    }

    /// The `trace` builtin: `trace on|off` steers the VM-wide flight
    /// recorder, `trace dump [file]` exports its ring as Chrome
    /// `trace_event` JSON, and `trace` alone reports the current state.
    /// `RuntimePermission("traceVm")`-gated; a denial is printed — and
    /// audited — rather than killing the session.
    fn trace(&self, args: &[String]) -> std::result::Result<(), Error> {
        let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
        match args.first().map(String::as_str) {
            Some("on") => match jmp_core::obs::set_tracing(&rt, true) {
                Ok(()) => jsystem::println("tracing on")?,
                Err(err) => jsystem::eprintln(&format!("trace: {err}"))?,
            },
            Some("off") => match jmp_core::obs::set_tracing(&rt, false) {
                Ok(()) => jsystem::println("tracing off")?,
                Err(err) => jsystem::eprintln(&format!("trace: {err}"))?,
            },
            Some("dump") => {
                let json = match jmp_core::obs::chrome_trace(&rt) {
                    Ok(json) => json,
                    Err(err) => {
                        jsystem::eprintln(&format!("trace: {err}"))?;
                        return Ok(());
                    }
                };
                match args.get(1) {
                    Some(path) => match jmp_core::files::write(path, json.as_bytes()) {
                        Ok(()) => jsystem::println(&format!("trace written to {path}"))?,
                        Err(err) => jsystem::eprintln(&format!("trace: {err}"))?,
                    },
                    None => jsystem::println(&json)?,
                }
            }
            None | Some("status") => match jmp_core::obs::tracing_enabled(&rt) {
                Ok(true) => jsystem::println("tracing on")?,
                Ok(false) => jsystem::println("tracing off")?,
                Err(err) => jsystem::eprintln(&format!("trace: {err}"))?,
            },
            Some(other) => {
                jsystem::eprintln(&format!(
                    "trace: unknown argument {other} (usage: trace [on|off|dump [file]|status])"
                ))?;
            }
        }
        Ok(())
    }

    /// The `profile` builtin: `profile on|off` steers the VM profiler
    /// (opcode accounting *and* stack sampling), `profile report [--app
    /// <id>] [--json]` prints per-opcode accounting and sampled-stack
    /// weights (`--json` emits the full [`jmp_obs::ProfileReport`] as JSON),
    /// `profile flame [--app <id>] [file]` exports flamegraph.pl
    /// collapsed-stack text, `profile reset` starts a fresh window, and
    /// `profile`/`profile status` reports the current switch.
    /// `RuntimePermission("readProfile")`-gated; a denial is printed — and
    /// audited — rather than killing the session.
    fn profile(&self, args: &[String]) -> std::result::Result<(), Error> {
        let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
        let mut app: Option<u64> = None;
        let mut json = false;
        let mut rest: Vec<&str> = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if arg == "--app" {
                match iter.next().map(|v| v.parse::<u64>()) {
                    Some(Ok(id)) => app = Some(id),
                    _ => {
                        jsystem::eprintln("profile: --app expects an application id")?;
                        return Ok(());
                    }
                }
            } else if arg == "--json" {
                json = true;
            } else {
                rest.push(arg.as_str());
            }
        }
        match rest.first().copied() {
            Some("on") => match jmp_core::obs::set_profiling(&rt, true) {
                Ok(()) => jsystem::println("profiling on")?,
                Err(err) => jsystem::eprintln(&format!("profile: {err}"))?,
            },
            Some("off") => match jmp_core::obs::set_profiling(&rt, false) {
                Ok(()) => jsystem::println("profiling off")?,
                Err(err) => jsystem::eprintln(&format!("profile: {err}"))?,
            },
            Some("report") => {
                let report = match jmp_core::obs::profile_report(&rt) {
                    Ok(report) => report,
                    Err(err) => {
                        jsystem::eprintln(&format!("profile: {err}"))?;
                        return Ok(());
                    }
                };
                if json {
                    match serde_json::to_string_pretty(&report) {
                        Ok(text) => jsystem::println(&text)?,
                        Err(err) => jsystem::eprintln(&format!("profile: {err}"))?,
                    }
                    return Ok(());
                }
                jsystem::println(&format!(
                    "profile: accounting={} sampling={} flushes={} samples={}",
                    if report.accounting_enabled {
                        "on"
                    } else {
                        "off"
                    },
                    if report.sampling_enabled { "on" } else { "off" },
                    report.flushes,
                    report.samples_taken,
                ))?;
                let views: Vec<&jmp_obs::ProfileView> = match app {
                    Some(id) => report.view(Some(id)).into_iter().collect(),
                    None => std::iter::once(&report.vm)
                        .chain(report.apps.iter())
                        .collect(),
                };
                if app.is_some() && views.is_empty() {
                    jsystem::eprintln("profile: no samples for that application yet")?;
                }
                for view in views {
                    jsystem::println(&format!(
                        "{}: instructions={} cost={}ns stacks={}",
                        view.label,
                        view.instructions,
                        view.cost_ns,
                        view.stacks.len(),
                    ))?;
                    for op in view.top_opcodes(10) {
                        jsystem::println(&format!(
                            "  {:<16} count={:<10} cost={}ns p50={}/p95={}/p99={}",
                            op.opcode, op.count, op.cost_ns, op.p50_ns, op.p95_ns, op.p99_ns,
                        ))?;
                    }
                }
            }
            Some("flame") => {
                let text = match jmp_core::obs::profile_flame(&rt, app) {
                    Ok(text) => text,
                    Err(err) => {
                        jsystem::eprintln(&format!("profile: {err}"))?;
                        return Ok(());
                    }
                };
                match rest.get(1) {
                    Some(path) => match jmp_core::files::write(path, text.as_bytes()) {
                        Ok(()) => jsystem::println(&format!("flamegraph written to {path}"))?,
                        Err(err) => jsystem::eprintln(&format!("profile: {err}"))?,
                    },
                    None => jsystem::println(&text)?,
                }
            }
            Some("reset") => match jmp_core::obs::reset_profile(&rt) {
                Ok(()) => jsystem::println("profile window reset")?,
                Err(err) => jsystem::eprintln(&format!("profile: {err}"))?,
            },
            None | Some("status") => match jmp_core::obs::profiling_enabled(&rt) {
                Ok(true) => jsystem::println("profiling on")?,
                Ok(false) => jsystem::println("profiling off")?,
                Err(err) => jsystem::eprintln(&format!("profile: {err}"))?,
            },
            Some(other) => {
                jsystem::eprintln(&format!(
                    "profile: unknown argument {other} \
                     (usage: profile [on|off|report|flame [file]|reset|status] \
                     [--app <id>] [--json])"
                ))?;
            }
        }
        Ok(())
    }

    /// The `audit` builtin: `audit [-u user] [-a app-id] [--json]` lists
    /// recent permission denials (`RuntimePermission("readAuditLog")`-gated).
    /// `--json` prints the records as a JSON array for scripts and the CI
    /// harness instead of the human table.
    fn audit(&self, args: &[String]) -> std::result::Result<(), Error> {
        let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
        let mut user: Option<String> = None;
        let mut app: Option<u64> = None;
        let mut json = false;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "-u" => user = iter.next().cloned(),
                "-a" => match iter.next().map(|v| v.parse::<u64>()) {
                    Some(Ok(id)) => app = Some(id),
                    _ => {
                        jsystem::eprintln("audit: -a expects an application id")?;
                        return Ok(());
                    }
                },
                "--json" => json = true,
                other => {
                    jsystem::eprintln(&format!(
                        "audit: unknown argument {other} \
                         (usage: audit [-u user] [-a app-id] [--json])"
                    ))?;
                    return Ok(());
                }
            }
        }
        let records = match jmp_core::obs::audit_records(&rt, user.as_deref(), app) {
            Ok(records) => records,
            Err(err) => {
                jsystem::eprintln(&format!("audit: {err}"))?;
                return Ok(());
            }
        };
        if json {
            match serde_json::to_string_pretty(&records) {
                Ok(text) => jsystem::println(&text)?,
                Err(err) => jsystem::eprintln(&format!("audit: {err}"))?,
            }
            return Ok(());
        }
        for record in &records {
            jsystem::println(&format!(
                "#{:<4} +{:>6}ms user={:<10} app={:<4} {} [{}]",
                record.seq,
                record.at_ms,
                record.user.as_deref().unwrap_or("-"),
                record
                    .app
                    .map_or_else(|| "-".to_string(), |id| id.to_string()),
                record.permission,
                record.context,
            ))?;
        }
        jsystem::println(&format!("{} denial(s)", records.len()))?;
        Ok(())
    }

    /// The `policyinfer` builtin — the demand observatory's front end:
    ///
    /// * `policyinfer [report] [--app <id>] [--user <name>] [--json]` —
    ///   the demand ledger's rows (`RuntimePermission("readDemands")`);
    /// * `policyinfer emit [file]` — run least-privilege inference and print
    ///   (or write) the resulting policy file
    ///   (`RuntimePermission("inferPolicy")`);
    /// * `policyinfer diff [--json]` — the over-grant report: installed
    ///   grant entries never exercised by any observed demand;
    /// * `policyinfer reset` — clear the ledger for a fresh window;
    /// * `policyinfer on|off` — toggle demand recording.
    ///
    /// A denial is printed — and audited — rather than killing the session.
    fn policyinfer(&self, args: &[String]) -> std::result::Result<(), Error> {
        let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
        let mut app: Option<u64> = None;
        let mut user: Option<String> = None;
        let mut json = false;
        let mut rest: Vec<&str> = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--app" => match iter.next().map(|v| v.parse::<u64>()) {
                    Some(Ok(id)) => app = Some(id),
                    _ => {
                        jsystem::eprintln("policyinfer: --app expects an application id")?;
                        return Ok(());
                    }
                },
                "--user" => match iter.next() {
                    Some(name) => user = Some(name.clone()),
                    None => {
                        jsystem::eprintln("policyinfer: --user expects a user name")?;
                        return Ok(());
                    }
                },
                "--json" => json = true,
                other => rest.push(other),
            }
        }
        match rest.first().copied() {
            None | Some("report") => {
                let rows = match jmp_core::obs::demand_rows(&rt, app, user.as_deref()) {
                    Ok(rows) => rows,
                    Err(err) => {
                        jsystem::eprintln(&format!("policyinfer: {err}"))?;
                        return Ok(());
                    }
                };
                if json {
                    match serde_json::to_string_pretty(&rows) {
                        Ok(text) => jsystem::println(&text)?,
                        Err(err) => jsystem::eprintln(&format!("policyinfer: {err}"))?,
                    }
                    return Ok(());
                }
                jsystem::println(&format!(
                    "{:<24} {:<10} {:>8} {:>6} {:>4} {}",
                    "SOURCE", "USER", "GRANTED", "DENIED", "VIA", "PERMISSION",
                ))?;
                for row in &rows {
                    jsystem::println(&format!(
                        "{:<24} {:<10} {:>8} {:>6} {:>4} {}",
                        row.source,
                        row.user.as_deref().unwrap_or("-"),
                        row.granted,
                        row.denied,
                        if row.via_user { "user" } else { "code" },
                        row.permission,
                    ))?;
                }
                jsystem::println(&format!("{} demand row(s)", rows.len()))?;
            }
            Some("emit") => {
                let policy = match jmp_core::obs::inferred_policy(&rt) {
                    Ok(policy) => policy,
                    Err(err) => {
                        jsystem::eprintln(&format!("policyinfer: {err}"))?;
                        return Ok(());
                    }
                };
                let rows = jmp_core::obs::demand_rows(&rt, None, None)
                    .map(|rows| rows.len())
                    .unwrap_or(0);
                let text = jmp_security::emit_policy_text(
                    &policy,
                    &format!("derived from {rows} demand-ledger rows"),
                );
                match rest.get(1) {
                    Some(path) => match jmp_core::files::write(path, text.as_bytes()) {
                        Ok(()) => jsystem::println(&format!("inferred policy written to {path}"))?,
                        Err(err) => jsystem::eprintln(&format!("policyinfer: {err}"))?,
                    },
                    None => jsystem::println(&text)?,
                }
            }
            Some("diff") => {
                let diff = match jmp_core::obs::policy_diff(&rt) {
                    Ok(diff) => diff,
                    Err(err) => {
                        jsystem::eprintln(&format!("policyinfer: {err}"))?;
                        return Ok(());
                    }
                };
                if json {
                    match serde_json::to_string_pretty(&diff) {
                        Ok(text) => jsystem::println(&text)?,
                        Err(err) => jsystem::eprintln(&format!("policyinfer: {err}"))?,
                    }
                    return Ok(());
                }
                let unused = diff.iter().filter(|r| !r.exercised && !r.config).count();
                for row in &diff {
                    jsystem::println(&format!(
                        "{:<10} {} :: {}",
                        if row.config {
                            "config"
                        } else if row.exercised {
                            "exercised"
                        } else {
                            "UNUSED"
                        },
                        row.target,
                        row.permission,
                    ))?;
                }
                jsystem::println(&format!(
                    "{} grant entr(ies), {unused} unexercised",
                    diff.len()
                ))?;
            }
            Some("reset") => match jmp_core::obs::reset_demands(&rt) {
                Ok(()) => jsystem::println("demand ledger reset")?,
                Err(err) => jsystem::eprintln(&format!("policyinfer: {err}"))?,
            },
            Some("on") => match jmp_core::obs::set_demand_recording(&rt, true) {
                Ok(()) => jsystem::println("demand recording on")?,
                Err(err) => jsystem::eprintln(&format!("policyinfer: {err}"))?,
            },
            Some("off") => match jmp_core::obs::set_demand_recording(&rt, false) {
                Ok(()) => jsystem::println("demand recording off")?,
                Err(err) => jsystem::eprintln(&format!("policyinfer: {err}"))?,
            },
            Some(other) => {
                jsystem::eprintln(&format!(
                    "policyinfer: unknown argument {other} \
                     (usage: policyinfer [report|emit [file]|diff|reset|on|off] \
                     [--app <id>] [--user <name>] [--json])"
                ))?;
            }
        }
        Ok(())
    }

    /// Launches a pipeline: the paper's stream-swapping dance. Returns the
    /// launched applications (empty for unknown commands).
    fn run_pipeline(
        &self,
        command: &Command,
        line: &str,
    ) -> std::result::Result<Vec<Application>, Error> {
        let rt = MpRuntime::current().ok_or(Error::NotAnApplication)?;
        // `command not found` beats a ClassNotFound stack trace.
        for stage in &command.stages {
            if !rt.vm().material().contains(&stage.program) {
                jsystem::eprintln(&format!("shell: {}: command not found", stage.program))?;
                return Ok(Vec::new());
            }
        }
        let shell_app = Application::current().ok_or(Error::NotAnApplication)?;
        let saved_in = shell_app.stdin();
        let saved_out = shell_app.stdout();
        let saved_err = shell_app.stderr();

        let n = command.stages.len();
        let mut apps: Vec<Application> = Vec::with_capacity(n);
        // The write end the shell created for each stage's stdout (closed by
        // the shell once that stage finishes — "it is the shell's
        // responsibility to close those streams", §5.1).
        let mut created_writers: Vec<Option<OutStream>> = Vec::with_capacity(n);
        let mut prev_reader: Option<InStream> = None;
        let mut created_readers: Vec<InStream> = Vec::new();
        let launch_result = (|| -> std::result::Result<(), Error> {
            for (i, stage) in command.stages.iter().enumerate() {
                let stdin = match (&stage.stdin_from, prev_reader.take()) {
                    (Some(path), _) => {
                        let s = files::open_in(path)?;
                        created_readers.push(s.clone());
                        s
                    }
                    (None, Some(reader)) => reader,
                    (None, None) => saved_in.clone(),
                };
                let (stdout, writer) = match &stage.stdout_to {
                    Some(redirect) => {
                        let s = files::open_out(&redirect.path, redirect.append)?;
                        (s.clone(), Some(s))
                    }
                    None if i + 1 < n => {
                        let (w, r) = pipes::make_pipe()?;
                        prev_reader = Some(r);
                        (w.clone(), Some(w))
                    }
                    None => (saved_out.clone(), None),
                };
                // Temporarily adopt the child's streams so exec inherits them.
                Application::set_streams(Some(stdin), Some(stdout), Some(saved_err.clone()))?;
                let launched = Application::exec(&stage.program, &to_refs(&stage.args));
                // Restore before handling any error.
                Application::set_streams(
                    Some(saved_in.clone()),
                    Some(saved_out.clone()),
                    Some(saved_err.clone()),
                )?;
                apps.push(launched?);
                created_writers.push(writer);
            }
            Ok(())
        })();
        // Always restore, even if a stage failed to launch mid-way.
        Application::set_streams(Some(saved_in), Some(saved_out), Some(saved_err))?;
        launch_result?;

        if command.background {
            let id = {
                let mut next = self.next_job.lock();
                let id = *next;
                *next += 1;
                id
            };
            jsystem::println(&format!("[{id}] started"))?;
            self.jobs.lock().push(Job {
                id,
                line: line.trim().to_string(),
                apps: apps.clone(),
            });
            // A watcher closes the created pipe ends as stages finish.
            let token = shell_app.io_token();
            let watch_apps = apps.clone();
            let vm = rt.vm().clone();
            vm.thread_builder()
                .name(format!("job-{id}-watcher"))
                .daemon(true)
                .spawn(move |_| {
                    for (app, writer) in watch_apps.iter().zip(created_writers) {
                        let _ = app.wait_for();
                        if let Some(writer) = writer {
                            let _ = writer.close(token);
                        }
                    }
                })
                .map_err(Error::from)?;
        } else {
            let token = shell_app.io_token();
            for (app, writer) in apps.iter().zip(created_writers) {
                app.wait_for()?;
                // Close the pipe/file write end we created for this stage so
                // the next stage sees end-of-file.
                if let Some(writer) = writer {
                    let _ = writer.close(token);
                }
            }
            for reader in created_readers {
                let _ = reader.close(token);
            }
        }
        Ok(apps)
    }
}

fn to_refs(args: &[String]) -> Vec<&str> {
    args.iter().map(String::as_str).collect()
}

/// Renders `used/limit` for `kind`, with an unlimited quota shown as `-`
/// and byte-denominated resources (memory, pipe bytes) in human units.
fn fmt_quota(kind: jmp_vm::ResourceKind, used: u64, limit: u64) -> String {
    let render = |n: u64| {
        if kind.is_bytes() {
            fmt_bytes(n)
        } else {
            n.to_string()
        }
    };
    if limit == u64::MAX {
        format!("{}/-", render(used))
    } else {
        format!("{}/{}", render(used), render(limit))
    }
}

/// Renders a byte count in human units: `777B`, `4.0KiB`, `1.5MiB`, `2.0GiB`.
fn fmt_bytes(n: u64) -> String {
    const KIB: u64 = 1 << 10;
    const MIB: u64 = 1 << 20;
    const GIB: u64 = 1 << 30;
    match n {
        0..=1023 => format!("{n}B"),
        KIB..=1048575 => format!("{:.1}KiB", n as f64 / KIB as f64),
        MIB..=1073741823 => format!("{:.1}MiB", n as f64 / MIB as f64),
        _ => format!("{:.1}GiB", n as f64 / GIB as f64),
    }
}

/// Whether the shell loop should continue after a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFlow {
    /// Keep reading.
    Continue,
    /// `quit`/`exit` was entered.
    Quit,
}

#[allow(clippy::enum_variant_names)]
enum Builtin {
    Handled,
    Quit,
    NotBuiltin,
}

/// The `shell` class's `main`.
pub fn shell_main(_args: Vec<String>) -> Result<()> {
    Shell::new().run()
}
