//! Command-line parsing for the shell (paper §6.1): simple commands,
//! pipelines (`|`), input/output redirection (`<`, `>`, `>>`), background
//! jobs (`&`), and sequencing (`;`) — "with the syntax borrowed from UNIX".

use jmp_core::Error;

/// One stage of a pipeline: a program name, its arguments, and any
/// redirections attached to this stage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Stage {
    /// Program (class) name.
    pub program: String,
    /// Arguments.
    pub args: Vec<String>,
    /// `< file`.
    pub stdin_from: Option<String>,
    /// `> file` / `>> file`.
    pub stdout_to: Option<Redirect>,
}

/// An output redirection target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Redirect {
    /// Target file path.
    pub path: String,
    /// `true` for `>>`.
    pub append: bool,
}

/// A parsed command: one or more pipeline stages, possibly backgrounded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// The pipeline stages, in order.
    pub stages: Vec<Stage>,
    /// `true` if the command ended with `&`.
    pub background: bool,
}

/// Parses a command line into a sequence of [`Command`]s (split on `;`).
/// Empty input parses to an empty sequence.
///
/// # Errors
///
/// [`Error::Io`] describing the syntax problem (empty pipeline stage,
/// dangling redirection, unterminated quote).
pub fn parse_line(line: &str) -> Result<Vec<Command>, Error> {
    let tokens = tokenize(line)?;
    let mut commands = Vec::new();
    for chunk in split_on(&tokens, ";") {
        if chunk.is_empty() {
            continue;
        }
        commands.push(parse_command(chunk)?);
    }
    Ok(commands)
}

fn syntax(message: impl Into<String>) -> Error {
    Error::Io {
        message: format!("syntax error: {}", message.into()),
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Word(String),
    Op(&'static str),
}

fn tokenize(line: &str) -> Result<Vec<Token>, Error> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '|' => {
                chars.next();
                tokens.push(Token::Op("|"));
            }
            ';' => {
                chars.next();
                tokens.push(Token::Op(";"));
            }
            '&' => {
                chars.next();
                tokens.push(Token::Op("&"));
            }
            '<' => {
                chars.next();
                tokens.push(Token::Op("<"));
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    tokens.push(Token::Op(">>"));
                } else {
                    tokens.push(Token::Op(">"));
                }
            }
            '"' => {
                chars.next();
                let mut word = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '"' {
                        closed = true;
                        break;
                    }
                    word.push(c);
                }
                if !closed {
                    return Err(syntax("unterminated quote"));
                }
                tokens.push(Token::Word(word));
            }
            _ => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || "|;&<>\"".contains(c) {
                        break;
                    }
                    word.push(c);
                    chars.next();
                }
                tokens.push(Token::Word(word));
            }
        }
    }
    Ok(tokens)
}

fn split_on<'t>(tokens: &'t [Token], op: &str) -> Vec<&'t [Token]> {
    let mut chunks = Vec::new();
    let mut start = 0;
    for (i, tok) in tokens.iter().enumerate() {
        if matches!(tok, Token::Op(o) if *o == op) {
            chunks.push(&tokens[start..i]);
            start = i + 1;
        }
    }
    chunks.push(&tokens[start..]);
    chunks
}

fn parse_command(tokens: &[Token]) -> Result<Command, Error> {
    // Background marker must be the final token.
    let (tokens, background) = match tokens.last() {
        Some(Token::Op("&")) => (&tokens[..tokens.len() - 1], true),
        _ => (tokens, false),
    };
    if tokens.iter().any(|t| matches!(t, Token::Op("&"))) {
        return Err(syntax("`&` is only allowed at the end of a command"));
    }
    let mut stages = Vec::new();
    for chunk in split_on(tokens, "|") {
        stages.push(parse_stage(chunk)?);
    }
    Ok(Command { stages, background })
}

fn parse_stage(tokens: &[Token]) -> Result<Stage, Error> {
    let mut stage = Stage::default();
    let mut iter = tokens.iter().peekable();
    while let Some(tok) = iter.next() {
        match tok {
            Token::Word(w) => {
                if stage.program.is_empty() {
                    stage.program = w.clone();
                } else {
                    stage.args.push(w.clone());
                }
            }
            Token::Op("<") => match iter.next() {
                Some(Token::Word(path)) => stage.stdin_from = Some(path.clone()),
                _ => return Err(syntax("`<` needs a file name")),
            },
            Token::Op(">") => match iter.next() {
                Some(Token::Word(path)) => {
                    stage.stdout_to = Some(Redirect {
                        path: path.clone(),
                        append: false,
                    })
                }
                _ => return Err(syntax("`>` needs a file name")),
            },
            Token::Op(">>") => match iter.next() {
                Some(Token::Word(path)) => {
                    stage.stdout_to = Some(Redirect {
                        path: path.clone(),
                        append: true,
                    })
                }
                _ => return Err(syntax("`>>` needs a file name")),
            },
            Token::Op(other) => return Err(syntax(format!("unexpected `{other}`"))),
        }
    }
    if stage.program.is_empty() {
        return Err(syntax("empty command in pipeline"));
    }
    Ok(stage)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(line: &str) -> Command {
        let mut commands = parse_line(line).unwrap();
        assert_eq!(commands.len(), 1, "expected one command in {line:?}");
        commands.remove(0)
    }

    #[test]
    fn simple_command() {
        let cmd = one("ls -l /tmp");
        assert!(!cmd.background);
        assert_eq!(cmd.stages.len(), 1);
        assert_eq!(cmd.stages[0].program, "ls");
        assert_eq!(cmd.stages[0].args, vec!["-l", "/tmp"]);
    }

    #[test]
    fn pipeline() {
        let cmd = one("cat notes.txt | grep secret | wc");
        let programs: Vec<&str> = cmd.stages.iter().map(|s| s.program.as_str()).collect();
        assert_eq!(programs, vec!["cat", "grep", "wc"]);
        assert_eq!(cmd.stages[1].args, vec!["secret"]);
    }

    #[test]
    fn redirections() {
        let cmd = one("wc < input.txt > out.txt");
        assert_eq!(cmd.stages[0].stdin_from.as_deref(), Some("input.txt"));
        assert_eq!(
            cmd.stages[0].stdout_to,
            Some(Redirect {
                path: "out.txt".into(),
                append: false
            })
        );
        let cmd = one("echo hi >> log.txt");
        assert!(cmd.stages[0].stdout_to.as_ref().unwrap().append);
    }

    #[test]
    fn background_and_sequencing() {
        let cmd = one("hotjava &");
        assert!(cmd.background);
        assert_eq!(cmd.stages[0].program, "hotjava");

        let commands = parse_line("cd /tmp ; ls; echo done &").unwrap();
        assert_eq!(commands.len(), 3);
        assert!(!commands[0].background);
        assert!(commands[2].background);
    }

    #[test]
    fn quoting() {
        let cmd = one(r#"echo "hello world" plain"#);
        assert_eq!(cmd.stages[0].args, vec!["hello world", "plain"]);
        assert!(parse_line(r#"echo "unterminated"#).is_err());
    }

    #[test]
    fn operators_without_spaces() {
        let cmd = one("cat a.txt|wc>n.txt");
        assert_eq!(cmd.stages.len(), 2);
        assert_eq!(cmd.stages[0].program, "cat");
        assert_eq!(cmd.stages[1].program, "wc");
        assert_eq!(cmd.stages[1].stdout_to.as_ref().unwrap().path, "n.txt");
    }

    #[test]
    fn error_cases() {
        assert!(parse_line("ls | | wc").is_err());
        assert!(parse_line("ls >").is_err());
        assert!(
            parse_line("< only").is_err(),
            "a redirect alone is not a command"
        );
        assert!(parse_line("& ls").is_err());
        assert!(parse_line("ls & wc").is_err());
        assert_eq!(parse_line("").unwrap(), vec![]);
        assert_eq!(parse_line("  ;  ; ").unwrap(), vec![]);
    }

    #[test]
    fn redirect_before_program_name() {
        let cmd = one("< in.txt wc");
        assert_eq!(cmd.stages[0].program, "wc");
        assert_eq!(cmd.stages[0].stdin_from.as_deref(), Some("in.txt"));
    }
}
