//! Shell/terminal/appletviewer scenario tests — paper §6 end to end.

use std::time::Duration;

use jmp_core::MpRuntime;
use jmp_security::Policy;

use crate::{default_policy_text, install, publish_applet, spawn_login_session};

fn policy_with_users() -> Policy {
    let text = format!(
        "{}\n{}",
        default_policy_text(),
        r#"
        grant user "alice" {
            permission file "/home/alice" "read";
            permission file "/home/alice/-" "read,write,execute,delete";
        };
        grant user "bob" {
            permission file "/home/bob" "read";
            permission file "/home/bob/-" "read,write,execute,delete";
        };
        "#
    );
    Policy::parse(&text).expect("session policy parses")
}

fn session_runtime() -> MpRuntime {
    let rt = MpRuntime::builder()
        .policy(policy_with_users())
        .user("alice", "apw")
        .user("bob", "bpw")
        .build()
        .expect("runtime builds");
    install(&rt).expect("tools install");
    rt
}

/// Runs a scripted terminal session through `login` and returns the final
/// screen contents.
fn run_session_script(rt: &MpRuntime, lines: &[&str]) -> String {
    let (terminal, session) = spawn_login_session(rt).expect("session starts");
    for line in lines {
        terminal.type_line(line).expect("typing works");
    }
    terminal.type_eof();
    session.wait_for().expect("session ends");
    terminal.screen_text()
}

#[test]
fn login_shell_whoami_pwd() {
    let rt = session_runtime();
    let screen = run_session_script(&rt, &["alice", "apw", "whoami", "pwd", "quit"]);
    assert!(screen.contains("login: alice"));
    assert!(
        !screen.contains("apw"),
        "password must not echo: {screen:?}"
    );
    assert!(screen.contains("Welcome, alice."));
    assert!(screen.contains("alice@jmp:/home/alice$ "));
    assert!(screen.contains("\nalice\n"));
    assert!(screen.contains("\n/home/alice\n"));
    rt.shutdown();
}

#[test]
fn failed_login_reprompts() {
    let rt = session_runtime();
    let screen = run_session_script(&rt, &["alice", "WRONG", "alice", "apw", "quit"]);
    assert!(screen.contains("login incorrect"));
    assert!(screen.contains("Welcome, alice."));
    rt.shutdown();
}

#[test]
fn files_and_redirection() {
    let rt = session_runtime();
    let screen = run_session_script(
        &rt,
        &[
            "alice",
            "apw",
            "echo hello world > greeting.txt",
            "cat greeting.txt",
            "ls",
            "quit",
        ],
    );
    assert!(screen.contains("hello world"));
    assert!(screen.contains("greeting.txt"));
    // The file landed in alice's home, owned by alice.
    let alice = rt.users().lookup("alice").unwrap();
    assert_eq!(
        rt.vfs()
            .read("/home/alice/greeting.txt", alice.id())
            .unwrap(),
        b"hello world\n"
    );
    rt.shutdown();
}

#[test]
fn pipelines_connect_applications() {
    let rt = session_runtime();
    let screen = run_session_script(
        &rt,
        &[
            "alice",
            "apw",
            "echo one > f.txt",
            "echo two-match >> f.txt",
            "echo three-match >> f.txt",
            "cat f.txt | grep match | wc",
            "quit",
        ],
    );
    // grep keeps 2 lines; wc prints "2 2 <bytes>".
    assert!(
        screen.contains("\n2 2 "),
        "pipeline output missing: {screen:?}"
    );
    rt.shutdown();
}

#[test]
fn input_redirection_and_append() {
    let rt = session_runtime();
    let screen = run_session_script(
        &rt,
        &[
            "alice",
            "apw",
            "echo alpha > data.txt",
            "wc < data.txt",
            "quit",
        ],
    );
    assert!(screen.contains("\n1 1 6\n"), "{screen:?}");
    rt.shutdown();
}

#[test]
fn background_jobs_and_sequencing() {
    let rt = session_runtime();
    let screen = run_session_script(
        &rt,
        &[
            "alice",
            "apw",
            "sleep 300 &",
            "jobs",
            "echo done ; echo again",
            "quit",
        ],
    );
    assert!(screen.contains("[1] started"));
    assert!(screen.contains("sleep 300"));
    assert!(screen.contains("\ndone\n"));
    assert!(screen.contains("\nagain\n"));
    rt.shutdown();
}

#[test]
fn command_not_found() {
    let rt = session_runtime();
    let screen = run_session_script(&rt, &["alice", "apw", "frobnicate", "quit"]);
    assert!(screen.contains("frobnicate: command not found"));
    rt.shutdown();
}

#[test]
fn cd_and_relative_paths() {
    let rt = session_runtime();
    let screen = run_session_script(
        &rt,
        &[
            "alice",
            "apw",
            "mkdir projects",
            "cd projects",
            "pwd",
            "cd ..",
            "pwd",
            "cd /no/such/dir",
            "quit",
        ],
    );
    assert!(screen.contains("/home/alice/projects"));
    assert!(screen.contains("cd: "), "bad cd reports an error");
    rt.shutdown();
}

#[test]
fn user_isolation_at_the_shell() {
    // Alice cannot read bob's home; the error is FileNotFound (O/S hides
    // it — paper Feature 3), not a hang or a crash.
    let rt = session_runtime();
    let bob = rt.users().lookup("bob").unwrap();
    rt.vfs()
        .write("/home/bob/secret.txt", b"s3cr3t", bob.id())
        .unwrap();
    let screen = run_session_script(&rt, &["alice", "apw", "cat /home/bob/secret.txt", "quit"]);
    assert!(screen.contains("cat: "), "{screen:?}");
    assert!(!screen.contains("s3cr3t"));
    rt.shutdown();
}

#[test]
fn su_switches_user_for_child_shell() {
    let rt = session_runtime();
    let screen = run_session_script(
        &rt,
        &[
            "alice",
            "apw",
            "whoami",
            "su bob bpw",
            "whoami",
            "quit",   // ends bob's shell
            "whoami", // back in alice's shell? NOTE: su re-bound the su app only
            "quit",
        ],
    );
    assert!(screen.contains("now running as bob"));
    assert!(screen.contains("\nbob\n"));
    rt.shutdown();
}

#[test]
fn history_builtin_lists_terminal_history() {
    let rt = session_runtime();
    let screen = run_session_script(&rt, &["alice", "apw", "echo first", "history", "quit"]);
    assert!(screen.contains("echo first"));
    rt.shutdown();
}

#[test]
fn ps_and_kill() {
    let rt = session_runtime();
    let (terminal, session) = spawn_login_session(&rt).unwrap();
    terminal.type_line("alice").unwrap();
    terminal.type_line("apw").unwrap();
    terminal.type_line("sleep 60000 &").unwrap();
    terminal.type_line("ps").unwrap();
    // Give ps a moment, then find the sleeper's id on screen.
    let found = jmp_awt::Toolkit::wait_until(Duration::from_secs(5), || {
        terminal.screen_text().contains("sleep")
    });
    assert!(
        found,
        "ps must list the sleeper: {}",
        terminal.screen_text()
    );
    let sleeper = rt
        .applications()
        .into_iter()
        .find(|a| a.name() == "sleep")
        .expect("sleeper is running");
    terminal
        .type_line(&format!("kill {}", sleeper.id().0))
        .unwrap();
    let gone = jmp_awt::Toolkit::wait_until(Duration::from_secs(5), || {
        rt.applications().iter().all(|a| a.name() != "sleep")
    });
    assert!(gone, "kill must stop the sleeper");
    terminal.type_line("quit").unwrap();
    terminal.type_eof();
    session.wait_for().unwrap();
    rt.shutdown();
}

#[test]
fn concurrent_sessions_for_two_users() {
    // The paper's core scenario: Alice and Bob, simultaneously, one VM.
    let rt = session_runtime();
    let (term_a, sess_a) = spawn_login_session(&rt).unwrap();
    let (term_b, sess_b) = spawn_login_session(&rt).unwrap();
    term_a.type_line("alice").unwrap();
    term_a.type_line("apw").unwrap();
    term_b.type_line("bob").unwrap();
    term_b.type_line("bpw").unwrap();
    term_a.type_line("echo from-alice > a.txt").unwrap();
    term_b.type_line("echo from-bob > b.txt").unwrap();
    term_a.type_line("whoami").unwrap();
    term_b.type_line("whoami").unwrap();
    for t in [&term_a, &term_b] {
        t.type_line("quit").unwrap();
        t.type_eof();
    }
    sess_a.wait_for().unwrap();
    sess_b.wait_for().unwrap();

    let alice = rt.users().lookup("alice").unwrap();
    let bob = rt.users().lookup("bob").unwrap();
    assert_eq!(
        rt.vfs().read("/home/alice/a.txt", alice.id()).unwrap(),
        b"from-alice\n"
    );
    assert_eq!(
        rt.vfs().read("/home/bob/b.txt", bob.id()).unwrap(),
        b"from-bob\n"
    );
    assert!(term_a.screen_text().contains("\nalice\n"));
    assert!(term_b.screen_text().contains("\nbob\n"));
    assert!(!term_a.screen_text().contains("from-bob"));
    rt.shutdown();
}

#[test]
fn env_chmod_chown_hostname() {
    let rt = session_runtime();
    let screen = run_session_script(
        &rt,
        &[
            "alice",
            "apw",
            "hostname",
            "env",
            "touch visible.txt",
            "chmod 600 visible.txt",
            "ls -l visible.txt",
            "chown bob visible.txt",
            "chown nosuchuser visible.txt",
            "quit",
        ],
    );
    assert!(screen.contains("jmp-mp"), "hostname prints the VM name");
    assert!(
        screen.contains("os.name=jmpos"),
        "env lists inherited properties"
    );
    assert!(screen.contains("-rw----"), "chmod 600 reflected in ls -l");
    assert!(screen.contains("chown: unknown user"), "bad chown reports");
    // The successful chown actually transferred ownership.
    let bob = rt.users().lookup("bob").unwrap();
    let info = rt
        .vfs()
        .stat("/home/alice/visible.txt", jmp_security::UserId(0))
        .unwrap();
    assert_eq!(info.owner, bob.id());
    rt.shutdown();
}

#[test]
fn top_vmstat_audit_for_the_system_account() {
    // The default policy grants `system` readMetrics/readAuditLog, so a
    // shell running as the bootstrap account can use all three builtins.
    let rt = session_runtime();
    let (terminal, session) = crate::spawn_session(&rt, "shell", &[]).unwrap();
    terminal.type_line("top").unwrap();
    terminal.type_line("vmstat").unwrap();
    terminal.type_line("audit").unwrap();
    terminal.type_line("quit").unwrap();
    terminal.type_eof();
    session.wait_for().unwrap();
    let screen = terminal.screen_text();
    assert!(
        screen.contains("CHECKS"),
        "top prints its header: {screen:?}"
    );
    assert!(screen.contains("shell"), "top lists the shell itself");
    assert!(
        screen.contains("security.checks"),
        "vmstat prints the rollup counters: {screen:?}"
    );
    assert!(screen.contains("events.published"));
    assert!(
        screen.contains("access.cache.hits") && screen.contains("access.cache.misses"),
        "vmstat surfaces the decision-cache hit/miss counters: {screen:?}"
    );
    assert!(screen.contains("denial(s)"), "audit prints a summary line");
    rt.shutdown();
}

#[test]
fn vmstat_demands_and_policyinfer_for_the_system_account() {
    // An ordinary session generates demand traffic (granted file accesses
    // plus one denied probe), then a system shell reads the observatory:
    // vmstat's demands counters and section, and the policyinfer builtin.
    let rt = session_runtime();
    let screen = run_session_script(
        &rt,
        &[
            "alice",
            "apw",
            "touch /home/alice/notes.txt",
            "cat /home/alice/notes.txt",
            "cat /home/bob/private.txt",
            "quit",
        ],
    );
    assert!(screen.contains("Welcome, alice."));

    let (terminal, session) = crate::spawn_session(&rt, "shell", &[]).unwrap();
    terminal.type_line("vmstat").unwrap();
    terminal.type_line("policyinfer").unwrap();
    terminal.type_line("policyinfer diff").unwrap();
    terminal.type_line("quit").unwrap();
    terminal.type_eof();
    session.wait_for().unwrap();
    let screen = terminal.screen_text();
    assert!(
        screen.contains("demands.recorded") && screen.contains("demands.unique"),
        "vmstat surfaces the ledger counters: {screen:?}"
    );
    assert!(
        screen.contains("demands:"),
        "vmstat prints the hottest demand rows: {screen:?}"
    );
    assert!(
        screen.contains("demand row(s)"),
        "policyinfer prints the ledger report: {screen:?}"
    );
    assert!(
        screen.contains("unexercised"),
        "policyinfer diff prints the over-grant summary: {screen:?}"
    );
    // The counters the screen showed are real: the rollup agrees the ledger
    // recorded the session's demands.
    let rollup = rt.vm().obs().rollup();
    let recorded = rollup.counters["demands.recorded"];
    let unique = rollup.counters["demands.unique"];
    assert!(recorded > 0, "session traffic was recorded");
    assert!(
        (1..=recorded).contains(&unique),
        "distinct rows bounded by observations: unique={unique} recorded={recorded}"
    );
    assert_eq!(rollup.counters["demands.dropped"], 0);
    // The denied probe is in the ledger for inference to see.
    let denied: u64 = rt
        .vm()
        .obs()
        .demands()
        .rows()
        .iter()
        .map(|row| row.denied)
        .sum();
    assert!(denied > 0, "alice's denied probe landed in the ledger");
    rt.shutdown();
}

#[test]
fn top_and_audit_denied_for_ordinary_users_and_audited() {
    // Alice holds neither readMetrics nor readAuditLog: both builtins
    // refuse (without killing the session), and the refusals themselves
    // land in the audit trail.
    let rt = session_runtime();
    let screen = run_session_script(&rt, &["alice", "apw", "top", "audit", "whoami", "quit"]);
    assert!(
        screen.contains("top: "),
        "top reports the denial: {screen:?}"
    );
    assert!(screen.contains("audit: "), "audit reports the denial");
    assert!(
        screen.contains("\nalice\n"),
        "the session survives both denials"
    );
    let denials = rt.vm().obs().audit_query(Some("alice"), None);
    assert!(
        denials.iter().any(|r| r.permission.contains("readMetrics")),
        "alice's denied `top` is audited: {denials:?}"
    );
    assert!(
        denials
            .iter()
            .any(|r| r.permission.contains("readAuditLog")),
        "alice's denied `audit` is audited: {denials:?}"
    );
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// Appletviewer (§6.3)
// ---------------------------------------------------------------------------

const HELLO_APPLET: &str = r#"
    class HelloApplet
    method main/0 locals=0
        push_str "hello from mobile code"
        native println/1
        pop
        return
"#;

const EVIL_APPLET: &str = r#"
    class EvilApplet
    method main/0 locals=0
        push_str "/home/alice/secret.txt"
        native read_file/1
        native println/1
        pop
        return
"#;

const PHONE_HOME_APPLET: &str = r#"
    class PhoneHome
    method main/0 locals=0
        push_str "applets.example.com"
        native connect/1
        pop
        push_str "other.example.com"
        native connect/1
        pop
        return
"#;

#[test]
fn applet_runs_in_sandbox() {
    let rt = session_runtime();
    publish_applet(&rt, "applets.example.com", "/hello.jbc", HELLO_APPLET).unwrap();
    let screen = run_session_script(
        &rt,
        &[
            "alice",
            "apw",
            "appletviewer http://applets.example.com/hello.jbc",
            "quit",
        ],
    );
    assert!(screen.contains("hello from mobile code"), "{screen:?}");
    rt.shutdown();
}

#[test]
fn applet_cannot_read_user_files_even_when_run_by_owner() {
    // Paper §5.3: "would not allow applets to access files belonging to the
    // user running the web browser."
    let rt = session_runtime();
    let alice = rt.users().lookup("alice").unwrap();
    rt.vfs()
        .write("/home/alice/secret.txt", b"private", alice.id())
        .unwrap();
    publish_applet(&rt, "applets.example.com", "/evil.jbc", EVIL_APPLET).unwrap();
    let screen = run_session_script(
        &rt,
        &[
            "alice",
            "apw",
            "appletviewer http://applets.example.com/evil.jbc",
            "quit",
        ],
    );
    assert!(
        screen.contains("applet failed") && screen.contains("security"),
        "the applet must die with a SecurityException: {screen:?}"
    );
    assert!(!screen.contains("private"));
    rt.shutdown();
}

#[test]
fn applet_may_connect_back_to_origin_only() {
    let rt = session_runtime();
    let network = crate::SimNetwork::of(&rt).unwrap();
    network.publish("other.example.com", "/x", b"exists".to_vec());
    publish_applet(&rt, "applets.example.com", "/phone.jbc", PHONE_HOME_APPLET).unwrap();
    let screen = run_session_script(
        &rt,
        &[
            "alice",
            "apw",
            "appletviewer http://applets.example.com/phone.jbc",
            "quit",
        ],
    );
    // First connect (origin) succeeds; second (foreign host) raises a
    // SecurityException that kills the applet.
    assert!(
        screen.contains("applet failed") && screen.contains("security"),
        "{screen:?}"
    );
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// The GUI editor (Alice/Bob example)
// ---------------------------------------------------------------------------

#[test]
fn editor_saves_as_the_right_user_with_per_app_dispatch() {
    use jmp_awt::DispatchMode;
    let rt = MpRuntime::builder()
        .policy(policy_with_users())
        .user("alice", "apw")
        .user("bob", "bpw")
        .gui(DispatchMode::PerApplication)
        .build()
        .unwrap();
    install(&rt).unwrap();
    let display = rt.display().unwrap().clone();
    let toolkit = rt.toolkit().unwrap().clone();

    // Alice and Bob each run the same editor on their own file.
    let alice_app = rt
        .launch_as("alice", "edit", &["/home/alice/doc.txt"])
        .unwrap();
    let bob_app = rt.launch_as("bob", "edit", &["/home/bob/doc.txt"]).unwrap();
    assert!(jmp_awt::Toolkit::wait_until(Duration::from_secs(5), || {
        toolkit.window_count() == 2
    }));

    let win_of = |app: &jmp_core::Application| {
        let ids = toolkit.windows_of_app(app.id().0);
        assert_eq!(ids.len(), 1);
        toolkit.window(ids[0]).unwrap()
    };
    let alice_win = win_of(&alice_app);
    let bob_win = win_of(&bob_app);

    // Type different text into each editor and hit Save File. Components
    // were added in order: text field (1), Save File (2), Quit (3).
    let field = jmp_awt::ComponentId(1);
    display
        .inject_text(alice_win.id(), field, "alice writes")
        .unwrap();
    display
        .inject_text(bob_win.id(), field, "bob writes")
        .unwrap();
    // Save = menu item 2.
    display
        .inject_action(alice_win.id(), jmp_awt::ComponentId(2))
        .unwrap();
    display
        .inject_action(bob_win.id(), jmp_awt::ComponentId(2))
        .unwrap();

    let alice = rt.users().lookup("alice").unwrap();
    let bob = rt.users().lookup("bob").unwrap();
    assert!(jmp_awt::Toolkit::wait_until(Duration::from_secs(5), || {
        rt.vfs().exists("/home/alice/doc.txt", alice.id())
            && rt.vfs().exists("/home/bob/doc.txt", bob.id())
    }));
    assert_eq!(
        rt.vfs().read("/home/alice/doc.txt", alice.id()).unwrap(),
        b"alice writes"
    );
    assert_eq!(
        rt.vfs().read("/home/bob/doc.txt", bob.id()).unwrap(),
        b"bob writes"
    );
    // Each file is owned by its author — the saves ran as the right user.
    assert_eq!(
        rt.vfs()
            .stat("/home/alice/doc.txt", alice.id())
            .unwrap()
            .owner,
        alice.id()
    );
    assert_eq!(
        rt.vfs().stat("/home/bob/doc.txt", bob.id()).unwrap().owner,
        bob.id()
    );

    // Quit both editors via the menu (item 3).
    display
        .inject_action(alice_win.id(), jmp_awt::ComponentId(3))
        .unwrap();
    display
        .inject_action(bob_win.id(), jmp_awt::ComponentId(3))
        .unwrap();
    alice_app.wait_for().unwrap();
    bob_app.wait_for().unwrap();
    rt.shutdown();
}

// ---------------------------------------------------------------------------
// migrate: checkpoint/restore from the shell
// ---------------------------------------------------------------------------

#[test]
fn migrate_checkpoints_an_image_app_to_a_file_and_restores_it() {
    // Alice gets the operator privilege for this session (the default
    // policy reserves `checkpointApplication` for the system account).
    let text = format!(
        "{}\n{}",
        default_policy_text(),
        r#"
        grant user "alice" {
            permission file "/home/alice" "read";
            permission file "/home/alice/-" "read,write,execute,delete";
            permission runtime "checkpointApplication";
            permission runtime "readMetrics";
        };
        "#
    );
    let rt = MpRuntime::builder()
        .policy(Policy::parse(&text).expect("policy parses"))
        .user("alice", "apw")
        .build()
        .expect("runtime builds");
    install(&rt).expect("tools install");

    // A long-running interpreted image: the checkpoint lands mid-loop.
    let image = jmp_vm::interp::assemble(
        "class Spinner\n\
         method main/0 locals=2\n\
         push_int 0\n  store 0\n  push_int 0\n  store 1\n\
         loop:\n\
         load 0\n  load 1\n  add\n  store 0\n\
         load 1\n  push_int 1\n  add\n  store 1\n\
         load 1\n  push_int 50000000\n  lt\n  jump_if_true loop\n\
         load 0\n  return_value\n",
    )
    .expect("assembles");
    let app = rt.launch_image("alice", image, &[]).expect("launches");
    let id = app.id();

    let screen = run_session_script(
        &rt,
        &[
            "alice",
            "apw",
            &format!("migrate {} snap.img", id.0),
            "migrate restore snap.img",
            "ps -l",
            "quit",
        ],
    );
    assert!(
        screen.contains(&format!("checkpointed app {} to snap.img", id.0)),
        "checkpoint half works: {screen:?}"
    );
    assert!(
        screen.contains(&format!("restored app {} (Spinner) as alice", id.0)),
        "restore half works (id preserved): {screen:?}"
    );
    assert!(
        screen.contains("MEMORY"),
        "ps -l shows the memory column: {screen:?}"
    );
    // The snapshot file landed in alice's home, owned by alice.
    let alice = rt.users().lookup("alice").unwrap();
    assert!(rt.vfs().exists("/home/alice/snap.img", alice.id()));
    // The restored application is running again under its old identity.
    let restored = rt.application(id).expect("restored app is registered");
    assert_eq!(restored.user().name(), "alice");
    restored.stop(0).unwrap();
    rt.shutdown();
}

#[test]
fn migrate_is_denied_without_the_checkpoint_permission() {
    let rt = session_runtime();
    let screen = run_session_script(&rt, &["alice", "apw", "migrate 1 snap.img", "quit"]);
    assert!(
        screen.contains("migrate: security exception"),
        "the denial is printed, not fatal: {screen:?}"
    );
    rt.shutdown();
}
