//! # jmp-shell
//!
//! The demonstration tools of Balfanz & Gong (ICDCS 1998) §6 — "as proof of
//! usability of our multi-processing JVM, we built a few demonstration tools
//! that included a shell, a terminal, and an application-level
//! Appletviewer" — plus the utility applications (`ls`, `cat`, ...) and the
//! GUI text editor from the paper's Alice/Bob example.
//!
//! [`install`] registers every program as class material with a
//! `file:/apps/<name>` code source, so the example policies can grant (or
//! withhold) privileges per program. [`default_policy_text`] is a policy
//! that makes an interactive multi-user session work: local applications
//! exercise their running user's permissions (paper §5.3 rule 1), `login`
//! and `su` hold the `setUser` privilege (§5.2), and the appletviewer may
//! create class loaders and fetch from the network (§6.3).
//!
//! # Example: a terminal session
//!
//! ```
//! use jmp_core::MpRuntime;
//! use jmp_security::Policy;
//! use std::time::Duration;
//!
//! let rt = MpRuntime::builder()
//!     .policy(Policy::parse(jmp_shell::default_policy_text())?)
//!     .user("alice", "sesame")
//!     .build()?;
//! jmp_shell::install(&rt)?;
//!
//! let (terminal, session) = jmp_shell::spawn_login_session(&rt)?;
//! terminal.type_line("alice")?;
//! terminal.type_line("sesame")?;
//! terminal.type_line("whoami")?;
//! terminal.type_line("quit")?;
//! terminal.type_eof();
//! session.wait_for()?;
//! assert!(terminal.screen_text().contains("alice"));
//! # rt.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appletviewer;
pub mod editor;
pub mod network;
pub mod parser;
pub mod shell;
pub mod terminal;
pub mod utils;

use jmp_core::{Application, Error, MpRuntime};
use jmp_security::CodeSource;
use jmp_vm::ClassDef;

pub use network::SimNetwork;
pub use shell::Shell;
pub use terminal::Terminal;

/// Registers all §6 tools and utilities as class material, and installs the
/// simulated network. Idempotent registration is not attempted: call once
/// per runtime.
///
/// # Errors
///
/// [`Error::Vm`] on duplicate registration.
pub fn install(rt: &MpRuntime) -> Result<(), Error> {
    SimNetwork::install(rt)?;
    let register = |name: &str, main: fn(Vec<String>) -> jmp_vm::Result<()>| -> Result<(), Error> {
        rt.vm()
            .material()
            .register(
                ClassDef::builder(name).main(main).build(),
                CodeSource::local(format!("file:/apps/{name}")),
            )
            .map_err(Error::from)
    };
    register("shell", shell::shell_main)?;
    register("login", utils::login_main)?;
    register("ls", utils::ls_main)?;
    register("cat", utils::cat_main)?;
    register("echo", utils::echo_main)?;
    register("head", utils::head_main)?;
    register("wc", utils::wc_main)?;
    register("grep", utils::grep_main)?;
    register("ps", utils::ps_main)?;
    register("kill", utils::kill_main)?;
    register("sleep", utils::sleep_main)?;
    register("pwd", utils::pwd_main)?;
    register("whoami", utils::whoami_main)?;
    register("touch", utils::touch_main)?;
    register("mkdir", utils::mkdir_main)?;
    register("rm", utils::rm_main)?;
    register("cp", utils::cp_main)?;
    register("mv", utils::mv_main)?;
    register("su", utils::su_main)?;
    register("passwd", utils::passwd_main)?;
    register("env", utils::env_main)?;
    register("chmod", utils::chmod_main)?;
    register("chown", utils::chown_main)?;
    register("hostname", utils::hostname_main)?;
    register("edit", editor::edit_main)?;
    register("appletviewer", appletviewer::appletviewer_main)?;
    Ok(())
}

/// A policy making an interactive multi-user session work. Combine with
/// `grant user "<name>" { ... }` blocks for each account (the builder's
/// users are *accounts*; what they may touch is policy).
pub fn default_policy_text() -> &'static str {
    r#"
    // Paper section 5.3, rule 1: all local applications can exercise their
    // running users' permissions — plus the conveniences interactive
    // programs need.
    grant codeBase "file:/apps/-" {
        permission user "exerciseUserPermissions";
        permission runtime "execApplication";
        permission runtime "setIO";
        permission property "*" "read";
        permission awt "showWindow";
        permission file "/tmp" "read";
        permission file "/tmp/-" "read,write,delete";
        permission file "/etc" "read";
        permission file "/etc/-" "read";
        permission file "/home" "read";
    };

    // Paper section 5.2: the login program (and su) may set its own user.
    grant codeBase "file:/apps/login" {
        permission runtime "setUser";
    };
    grant codeBase "file:/apps/su" {
        permission runtime "setUser";
    };

    // kill may stop foreign applications.
    grant codeBase "file:/apps/kill" {
        permission runtime "stopApplication";
    };

    // Observability read-out: the bootstrap `system` account may inspect
    // the VM metrics, the security audit trail, the flight recorder, and
    // the VM profiler (exercised through the section 5.3 mechanism by the
    // shell's `top`/`vmstat`/`audit`/`trace`/`profile` builtins). Ordinary
    // accounts get none of these: what Alice's editor is doing is none of
    // Bob's business.
    grant user "system" {
        permission runtime "readMetrics";
        permission runtime "readAuditLog";
        permission runtime "traceVm";
        permission runtime "readProfile";
        permission runtime "readDemands";
        permission runtime "inferPolicy";
        permission resource "setLimits";
        permission runtime "checkpointApplication";
    };

    // Paper section 6.3: the appletviewer is an ordinary application with
    // two specific privileges: creating class loaders and talking to the
    // network.
    grant codeBase "file:/apps/appletviewer" {
        permission runtime "createClassLoader";
        permission socket "*" "connect";
    };
    "#
}

/// Creates a [`Terminal`] and launches a `login` session on it (as the
/// bootstrap `system` user — `login` re-binds the user after
/// authentication, paper §5.2). Returns the terminal (the "user side") and
/// the login application.
///
/// # Errors
///
/// Launch failures ([`Error::Vm`]).
pub fn spawn_login_session(rt: &MpRuntime) -> Result<(Terminal, Application), Error> {
    spawn_session(rt, "login", &[])
}

/// Creates a [`Terminal`] and launches `class_name` on it as the `system`
/// user.
///
/// # Errors
///
/// Launch failures ([`Error::Vm`]).
pub fn spawn_session(
    rt: &MpRuntime,
    class_name: &str,
    args: &[&str],
) -> Result<(Terminal, Application), Error> {
    let terminal = Terminal::new();
    let token = jmp_vm::io::IoToken::SYSTEM;
    let app = rt.launch_with(
        "system",
        class_name,
        args,
        Some(terminal.in_stream(token)),
        Some(terminal.out_stream(token)),
        Some(terminal.out_stream(token)),
    )?;
    Ok((terminal, app))
}

/// Publishes an applet written in `jbc` assembly at
/// `http://<host>/<path>` on the runtime's simulated network.
///
/// # Errors
///
/// Assembly errors ([`Error::Vm`] wrapping verification);
/// [`Error::Io`] if no network is installed.
pub fn publish_applet(rt: &MpRuntime, host: &str, path: &str, assembly: &str) -> Result<(), Error> {
    let network = SimNetwork::of(rt).ok_or(Error::Io {
        message: "no network installed".into(),
    })?;
    let image = jmp_vm::interp::assemble(assembly)?;
    let wire = image.to_wire().map_err(|e| Error::Io {
        message: format!("serializing applet: {e}"),
    })?;
    network.publish(host, path, wire);
    Ok(())
}

// Re-exported for examples that want to hand-construct sessions.
pub use jmp_vm::io::IoToken;

#[cfg(test)]
mod tests;
