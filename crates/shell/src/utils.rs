//! The utility applications (paper §6.1: "we equipped the shell with a few
//! built-in commands such as `cd` and `quit`, and implemented utility
//! applications including `ls` and `cat`").
//!
//! Each utility is ordinary application code: it talks to the world through
//! its application's standard streams ([`jsystem`]) and the checked file API
//! ([`files`]), so permissions, users and redirection all apply uniformly.
//! `cat` and friends read `System.in` when given no file arguments, so they
//! "also work if they are not run from a terminal (such as when they are
//! used in a pipe)" (§6.2).

use jmp_core::{files, jsystem, login, AppId, AppStatus, Application, MpRuntime};
use jmp_vfs::FileKind;
use jmp_vm::{Result, VmError};

fn io_err(e: jmp_core::Error) -> VmError {
    e.into()
}

/// `ls [-l] [path ...]` — list directories (or stat files).
pub fn ls_main(args: Vec<String>) -> Result<()> {
    let long = args.iter().any(|a| a == "-l");
    let paths: Vec<String> = args.into_iter().filter(|a| a != "-l").collect();
    let paths = if paths.is_empty() {
        vec![".".to_string()]
    } else {
        paths
    };
    for path in paths {
        match files::stat(&path) {
            Err(e) => jsystem::eprintln(&format!("ls: {e}")).map_err(io_err)?,
            Ok(info) if info.kind == FileKind::File => {
                print_entry(&path, &info, long)?;
            }
            Ok(_) => {
                let entries = files::list_dir(&path).map_err(io_err)?;
                for entry in entries {
                    print_entry(&entry.name, &entry.info, long)?;
                }
            }
        }
    }
    Ok(())
}

fn print_entry(name: &str, info: &jmp_vfs::FileInfo, long: bool) -> Result<()> {
    if long {
        let kind = match info.kind {
            FileKind::Directory => 'd',
            FileKind::File => '-',
        };
        jsystem::println(&format!(
            "{kind}{} {:>4} {:>8} {name}",
            info.mode, info.owner.0, info.size
        ))
        .map_err(io_err)
    } else {
        jsystem::println(name).map_err(io_err)
    }
}

/// `cat [file ...]` — concatenate files (or stdin) to stdout.
pub fn cat_main(args: Vec<String>) -> Result<()> {
    let out = jsystem::stdout().map_err(io_err)?;
    if args.is_empty() {
        let input = jsystem::stdin().map_err(io_err)?;
        let mut buf = [0u8; 4096];
        loop {
            let n = input.read(&mut buf)?;
            if n == 0 {
                return Ok(());
            }
            out.write(&buf[..n])?;
        }
    }
    for path in args {
        match files::read(&path) {
            Ok(data) => out.write(&data)?,
            Err(e) => jsystem::eprintln(&format!("cat: {e}")).map_err(io_err)?,
        }
    }
    Ok(())
}

/// `echo [args ...]` — print arguments.
pub fn echo_main(args: Vec<String>) -> Result<()> {
    jsystem::println(&args.join(" ")).map_err(io_err)
}

/// `head [-n N] [file]` — first N (default 10) lines.
pub fn head_main(args: Vec<String>) -> Result<()> {
    let mut n = 10usize;
    let mut file = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "-n" {
            n = iter
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| VmError::Io {
                    message: "head: -n needs a number".into(),
                })?;
        } else {
            file = Some(arg);
        }
    }
    let text = match file {
        Some(path) => files::read_string(&path).map_err(io_err)?,
        None => {
            let input = jsystem::stdin().map_err(io_err)?;
            String::from_utf8_lossy(&input.read_to_end()?).into_owned()
        }
    };
    for line in text.lines().take(n) {
        jsystem::println(line).map_err(io_err)?;
    }
    Ok(())
}

/// `wc [file]` — count lines, words, bytes.
pub fn wc_main(args: Vec<String>) -> Result<()> {
    let data = match args.first() {
        Some(path) => files::read(path).map_err(io_err)?,
        None => jsystem::stdin().map_err(io_err)?.read_to_end()?,
    };
    let text = String::from_utf8_lossy(&data);
    let lines = text.lines().count();
    let words = text.split_whitespace().count();
    jsystem::println(&format!("{lines} {words} {}", data.len())).map_err(io_err)
}

/// `grep pattern [file]` — print lines containing `pattern` (substring).
pub fn grep_main(args: Vec<String>) -> Result<()> {
    let pattern = args.first().cloned().ok_or_else(|| VmError::Io {
        message: "grep: missing pattern".into(),
    })?;
    let text = match args.get(1) {
        Some(path) => files::read_string(path).map_err(io_err)?,
        None => {
            let input = jsystem::stdin().map_err(io_err)?;
            String::from_utf8_lossy(&input.read_to_end()?).into_owned()
        }
    };
    for line in text.lines() {
        if line.contains(&pattern) {
            jsystem::println(line).map_err(io_err)?;
        }
    }
    Ok(())
}

/// `ps` — list running applications (the multi-processing `ps`).
pub fn ps_main(_args: Vec<String>) -> Result<()> {
    let rt = MpRuntime::current().ok_or_else(|| VmError::illegal_state("no runtime"))?;
    jsystem::println("  ID USER     THREADS STATUS   NAME").map_err(io_err)?;
    for app in rt.applications() {
        let status = match app.status() {
            AppStatus::Running => "running",
            AppStatus::Exiting => "exiting",
            AppStatus::Finished(_) => "done",
        };
        jsystem::println(&format!(
            "{:>4} {:<8} {:>7} {:<8} {}",
            app.id().0,
            app.user().name(),
            app.group().thread_count(),
            status,
            app.name(),
        ))
        .map_err(io_err)?;
    }
    Ok(())
}

/// `kill <app-id>` — stop an application. Access is governed by the system
/// security manager's rules; the policy may grant
/// `RuntimePermission("stopApplication")` to this code source.
pub fn kill_main(args: Vec<String>) -> Result<()> {
    let id: u64 = args
        .first()
        .and_then(|a| a.parse().ok())
        .ok_or_else(|| VmError::Io {
            message: "kill: usage: kill <app-id>".into(),
        })?;
    let rt = MpRuntime::current().ok_or_else(|| VmError::illegal_state("no runtime"))?;
    match rt.application(AppId(id)) {
        Some(app) => app.stop(143).map_err(io_err),
        None => jsystem::eprintln(&format!("kill: no such application: {id}")).map_err(io_err),
    }
}

/// `sleep <millis>` — sleep (milliseconds, to keep tests quick).
pub fn sleep_main(args: Vec<String>) -> Result<()> {
    let ms: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(0);
    jmp_vm::thread::sleep(std::time::Duration::from_millis(ms))
}

/// `pwd` — print the working directory.
pub fn pwd_main(_args: Vec<String>) -> Result<()> {
    let app = Application::current().ok_or_else(|| VmError::illegal_state("no app"))?;
    jsystem::println(&app.cwd()).map_err(io_err)
}

/// `whoami` — print the running user.
pub fn whoami_main(_args: Vec<String>) -> Result<()> {
    let app = Application::current().ok_or_else(|| VmError::illegal_state("no app"))?;
    jsystem::println(app.user().name()).map_err(io_err)
}

/// `touch <file ...>`.
pub fn touch_main(args: Vec<String>) -> Result<()> {
    for path in args {
        if let Err(e) = files::write(&path, b"") {
            jsystem::eprintln(&format!("touch: {e}")).map_err(io_err)?;
        }
    }
    Ok(())
}

/// `mkdir <dir ...>`.
pub fn mkdir_main(args: Vec<String>) -> Result<()> {
    for path in args {
        if let Err(e) = files::mkdir(&path) {
            jsystem::eprintln(&format!("mkdir: {e}")).map_err(io_err)?;
        }
    }
    Ok(())
}

/// `rm <file ...>` — delete files (the paper's §3.3 `checkDelete` path).
pub fn rm_main(args: Vec<String>) -> Result<()> {
    for path in args {
        if let Err(e) = files::delete(&path) {
            jsystem::eprintln(&format!("rm: {e}")).map_err(io_err)?;
        }
    }
    Ok(())
}

/// `cp <src> <dst>`.
pub fn cp_main(args: Vec<String>) -> Result<()> {
    let (src, dst) = match (args.first(), args.get(1)) {
        (Some(s), Some(d)) => (s.clone(), d.clone()),
        _ => {
            return jsystem::eprintln("cp: usage: cp <src> <dst>").map_err(io_err);
        }
    };
    match files::read(&src).and_then(|data| files::write(&dst, &data)) {
        Ok(()) => Ok(()),
        Err(e) => jsystem::eprintln(&format!("cp: {e}")).map_err(io_err),
    }
}

/// `mv <src> <dst>`.
pub fn mv_main(args: Vec<String>) -> Result<()> {
    let (src, dst) = match (args.first(), args.get(1)) {
        (Some(s), Some(d)) => (s.clone(), d.clone()),
        _ => {
            return jsystem::eprintln("mv: usage: mv <src> <dst>").map_err(io_err);
        }
    };
    match files::rename(&src, &dst) {
        Ok(()) => Ok(()),
        Err(e) => jsystem::eprintln(&format!("mv: {e}")).map_err(io_err),
    }
}

/// `su <user> [password]` — switch the session's user by launching a child
/// shell as `user`. Requires the `setUser` grant on *this* code source
/// (paper §5.2).
pub fn su_main(args: Vec<String>) -> Result<()> {
    let name = args.first().cloned().ok_or_else(|| VmError::Io {
        message: "su: usage: su <user> [password]".into(),
    })?;
    let password = match args.get(1) {
        Some(p) => p.clone(),
        None => {
            let stdin = jsystem::stdin().map_err(io_err)?;
            match crate::terminal::Terminal::from_stdin(&stdin) {
                Some(term) => term.read_secret("Password: ")?.unwrap_or_default(),
                None => stdin.read_line()?.unwrap_or_default(),
            }
        }
    };
    match login::login(&name, &password) {
        Ok(user) => {
            // Like Unix su: run a child shell as the new user (the child
            // inherits this application's re-bound user) and wait for it.
            jsystem::println(&format!("now running as {}", user.name())).map_err(io_err)?;
            run_session()
        }
        Err(e) => jsystem::eprintln(&format!("su: {e}")).map_err(io_err),
    }
}

/// `passwd <user> <old> <new>`.
pub fn passwd_main(args: Vec<String>) -> Result<()> {
    let (user, old, new) = match (args.first(), args.get(1), args.get(2)) {
        (Some(u), Some(o), Some(n)) => (u.clone(), o.clone(), n.clone()),
        _ => {
            return jsystem::eprintln("passwd: usage: passwd <user> <old> <new>").map_err(io_err);
        }
    };
    match login::change_password(&user, &old, &new) {
        Ok(()) => jsystem::println("password changed").map_err(io_err),
        Err(e) => jsystem::eprintln(&format!("passwd: {e}")).map_err(io_err),
    }
}

/// `env` — print the application's per-app properties (its environment,
/// inherited from the parent at exec — paper §5.1).
pub fn env_main(_args: Vec<String>) -> Result<()> {
    let app = Application::current().ok_or_else(|| VmError::illegal_state("no app"))?;
    for (key, value) in app.properties().snapshot() {
        jsystem::println(&format!("{key}={value}")).map_err(io_err)?;
    }
    Ok(())
}

/// `chmod <octal> <path ...>` — change mode bits through the O/S layer (the
/// acting user must own the file).
pub fn chmod_main(args: Vec<String>) -> Result<()> {
    let Some(mode_text) = args.first() else {
        return jsystem::eprintln("chmod: usage: chmod <octal> <path ...>").map_err(io_err);
    };
    let Ok(octal) = u16::from_str_radix(mode_text, 8) else {
        return jsystem::eprintln("chmod: bad mode (use octal like 600)").map_err(io_err);
    };
    let rt = MpRuntime::current().ok_or_else(|| VmError::illegal_state("no runtime"))?;
    let app = Application::current().ok_or_else(|| VmError::illegal_state("no app"))?;
    for path in &args[1..] {
        let absolute = jmp_vfs::join(&app.cwd(), path);
        if let Err(e) = rt
            .vfs()
            .chmod(&absolute, jmp_vfs::Mode::from_octal(octal), app.user().id())
        {
            jsystem::eprintln(&format!("chmod: {e}")).map_err(io_err)?;
        }
    }
    Ok(())
}

/// `chown <user> <path ...>` — give a file away (owner or superuser only).
pub fn chown_main(args: Vec<String>) -> Result<()> {
    let Some(target_user) = args.first() else {
        return jsystem::eprintln("chown: usage: chown <user> <path ...>").map_err(io_err);
    };
    let rt = MpRuntime::current().ok_or_else(|| VmError::illegal_state("no runtime"))?;
    let app = Application::current().ok_or_else(|| VmError::illegal_state("no app"))?;
    let new_owner = match rt.users().lookup(target_user) {
        Ok(user) => user.id(),
        Err(e) => return jsystem::eprintln(&format!("chown: {e}")).map_err(io_err),
    };
    for path in &args[1..] {
        let absolute = jmp_vfs::join(&app.cwd(), path);
        if let Err(e) = rt.vfs().chown(&absolute, new_owner, app.user().id()) {
            jsystem::eprintln(&format!("chown: {e}")).map_err(io_err)?;
        }
    }
    Ok(())
}

/// `hostname` — print the VM's name (the "machine" every application
/// shares).
pub fn hostname_main(_args: Vec<String>) -> Result<()> {
    let rt = MpRuntime::current().ok_or_else(|| VmError::illegal_state("no runtime"))?;
    jsystem::println(rt.vm().name()).map_err(io_err)
}

/// `login` — the paper's §5.2 login program: authenticates on the terminal
/// (echo off for the password), re-binds the application's user, then runs a
/// shell and waits for it. Loops until a login succeeds or input ends.
/// Non-interactively (no terminal), `login <user> <password>` logs in once
/// and runs the shell.
pub fn login_main(args: Vec<String>) -> Result<()> {
    let stdin = jsystem::stdin().map_err(io_err)?;
    let terminal = crate::terminal::Terminal::from_stdin(&stdin);
    if let (Some(user), Some(password)) = (args.first(), args.get(1)) {
        match login::login(user, password) {
            Ok(_) => return run_session(),
            Err(e) => {
                return jsystem::eprintln(&format!("login: {e}")).map_err(io_err);
            }
        }
    }
    let Some(terminal) = terminal else {
        return jsystem::eprintln("login: no terminal and no credentials").map_err(io_err);
    };
    loop {
        let Some(user) = terminal.read_string("login: ")? else {
            return Ok(());
        };
        if user.is_empty() {
            continue;
        }
        let Some(password) = terminal.read_secret("Password: ")? else {
            return Ok(());
        };
        match login::login(&user, &password) {
            Ok(account) => {
                terminal.write_screen(format!("Welcome, {}.\n", account.name()).as_bytes())?;
                run_session()?;
                // Session ended: back to the login prompt (paper §2's
                // "switch to a different user" without rebooting).
                terminal.write_screen(b"logged out\n")?;
            }
            Err(e) => {
                terminal.write_screen(format!("{e}\n").as_bytes())?;
            }
        }
    }
}

fn run_session() -> Result<()> {
    let shell = Application::exec("shell", &[]).map_err(io_err)?;
    shell.wait_for().map_err(io_err)?;
    Ok(())
}
