//! The Appletviewer as an *application* (paper §6.3).
//!
//! The paper ported the JDK Appletviewer off the system class path so "the
//! classes are no longer automatically privileged", replaced `System.exit`
//! with `Application.exit`, and dropped its special security manager: "the
//! AppletClassLoader now implements the necessary methods to delegate
//! permissions to the applets it loads, thus implementing the original Java
//! sandbox security model. For example, an applet will get the permission
//! from the Appletviewer to connect back to its own host."
//!
//! Here: `appletviewer <url>` fetches a serialized [`ClassImage`] from the
//! simulated network (using the viewer's own `SocketPermission` grant),
//! defines it through an applet class loader whose domain resolver adds the
//! sandbox delegations (connect-back to the origin host, and — since
//! applets are GUI programs — `AWTPermission("showWindow")`) on top of
//! whatever the policy grants that code source, verifies it, and interprets
//! `main` — every native call the applet makes performs the ordinary
//! security checks with the applet's protection domain on the stack.
//!
//! Applets may build GUIs: window/component natives create widgets owned by
//! the viewer's application, and `on_action` registers a callback that
//! re-enters the interpreter **inside the applet class's frame**, so even
//! code running on the event-dispatcher thread keeps the applet's (lack of)
//! authority.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, Weak};

use jmp_awt::{ComponentId, Window, WindowId};
use jmp_core::{files, jsystem, Application, MpRuntime};
use jmp_security::{CodeSource, Permission, PermissionCollection, SocketActions};
use jmp_vm::interp::{ClassImage, Interpreter, NativeHost, Value};
use jmp_vm::{Class, ClassDef, Result, VmError};
use parking_lot::Mutex;

use crate::network::SimNetwork;

/// The native services exposed to interpreted applets. Every operation goes
/// through the ordinary checked APIs, with the applet's frame on the stack.
pub struct AppletHost {
    rt: MpRuntime,
    network: Arc<SimNetwork>,
    /// Ids of the windows the applet opened. Stored as ids (not handles) and
    /// resolved through the toolkit on use, so listeners → interpreter →
    /// host never forms a strong cycle back to the window objects.
    windows: Mutex<HashMap<u64, WindowId>>,
    /// Back-references set after construction (host ⟷ interpreter are
    /// mutually referential; listeners re-enter the interpreter).
    interpreter: OnceLock<Weak<Interpreter>>,
    class: OnceLock<Class>,
}

impl AppletHost {
    fn window(&self, id: &Value) -> Result<Window> {
        let Value::Int(id) = id else {
            return Err(VmError::trap("window handle must be an int"));
        };
        let window_id = self
            .windows
            .lock()
            .get(&(*id as u64))
            .copied()
            .ok_or_else(|| VmError::trap(format!("no such window handle {id}")))?;
        jmp_core::gui::toolkit()
            .map_err(VmError::from)?
            .window(window_id)
            .ok_or_else(|| VmError::trap(format!("window {window_id} is closed")))
    }

    fn component(value: &Value) -> Result<ComponentId> {
        match value {
            Value::Int(id) => Ok(ComponentId(*id as u64)),
            _ => Err(VmError::trap("component handle must be an int")),
        }
    }
}

impl NativeHost for AppletHost {
    fn invoke(&self, name: &str, args: Vec<Value>) -> Result<Value> {
        // Pure stdlib helpers (string/number functions) carry no authority
        // and are available to every applet.
        if let Some(result) = jmp_vm::interp::invoke_pure(name, &args) {
            return result;
        }
        match (name, args.as_slice()) {
            ("print", [value]) => {
                jsystem::print(&value.display_string())?;
                Ok(Value::Null)
            }
            ("println", [value]) => {
                jsystem::println(&value.display_string())?;
                Ok(Value::Null)
            }
            ("read_file", [Value::Str(path)]) => {
                let text = files::read_string(path)?;
                Ok(Value::str(text))
            }
            ("write_file", [Value::Str(path), content]) => {
                files::write(path, content.display_string().as_bytes())?;
                Ok(Value::Null)
            }
            ("delete_file", [Value::Str(path)]) => {
                files::delete(path)?;
                Ok(Value::Null)
            }
            ("connect", [Value::Str(host)]) => {
                self.network.connect(&self.rt, host)?;
                Ok(Value::Bool(true))
            }
            ("fetch", [Value::Str(url)]) => {
                let bytes = self.network.fetch(&self.rt, url)?;
                Ok(Value::str(String::from_utf8_lossy(&bytes)))
            }
            ("get_property", [Value::Str(key)]) => match jsystem::property(key)? {
                Some(v) => Ok(Value::str(v)),
                None => Ok(Value::Null),
            },
            // -- GUI natives -------------------------------------------------
            ("create_window", [Value::Str(title)]) => {
                let window = jmp_core::gui::create_window(title)?;
                // Closing the applet's window ends the (viewer) application,
                // like closing the JDK appletviewer frame.
                window.on_closing(|_| {
                    let _ = Application::exit(0);
                });
                let id = window.id();
                self.windows.lock().insert(id.0, id);
                Ok(Value::Int(id.0 as i64))
            }
            ("close_window", [win]) => {
                self.window(win)?.close();
                Ok(Value::Null)
            }
            ("add_button", [win, Value::Str(label)]) => {
                let id = self.window(win)?.add_button(label);
                Ok(Value::Int(id.0 as i64))
            }
            ("add_menu_item", [win, Value::Str(label)]) => {
                let id = self.window(win)?.add_menu_item(label);
                Ok(Value::Int(id.0 as i64))
            }
            ("add_label", [win, Value::Str(text)]) => {
                let id = self.window(win)?.add_label(text);
                Ok(Value::Int(id.0 as i64))
            }
            ("add_text_field", [win]) => {
                let id = self.window(win)?.add_text_field();
                Ok(Value::Int(id.0 as i64))
            }
            ("text_of", [win, comp]) => {
                let text = self
                    .window(win)?
                    .text_of(AppletHost::component(comp)?)
                    .unwrap_or_default();
                Ok(Value::str(text))
            }
            ("set_text", [win, comp, text]) => {
                self.window(win)?
                    .set_text(AppletHost::component(comp)?, &text.display_string());
                Ok(Value::Null)
            }
            ("on_action", [win, comp, Value::Str(method)]) => {
                let window = self.window(win)?;
                let component = AppletHost::component(comp)?;
                let method = method.to_string();
                let interpreter = self
                    .interpreter
                    .get()
                    .and_then(Weak::upgrade)
                    .ok_or_else(|| VmError::trap("interpreter not attached"))?;
                let class = self
                    .class
                    .get()
                    .cloned()
                    .ok_or_else(|| VmError::trap("applet class not attached"))?;
                // Reject unknown callback methods at registration time.
                if interpreter.image().method(&method).is_none() {
                    return Err(VmError::trap(format!(
                        "on_action: no such method {method:?}"
                    )));
                }
                window.on_action(component, move |event| {
                    // The callback runs on the dispatcher thread, *inside the
                    // applet's frame*: the applet keeps its own authority even
                    // in GUI callbacks.
                    let arg = Value::Int(event.component.map_or(0, |c| c.0 as i64));
                    let outcome = class.call(|| interpreter.run(&method, vec![arg]));
                    if let Err(err) = outcome {
                        let _ = jsystem::eprintln(&format!("applet callback failed: {err}"));
                    }
                });
                Ok(Value::Null)
            }
            _ => Err(VmError::trap(format!(
                "unknown native {name}/{}",
                args.len()
            ))),
        }
    }
}

/// Loads and runs the applet at `url` inside the current application.
/// Factored out of [`appletviewer_main`] for tests; returns the applet's
/// `main` return value. If the applet opened windows, they stay alive after
/// `main` returns (the viewer's dispatcher thread keeps the application
/// running) and callbacks keep re-entering the applet.
///
/// # Errors
///
/// Fetch/verify failures, traps, or security denials from inside the applet.
pub fn run_applet(url: &str, applet_args: Vec<Value>) -> Result<Value> {
    let rt = MpRuntime::current().ok_or_else(|| VmError::illegal_state("no runtime"))?;
    let network =
        SimNetwork::of(&rt).ok_or_else(|| VmError::illegal_state("no network installed"))?;
    let vm = rt.vm().clone();

    // Fetch with the *viewer's* authority (its code source holds the socket
    // grant in the policy).
    let wire = network.fetch(&rt, url).map_err(VmError::from)?;
    let image = ClassImage::from_wire(&wire).map_err(|e| VmError::Io {
        message: format!("bad class image at {url}: {e}"),
    })?;

    // Creating a class loader is a checked operation; the policy grants it
    // to the appletviewer's code source (paper: "one can still assign
    // special privileges to certain code sources").
    vm.check_permission(&Permission::runtime("createClassLoader"))?;
    let policy_vm = vm.clone();
    let loader = vm.system_loader().new_child_with_resolver(
        format!("applet:{url}"),
        Arc::new(move |source: &CodeSource| {
            // The sandbox: whatever the user's policy says about this code
            // source, plus the viewer's delegations — connect-back to the
            // origin host and opening windows.
            let mut perms: PermissionCollection = policy_vm.policy().permissions_for(source);
            if let Some(host) = source.host() {
                perms.add(Permission::socket(host, SocketActions::CONNECT));
            }
            perms.add(Permission::awt("showWindow"));
            perms
        }),
    );
    let code_source = CodeSource::remote(url);
    let def = ClassDef::builder(&image.name).image(image).build();
    let class = loader.define_class(Arc::clone(&def), code_source)?;

    let host = Arc::new(AppletHost {
        rt,
        network,
        windows: Mutex::new(HashMap::new()),
        interpreter: OnceLock::new(),
        class: OnceLock::new(),
    });
    // The define above already verified and pre-decoded the image (cached
    // on the material); the interpreter adopts that shared compiled form.
    let compiled = def.compiled().expect("applet material carries an image")?;
    let interpreter = Arc::new(
        Interpreter::from_compiled(compiled, Arc::clone(&host) as Arc<dyn NativeHost>)
            .with_fuel(10_000_000),
    );
    // Both cells are freshly constructed above; each set happens exactly once.
    assert!(host.interpreter.set(Arc::downgrade(&interpreter)).is_ok());
    assert!(host.class.set(class.clone()).is_ok());
    // Lifetime: each registered listener captures its own strong
    // Arc<Interpreter>, which keeps the host alive through the interpreter's
    // native-host Arc; the host holds only a Weak back, so nothing cycles.

    // Run with the applet's protection domain on the stack, so every native
    // is checked against the applet, not the viewer.
    class.call(|| interpreter.run("main", applet_args))
}

/// `appletviewer <url> [args...]` — the application `main`.
pub fn appletviewer_main(args: Vec<String>) -> Result<()> {
    let Some(url) = args.first() else {
        return jsystem::eprintln("appletviewer: usage: appletviewer <url>").map_err(VmError::from);
    };
    let applet_args: Vec<Value> = args[1..].iter().map(Value::str).collect();
    match run_applet(url, applet_args) {
        Ok(Value::Null) => Ok(()),
        Ok(value) => jsystem::println(&format!("applet returned: {value}")).map_err(VmError::from),
        Err(err) => {
            jsystem::eprintln(&format!("appletviewer: applet failed: {err}"))
                .map_err(VmError::from)?;
            Ok(())
        }
    }
}
