//! The simulated network: where mobile code comes from.
//!
//! The paper's environment downloads applets over HTTP (§1, §6.3). We model
//! the network as a name→content store: hosts *publish* byte payloads under
//! paths, and clients *fetch* `http://host/path` URLs or *connect* to hosts —
//! both subject to `SocketPermission` checks against the calling stack, so
//! an applet can reach exactly the hosts its protection domain allows
//! (normally: the one it was loaded from).

use std::collections::HashMap;
use std::sync::Arc;

use jmp_core::{Error, MpRuntime};
use jmp_security::{Permission, SocketActions};
use parking_lot::RwLock;

/// Extension key under which the network registers itself with the VM.
pub const NETWORK_EXTENSION: &str = "jmp.network";

/// The simulated network.
#[derive(Debug, Default)]
pub struct SimNetwork {
    hosts: RwLock<HashMap<String, HashMap<String, Vec<u8>>>>,
}

impl SimNetwork {
    /// Creates an empty network.
    pub fn new() -> SimNetwork {
        SimNetwork::default()
    }

    /// Installs a new network into `rt`'s VM and returns it. Must be called
    /// from a trusted context (the host, during bootstrap).
    ///
    /// # Errors
    ///
    /// [`Error::Security`] if the caller may not set VM extensions.
    pub fn install(rt: &MpRuntime) -> Result<Arc<SimNetwork>, Error> {
        let net = Arc::new(SimNetwork::new());
        rt.vm().set_extension(
            NETWORK_EXTENSION,
            Arc::clone(&net) as Arc<dyn std::any::Any + Send + Sync>,
        )?;
        Ok(net)
    }

    /// The network installed in `rt`, if any.
    pub fn of(rt: &MpRuntime) -> Option<Arc<SimNetwork>> {
        rt.vm().extension::<SimNetwork>(NETWORK_EXTENSION)
    }

    /// Publishes `content` at `http://host/path` (host-side operation, no
    /// checks — the remote server is outside our trust domain anyway).
    pub fn publish(&self, host: &str, path: &str, content: impl Into<Vec<u8>>) {
        self.hosts
            .write()
            .entry(host.to_string())
            .or_default()
            .insert(path.trim_start_matches('/').to_string(), content.into());
    }

    /// Splits `http://host/path` into host and path.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] for non-HTTP or malformed URLs.
    pub fn parse_url(url: &str) -> Result<(String, String), Error> {
        let rest = url
            .strip_prefix("http://")
            .or_else(|| url.strip_prefix("https://"))
            .ok_or_else(|| Error::Io {
                message: format!("unsupported URL: {url}"),
            })?;
        let (host, path) = rest.split_once('/').unwrap_or((rest, ""));
        if host.is_empty() {
            return Err(Error::Io {
                message: format!("URL has no host: {url}"),
            });
        }
        Ok((host.to_string(), path.to_string()))
    }

    /// Fetches `http://host/path`, demanding
    /// `SocketPermission(host, "connect")` from the calling context.
    ///
    /// # Errors
    ///
    /// [`Error::Security`] if the connect is denied; [`Error::Io`] for
    /// unknown hosts or paths.
    pub fn fetch(&self, rt: &MpRuntime, url: &str) -> Result<Vec<u8>, Error> {
        let (host, path) = SimNetwork::parse_url(url)?;
        self.connect(rt, &host)?;
        let hosts = self.hosts.read();
        hosts
            .get(&host)
            .and_then(|paths| paths.get(&path))
            .cloned()
            .ok_or_else(|| Error::Io {
                message: format!("404 not found: {url}"),
            })
    }

    /// Opens a (simulated) connection to `host`, demanding
    /// `SocketPermission(host, "connect")` from the calling context — the
    /// check behind the paper's "an applet will get the permission from the
    /// Appletviewer to connect back to its own host" (§6.3).
    ///
    /// # Errors
    ///
    /// [`Error::Security`] if denied; [`Error::Io`] for unknown hosts.
    pub fn connect(&self, rt: &MpRuntime, host: &str) -> Result<(), Error> {
        rt.vm()
            .check_permission(&Permission::socket(host, SocketActions::CONNECT))?;
        if self
            .hosts
            .read()
            .contains_key(host.split(':').next().unwrap_or(host))
        {
            Ok(())
        } else {
            Err(Error::Io {
                message: format!("no route to host: {host}"),
            })
        }
    }

    /// Known hosts, sorted (diagnostics).
    pub fn host_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.hosts.read().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_urls() {
        assert_eq!(
            SimNetwork::parse_url("http://host.example/dir/file").unwrap(),
            ("host.example".to_string(), "dir/file".to_string())
        );
        assert_eq!(
            SimNetwork::parse_url("http://host.example").unwrap(),
            ("host.example".to_string(), String::new())
        );
        assert!(SimNetwork::parse_url("ftp://x/y").is_err());
        assert!(SimNetwork::parse_url("http:///nohost").is_err());
    }

    #[test]
    fn publish_is_visible() {
        let net = SimNetwork::new();
        net.publish("games.example.com", "/tetris.jbc", b"payload".to_vec());
        assert_eq!(net.host_names(), vec!["games.example.com"]);
    }
}
