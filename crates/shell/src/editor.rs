//! `edit` — the GUI text editor of the paper's running example: "Assume
//! that two users, Alice and Bob, are running the same program, say a text
//! editor... we would like to avoid saving Bob's file in Alice's directory
//! and vice versa" (paper §4, Feature 7).
//!
//! The *Save File* menu item's callback runs on the event-dispatcher thread.
//! Under per-application dispatching (Fig 4), that thread belongs to this
//! editor's application, so the save is attributed to the right application
//! and user. Under the legacy single dispatcher (Fig 2), the callback runs
//! on whichever application's thread started dispatching first — the
//! confusion the paper's redesign eliminates, and which the E2 experiments
//! demonstrate.

use jmp_core::{files, gui, jsystem, Application};
use jmp_vm::{Result, VmError};

/// Component ids of an open editor window, for tests driving the GUI.
#[derive(Debug, Clone, Copy)]
pub struct EditorLayout {
    /// The text field holding the buffer.
    pub text_field: jmp_awt::ComponentId,
    /// The *Save File* menu item.
    pub save_item: jmp_awt::ComponentId,
    /// The *Quit* menu item.
    pub quit_item: jmp_awt::ComponentId,
}

/// Opens an editor window for `file` and returns the window + layout.
/// Factored out of [`edit_main`] so tests and examples can drive it.
///
/// # Errors
///
/// GUI or permission failures.
pub fn open_editor(file: &str) -> Result<(jmp_awt::Window, EditorLayout)> {
    let window = gui::create_window(&format!("edit {file}")).map_err(VmError::from)?;
    let text_field = window.add_text_field();
    if let Ok(existing) = files::read_string(file) {
        window.set_text(text_field, &existing);
    }
    let save_item = window.add_menu_item("Save File");
    let quit_item = window.add_menu_item("Quit");

    let save_window = window.clone();
    let save_file = file.to_string();
    window.on_action(save_item, move |_event| {
        // Runs on the dispatcher thread; `files::write` resolves the
        // application (and hence the user) from *this thread's* group.
        let text = save_window.text_of(text_field).unwrap_or_default();
        match files::write(&save_file, text.as_bytes()) {
            Ok(()) => {
                let _ = jsystem::println(&format!("saved {save_file}"));
            }
            Err(err) => {
                let _ = jsystem::eprintln(&format!("edit: save failed: {err}"));
            }
        }
    });
    window.on_action(quit_item, |_event| {
        let _ = Application::exit(0);
    });
    window.on_closing(|_event| {
        let _ = Application::exit(0);
    });
    Ok((
        window,
        EditorLayout {
            text_field,
            save_item,
            quit_item,
        },
    ))
}

/// The `edit <file>` application `main`. Returns immediately after building
/// the window; the (non-daemon) dispatcher thread keeps the application
/// alive until *Quit* — exactly the paper's "an application that does use
/// the AWT has to call `Application.exit()` in order to finish" (§5.4).
pub fn edit_main(args: Vec<String>) -> Result<()> {
    let Some(file) = args.first() else {
        return jsystem::eprintln("edit: usage: edit <file>").map_err(VmError::from);
    };
    open_editor(file)?;
    Ok(())
}
