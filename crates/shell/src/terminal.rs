//! The Java terminal (paper §6.2).
//!
//! "We implemented a simple prototypical terminal that has a few methods to
//! read from and write to the terminal, and to switch echoing on and off."
//!
//! A [`Terminal`] has two sides:
//!
//! * The **user side** (tests and examples stand in for the human): type
//!   characters with [`Terminal::type_line`]/[`Terminal::type_text`], press
//!   end-of-input with [`Terminal::type_eof`], and read what the screen
//!   shows with [`Terminal::screen_text`].
//! * The **application side**: [`Terminal::in_stream`]/[`Terminal::out_stream`]
//!   are standard streams to launch a session with. Applications that only
//!   need basic I/O just use them; applications that need terminal control
//!   retrieve the [`Terminal`] from their stdin with [`Terminal::from_stdin`]
//!   and use [`Terminal::read_string`] (line editing + history — the shell
//!   does this) or [`Terminal::set_echo`] (the login program's password
//!   prompt).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use jmp_vm::io::{
    pipe, InStream, IoToken, OutStream, PipeReader, PipeWriter, ReadDevice, WriteDevice,
};
use jmp_vm::Result;
use parking_lot::Mutex;

struct TermInner {
    /// Keyboard: user side writes, application side reads.
    kbd_writer: PipeWriter,
    kbd_reader: PipeReader,
    /// Screen contents.
    screen: Mutex<Vec<u8>>,
    echo: AtomicBool,
    history: Mutex<Vec<String>>,
}

/// A terminal device. Cheap handle; clones refer to the same terminal.
#[derive(Clone)]
pub struct Terminal {
    inner: Arc<TermInner>,
}

impl Default for Terminal {
    fn default() -> Terminal {
        Terminal::new()
    }
}

impl Terminal {
    /// Creates a terminal with echo on and an empty screen.
    pub fn new() -> Terminal {
        let (kbd_writer, kbd_reader) = pipe(4096);
        Terminal {
            inner: Arc::new(TermInner {
                kbd_writer,
                kbd_reader,
                screen: Mutex::new(Vec::new()),
                echo: AtomicBool::new(true),
                history: Mutex::new(Vec::new()),
            }),
        }
    }

    // -- user side -----------------------------------------------------------

    /// Types `text` on the keyboard (no newline added).
    ///
    /// # Errors
    ///
    /// [`jmp_vm::VmError::StreamClosed`] if the terminal was closed.
    pub fn type_text(&self, text: &str) -> Result<()> {
        self.inner.kbd_writer.write_all(text.as_bytes())
    }

    /// Types `line` followed by Enter.
    ///
    /// # Errors
    ///
    /// As [`Terminal::type_text`].
    pub fn type_line(&self, line: &str) -> Result<()> {
        self.type_text(line)?;
        self.type_text("\n")
    }

    /// Signals end-of-input (Ctrl-D at an empty prompt).
    pub fn type_eof(&self) {
        self.inner.kbd_writer.close();
    }

    /// Everything currently on the screen, as UTF-8 (lossy).
    pub fn screen_text(&self) -> String {
        String::from_utf8_lossy(&self.inner.screen.lock()).into_owned()
    }

    /// Clears the screen buffer (user-side convenience for tests).
    pub fn clear_screen(&self) {
        self.inner.screen.lock().clear();
    }

    // -- application side ----------------------------------------------------

    /// A standard-input stream over this terminal, owned by `owner`.
    pub fn in_stream(&self, owner: IoToken) -> InStream {
        InStream::new(
            Arc::new(TerminalReadDevice {
                terminal: self.clone(),
            }),
            owner,
        )
    }

    /// A standard-output stream onto this terminal's screen, owned by
    /// `owner`.
    pub fn out_stream(&self, owner: IoToken) -> OutStream {
        OutStream::new(
            Arc::new(TerminalWriteDevice {
                terminal: self.clone(),
            }),
            owner,
        )
    }

    /// Retrieves the terminal backing `stdin`, if `stdin` is connected to
    /// one (paper §6.2: "applications can retrieve a reference to the
    /// terminal object itself"). Returns `None` for pipes, files, etc. — so
    /// programs like `cat` "also work if they are not run from a terminal".
    pub fn from_stdin(stdin: &InStream) -> Option<Terminal> {
        stdin
            .device_any()?
            .downcast_ref::<TerminalReadDevice>()
            .map(|device| device.terminal.clone())
    }

    /// Turns echoing of typed characters on or off — "the login application
    /// uses \[this\] before asking for a password" (§6.2).
    pub fn set_echo(&self, echo: bool) {
        self.inner.echo.store(echo, Ordering::SeqCst);
    }

    /// Whether typed characters are echoed to the screen.
    pub fn echo(&self) -> bool {
        self.inner.echo.load(Ordering::SeqCst)
    }

    /// Writes to the screen.
    ///
    /// # Errors
    ///
    /// None in practice; signature matches device plumbing.
    pub fn write_screen(&self, data: &[u8]) -> Result<()> {
        self.inner.screen.lock().extend_from_slice(data);
        Ok(())
    }

    /// The advanced line reader the shell uses (`readString`, §6.2): prints
    /// `prompt`, reads one line, echoes it (if echo is on), and records it
    /// in the history buffer. Returns `None` at end-of-input.
    ///
    /// # Errors
    ///
    /// [`jmp_vm::VmError::Interrupted`] if the reading thread is interrupted.
    pub fn read_string(&self, prompt: &str) -> Result<Option<String>> {
        self.read_line_internal(prompt, true)
    }

    fn read_line_internal(&self, prompt: &str, record_history: bool) -> Result<Option<String>> {
        self.write_screen(prompt.as_bytes())?;
        let mut line = Vec::new();
        let mut byte = [0u8; 1];
        loop {
            let n = self.inner.kbd_reader.read(&mut byte)?;
            if n == 0 {
                if line.is_empty() {
                    return Ok(None);
                }
                break;
            }
            if self.echo() {
                self.write_screen(&byte)?;
            }
            if byte[0] == b'\n' {
                if !self.echo() {
                    // Even with echo off, move to the next line.
                    self.write_screen(b"\n")?;
                }
                break;
            }
            line.push(byte[0]);
        }
        let text = String::from_utf8_lossy(&line).into_owned();
        if record_history && !text.is_empty() {
            self.inner.history.lock().push(text.clone());
        }
        Ok(Some(text))
    }

    /// Reads a line with echo off (password entry), restoring the previous
    /// echo state afterwards.
    ///
    /// # Errors
    ///
    /// As [`Terminal::read_string`].
    pub fn read_secret(&self, prompt: &str) -> Result<Option<String>> {
        let was = self.echo();
        self.set_echo(false);
        // Secrets are neither echoed nor recorded in the history buffer.
        let result = self.read_line_internal(prompt, false);
        self.set_echo(was);
        result
    }

    /// The history buffer (most recent last).
    pub fn history(&self) -> Vec<String> {
        self.inner.history.lock().clone()
    }
}

impl std::fmt::Debug for Terminal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Terminal")
            .field("echo", &self.echo())
            .field("screen_bytes", &self.inner.screen.lock().len())
            .field("history", &self.inner.history.lock().len())
            .finish()
    }
}

pub(crate) struct TerminalReadDevice {
    terminal: Terminal,
}

impl ReadDevice for TerminalReadDevice {
    fn read(&self, buf: &mut [u8]) -> Result<usize> {
        let n = self.terminal.inner.kbd_reader.read(buf)?;
        // Raw reads echo too, like a canonical-mode tty.
        if n > 0 && self.terminal.echo() {
            let _ = self.terminal.write_screen(&buf[..n]);
        }
        Ok(n)
    }

    fn as_any(&self) -> Option<&(dyn std::any::Any + Send + Sync)> {
        Some(self)
    }
}

struct TerminalWriteDevice {
    terminal: Terminal,
}

impl WriteDevice for TerminalWriteDevice {
    fn write(&self, data: &[u8]) -> Result<()> {
        self.terminal.write_screen(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_lines_reach_application_side() {
        let term = Terminal::new();
        let stdin = term.in_stream(IoToken(1));
        term.type_line("hello").unwrap();
        assert_eq!(stdin.read_line().unwrap().as_deref(), Some("hello"));
        term.type_eof();
        assert_eq!(stdin.read_line().unwrap(), None);
    }

    #[test]
    fn output_reaches_screen() {
        let term = Terminal::new();
        let stdout = term.out_stream(IoToken(1));
        stdout.println("result line").unwrap();
        assert!(term.screen_text().contains("result line\n"));
        term.clear_screen();
        assert!(term.screen_text().is_empty());
    }

    #[test]
    fn read_string_echoes_and_records_history() {
        let term = Terminal::new();
        term.type_line("first command").unwrap();
        let line = term.read_string("$ ").unwrap().unwrap();
        assert_eq!(line, "first command");
        let screen = term.screen_text();
        assert!(screen.contains("$ "));
        assert!(screen.contains("first command"));
        assert_eq!(term.history(), vec!["first command"]);
    }

    #[test]
    fn read_secret_does_not_echo() {
        let term = Terminal::new();
        term.type_line("hunter2").unwrap();
        let secret = term.read_secret("Password: ").unwrap().unwrap();
        assert_eq!(secret, "hunter2");
        let screen = term.screen_text();
        assert!(screen.contains("Password: "));
        assert!(!screen.contains("hunter2"), "password must not echo");
        assert!(term.echo(), "echo restored");
        assert!(
            term.history().is_empty(),
            "secrets must not enter the history buffer"
        );
    }

    #[test]
    fn raw_stdin_reads_echo_in_canonical_mode() {
        let term = Terminal::new();
        let stdin = term.in_stream(IoToken(1));
        term.type_line("visible").unwrap();
        let _ = stdin.read_line().unwrap();
        assert!(term.screen_text().contains("visible"));

        term.set_echo(false);
        term.type_line("hidden").unwrap();
        let _ = stdin.read_line().unwrap();
        assert!(!term.screen_text().contains("hidden"));
    }

    #[test]
    fn from_stdin_identifies_terminals_only() {
        let term = Terminal::new();
        let stdin = term.in_stream(IoToken(1));
        let recovered = Terminal::from_stdin(&stdin).expect("terminal-backed stdin");
        recovered.type_line("x").unwrap();
        assert_eq!(stdin.read_line().unwrap().as_deref(), Some("x"));

        let pipe_stdin = InStream::from_bytes(b"not a terminal".to_vec(), IoToken(1));
        assert!(Terminal::from_stdin(&pipe_stdin).is_none());
    }

    #[test]
    fn eof_then_read_string_returns_none() {
        let term = Terminal::new();
        term.type_eof();
        assert_eq!(term.read_string("$ ").unwrap(), None);
    }
}
