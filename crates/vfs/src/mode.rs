use std::fmt;

/// A read/write/execute permission triple for one class of user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rwx {
    /// Read permission (for directories: list entries).
    pub read: bool,
    /// Write permission (for directories: create/remove entries).
    pub write: bool,
    /// Execute permission (for directories: traverse).
    pub execute: bool,
}

impl Rwx {
    /// Builds from the low three bits of an octal digit (4=r, 2=w, 1=x).
    pub fn from_bits(bits: u8) -> Rwx {
        Rwx {
            read: bits & 0b100 != 0,
            write: bits & 0b010 != 0,
            execute: bits & 0b001 != 0,
        }
    }

    /// Converts back to the octal-digit representation.
    pub fn bits(self) -> u8 {
        (u8::from(self.read) << 2) | (u8::from(self.write) << 1) | u8::from(self.execute)
    }
}

impl fmt::Display for Rwx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.execute { 'x' } else { '-' }
        )
    }
}

/// Unix-style mode bits for a filesystem node, reduced to the two classes
/// that matter for the paper's experiments: the *owner* and *everyone else*.
///
/// (The paper's scenarios — Alice's files vs Bob's files, a world-readable
/// `/etc`, a private home directory — never need group semantics, so we omit
/// groups rather than carry dead configuration.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mode {
    /// Permissions for the owning user.
    pub owner: Rwx,
    /// Permissions for every other user.
    pub other: Rwx,
}

impl Mode {
    /// `rw- / r--`: the conventional default for files (0644).
    pub const FILE_DEFAULT: Mode = Mode {
        owner: Rwx {
            read: true,
            write: true,
            execute: false,
        },
        other: Rwx {
            read: true,
            write: false,
            execute: false,
        },
    };

    /// `rw- / ---`: a private file (0600).
    pub const FILE_PRIVATE: Mode = Mode {
        owner: Rwx {
            read: true,
            write: true,
            execute: false,
        },
        other: Rwx {
            read: false,
            write: false,
            execute: false,
        },
    };

    /// `rwx / r-x`: the conventional default for directories (0755).
    pub const DIR_DEFAULT: Mode = Mode {
        owner: Rwx {
            read: true,
            write: true,
            execute: true,
        },
        other: Rwx {
            read: true,
            write: false,
            execute: true,
        },
    };

    /// `rwx / ---`: a private directory (0700).
    pub const DIR_PRIVATE: Mode = Mode {
        owner: Rwx {
            read: true,
            write: true,
            execute: true,
        },
        other: Rwx {
            read: false,
            write: false,
            execute: false,
        },
    };

    /// `rwx / rwx`: world-writable (0777), e.g. `/tmp`.
    pub const WORLD_WRITABLE: Mode = Mode {
        owner: Rwx {
            read: true,
            write: true,
            execute: true,
        },
        other: Rwx {
            read: true,
            write: true,
            execute: true,
        },
    };

    /// Builds a mode from a three-digit octal literal such as `0o644`; the
    /// middle (group) digit is accepted for familiarity and ignored.
    pub fn from_octal(octal: u16) -> Mode {
        Mode {
            owner: Rwx::from_bits(((octal >> 6) & 0o7) as u8),
            other: Rwx::from_bits((octal & 0o7) as u8),
        }
    }

    /// The permissions that apply to `is_owner`.
    pub fn class(self, is_owner: bool) -> Rwx {
        if is_owner {
            self.owner
        } else {
            self.other
        }
    }
}

impl Default for Mode {
    fn default() -> Mode {
        Mode::FILE_DEFAULT
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.owner, self.other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octal_roundtrip() {
        let m = Mode::from_octal(0o644);
        assert_eq!(m, Mode::FILE_DEFAULT);
        let m = Mode::from_octal(0o700);
        assert_eq!(m, Mode::DIR_PRIVATE);
        assert_eq!(Mode::from_octal(0o755), Mode::DIR_DEFAULT);
        assert_eq!(Mode::from_octal(0o777), Mode::WORLD_WRITABLE);
    }

    #[test]
    fn group_digit_is_ignored() {
        assert_eq!(Mode::from_octal(0o604), Mode::from_octal(0o674));
    }

    #[test]
    fn class_selection() {
        let m = Mode::FILE_PRIVATE;
        assert!(m.class(true).read);
        assert!(!m.class(false).read);
    }

    #[test]
    fn display_is_ls_like() {
        assert_eq!(Mode::FILE_DEFAULT.to_string(), "rw-r--");
        assert_eq!(Mode::DIR_PRIVATE.to_string(), "rwx---");
    }

    #[test]
    fn rwx_bits_roundtrip() {
        for bits in 0..8u8 {
            assert_eq!(Rwx::from_bits(bits).bits(), bits);
        }
    }
}
