//! Path utilities for the virtual filesystem.
//!
//! Paths are plain `/`-separated strings. [`normalize`] produces the
//! canonical absolute form used as the key for every [`Vfs`](crate::Vfs)
//! operation: no trailing slash (except root itself), no `.`/`..`
//! components, no empty components.

/// Returns `true` if `path` starts with `/`.
pub fn is_absolute(path: &str) -> bool {
    path.starts_with('/')
}

/// Joins `path` onto `base` (which must be absolute). If `path` is already
/// absolute it wins; otherwise it is resolved relative to `base`.
///
/// ```
/// assert_eq!(jmp_vfs::join("/home/alice", "notes.txt"), "/home/alice/notes.txt");
/// assert_eq!(jmp_vfs::join("/home/alice", "/etc/passwd"), "/etc/passwd");
/// assert_eq!(jmp_vfs::join("/home/alice", "../bob"), "/home/bob");
/// ```
pub fn join(base: &str, path: &str) -> String {
    if is_absolute(path) {
        normalize(path)
    } else {
        normalize(&format!("{base}/{path}"))
    }
}

/// Normalizes an absolute path: collapses `//`, resolves `.` and `..`
/// (clamping `..` at root), strips trailing slashes. A relative input is
/// treated as relative to `/`.
///
/// ```
/// assert_eq!(jmp_vfs::normalize("/a//b/./c/../d/"), "/a/b/d");
/// assert_eq!(jmp_vfs::normalize("/../.."), "/");
/// ```
pub fn normalize(path: &str) -> String {
    let mut stack: Vec<&str> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                stack.pop();
            }
            other => stack.push(other),
        }
    }
    if stack.is_empty() {
        "/".to_string()
    } else {
        format!("/{}", stack.join("/"))
    }
}

/// Returns the final component of a normalized path (`""` for root).
///
/// ```
/// assert_eq!(jmp_vfs::basename("/home/alice/notes.txt"), "notes.txt");
/// assert_eq!(jmp_vfs::basename("/"), "");
/// ```
pub fn basename(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or("")
}

/// Returns the parent directory of a normalized path (`"/"` for root and
/// for single-component paths).
///
/// ```
/// assert_eq!(jmp_vfs::dirname("/home/alice/notes.txt"), "/home/alice");
/// assert_eq!(jmp_vfs::dirname("/home"), "/");
/// assert_eq!(jmp_vfs::dirname("/"), "/");
/// ```
pub fn dirname(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) | None => "/",
        Some(i) => &path[..i],
    }
}

/// Splits a normalized absolute path into its components.
pub(crate) fn components(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|c| !c.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_dots_and_slashes() {
        assert_eq!(normalize("/"), "/");
        assert_eq!(normalize(""), "/");
        assert_eq!(normalize("/a/b"), "/a/b");
        assert_eq!(normalize("/a/b/"), "/a/b");
        assert_eq!(normalize("//a///b"), "/a/b");
        assert_eq!(normalize("/a/./b"), "/a/b");
        assert_eq!(normalize("/a/../b"), "/b");
        assert_eq!(normalize("/../../.."), "/");
        assert_eq!(normalize("relative/x"), "/relative/x");
    }

    #[test]
    fn join_relative_and_absolute() {
        assert_eq!(join("/home/alice", "sub/file"), "/home/alice/sub/file");
        assert_eq!(join("/home/alice", "."), "/home/alice");
        assert_eq!(join("/home/alice", ".."), "/home");
        assert_eq!(join("/home/alice", "/abs"), "/abs");
        assert_eq!(join("/", "x"), "/x");
    }

    #[test]
    fn basename_dirname_pairs() {
        assert_eq!(basename("/a/b/c"), "c");
        assert_eq!(dirname("/a/b/c"), "/a/b");
        assert_eq!(basename("/a"), "a");
        assert_eq!(dirname("/a"), "/");
        assert_eq!(basename("/"), "");
        assert_eq!(dirname("/"), "/");
    }

    #[test]
    fn components_skips_empties() {
        let comps: Vec<&str> = components("/a/b/c").collect();
        assert_eq!(comps, vec!["a", "b", "c"]);
        assert_eq!(components("/").count(), 0);
    }
}
