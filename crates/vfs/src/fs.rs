use std::collections::{BTreeMap, HashMap};
use std::fmt;

use jmp_security::UserId;
use parking_lot::RwLock;

use crate::error::VfsError;
use crate::mode::Mode;
use crate::path::{basename, components, dirname, normalize};
use crate::Result;

/// The uid that bypasses all mode-bit checks, like Unix root. This is the
/// id of the `system` account created by
/// [`UserRegistry::with_users`](jmp_security::UserRegistry::with_users).
const SUPERUSER: UserId = UserId(0);

type NodeId = u64;
const ROOT: NodeId = 0;

/// Whether a node is a file or a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileKind {
    /// A regular file holding bytes.
    File,
    /// A directory holding named entries.
    Directory,
}

impl fmt::Display for FileKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FileKind::File => write!(f, "file"),
            FileKind::Directory => write!(f, "dir"),
        }
    }
}

/// Metadata snapshot for a filesystem node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileInfo {
    /// File or directory.
    pub kind: FileKind,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Owning user.
    pub owner: UserId,
    /// Mode bits.
    pub mode: Mode,
    /// Logical modification time (monotone counter, not wall-clock).
    pub mtime: u64,
}

/// One entry of a directory listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name (final path component).
    pub name: String,
    /// Metadata of the entry.
    pub info: FileInfo,
}

#[derive(Debug)]
enum NodeKind {
    File(Vec<u8>),
    Dir(BTreeMap<String, NodeId>),
}

#[derive(Debug)]
struct Node {
    kind: NodeKind,
    owner: UserId,
    mode: Mode,
    mtime: u64,
}

impl Node {
    fn kind(&self) -> FileKind {
        match self.kind {
            NodeKind::File(_) => FileKind::File,
            NodeKind::Dir(_) => FileKind::Directory,
        }
    }

    fn size(&self) -> u64 {
        match &self.kind {
            NodeKind::File(data) => data.len() as u64,
            NodeKind::Dir(_) => 0,
        }
    }

    fn info(&self) -> FileInfo {
        FileInfo {
            kind: self.kind(),
            size: self.size(),
            owner: self.owner,
            mode: self.mode,
            mtime: self.mtime,
        }
    }

    fn allows(&self, user: UserId, check: fn(crate::mode::Rwx) -> bool) -> bool {
        user == SUPERUSER || check(self.mode.class(user == self.owner))
    }
}

#[derive(Debug)]
struct State {
    nodes: HashMap<NodeId, Node>,
    next_id: NodeId,
    clock: u64,
}

impl State {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn node(&self, id: NodeId) -> &Node {
        self.nodes.get(&id).expect("node ids are never dangling")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes
            .get_mut(&id)
            .expect("node ids are never dangling")
    }

    /// Walks `path`, enforcing traverse (`x`) permission on every directory
    /// *leading to* the final component (not on the final node itself).
    fn resolve(&self, path: &str, user: UserId) -> Result<NodeId> {
        let mut current = ROOT;
        let comps: Vec<&str> = components(path).collect();
        for (i, comp) in comps.iter().enumerate() {
            let node = self.node(current);
            let dir = match &node.kind {
                NodeKind::Dir(entries) => entries,
                NodeKind::File(_) => {
                    return Err(VfsError::NotADirectory {
                        path: prefix_of(path, i),
                    })
                }
            };
            if !node.allows(user, |m| m.execute) {
                return Err(VfsError::denied(prefix_of(path, i), "traverse"));
            }
            current = *dir
                .get(*comp)
                .ok_or_else(|| VfsError::not_found(prefix_of(path, i + 1)))?;
        }
        Ok(current)
    }

    /// Resolves the parent directory of `path` and returns
    /// `(parent_id, final_component)`.
    fn resolve_parent<'p>(&self, path: &'p str, user: UserId) -> Result<(NodeId, &'p str)> {
        let name = basename(path);
        if name.is_empty() {
            return Err(VfsError::InvalidPath { path: path.into() });
        }
        let parent = self.resolve(dirname(path), user)?;
        match self.node(parent).kind {
            NodeKind::Dir(_) => Ok((parent, name)),
            NodeKind::File(_) => Err(VfsError::NotADirectory {
                path: dirname(path).to_string(),
            }),
        }
    }
}

fn prefix_of(path: &str, n_components: usize) -> String {
    let comps: Vec<&str> = components(path).take(n_components).collect();
    if comps.is_empty() {
        "/".to_string()
    } else {
        format!("/{}", comps.join("/"))
    }
}

/// The in-memory filesystem. Internally synchronized; share via `Arc`.
///
/// Every operation takes the [`UserId`] it is performed *as* and enforces
/// Unix-style mode bits: read/write on the node itself, write on the parent
/// directory for create/delete, execute (traverse) on every directory along
/// the path. [`UserId(0)`](jmp_security::UserId) bypasses all checks.
#[derive(Debug)]
pub struct Vfs {
    state: RwLock<State>,
}

impl Default for Vfs {
    fn default() -> Vfs {
        Vfs::new()
    }
}

impl Vfs {
    /// Creates a filesystem containing only a root directory owned by the
    /// superuser with mode `rwxr-x`.
    pub fn new() -> Vfs {
        let mut nodes = HashMap::new();
        nodes.insert(
            ROOT,
            Node {
                kind: NodeKind::Dir(BTreeMap::new()),
                owner: SUPERUSER,
                mode: Mode::DIR_DEFAULT,
                mtime: 0,
            },
        );
        Vfs {
            state: RwLock::new(State {
                nodes,
                next_id: 1,
                clock: 0,
            }),
        }
    }

    /// Metadata for the node at `path`.
    ///
    /// # Errors
    ///
    /// `NotFound` if the path does not exist; `PermissionDenied` if a
    /// directory on the way is not traversable by `user`.
    pub fn stat(&self, path: &str, user: UserId) -> Result<FileInfo> {
        let path = normalize(path);
        let state = self.state.read();
        let id = state.resolve(&path, user)?;
        Ok(state.node(id).info())
    }

    /// Returns `true` if `path` exists and is reachable by `user`.
    pub fn exists(&self, path: &str, user: UserId) -> bool {
        self.stat(path, user).is_ok()
    }

    /// Lists the entries of the directory at `path`, sorted by name.
    ///
    /// # Errors
    ///
    /// `NotADirectory` if `path` is a file; `PermissionDenied` if `user` may
    /// not read the directory.
    pub fn list_dir(&self, path: &str, user: UserId) -> Result<Vec<DirEntry>> {
        let path = normalize(path);
        let state = self.state.read();
        let id = state.resolve(&path, user)?;
        let node = state.node(id);
        let entries = match &node.kind {
            NodeKind::Dir(entries) => entries,
            NodeKind::File(_) => return Err(VfsError::NotADirectory { path }),
        };
        if !node.allows(user, |m| m.read) {
            return Err(VfsError::denied(path, "read"));
        }
        Ok(entries
            .iter()
            .map(|(name, id)| DirEntry {
                name: name.clone(),
                info: state.node(*id).info(),
            })
            .collect())
    }

    /// Creates a directory at `path`.
    ///
    /// # Errors
    ///
    /// `AlreadyExists` if the path is taken; `PermissionDenied` if `user` may
    /// not write the parent directory.
    pub fn mkdir(&self, path: &str, user: UserId) -> Result<()> {
        let path = normalize(path);
        let mut state = self.state.write();
        let (parent, name) = state.resolve_parent(&path, user)?;
        create_node(
            &mut state,
            parent,
            name,
            NodeKind::Dir(BTreeMap::new()),
            user,
            Mode::DIR_DEFAULT,
            &path,
        )?;
        Ok(())
    }

    /// Creates `path` and any missing ancestors (like `mkdir -p`).
    ///
    /// # Errors
    ///
    /// As [`Vfs::mkdir`], except that existing directories along the way are
    /// not an error.
    pub fn mkdirs(&self, path: &str, user: UserId) -> Result<()> {
        let path = normalize(path);
        let comps: Vec<&str> = components(&path).collect();
        let mut so_far = String::new();
        for comp in comps {
            so_far.push('/');
            so_far.push_str(comp);
            match self.mkdir(&so_far, user) {
                Ok(()) | Err(VfsError::AlreadyExists { .. }) => {}
                Err(other) => return Err(other),
            }
        }
        // If the final path exists but is a file, report it.
        let state = self.state.read();
        let id = state.resolve(&path, user)?;
        match state.node(id).kind {
            NodeKind::Dir(_) => Ok(()),
            NodeKind::File(_) => Err(VfsError::NotADirectory { path }),
        }
    }

    /// Writes `data` to the file at `path`, creating it (with
    /// [`Mode::FILE_DEFAULT`], owned by `user`) or truncating it.
    ///
    /// # Errors
    ///
    /// `PermissionDenied` if `user` may not write the file (when it exists)
    /// or the parent directory (when creating); `IsADirectory` if `path`
    /// names a directory.
    pub fn write(&self, path: &str, data: &[u8], user: UserId) -> Result<()> {
        self.write_impl(path, data, user, false)
    }

    /// Appends `data` to the file at `path`, creating it if absent.
    ///
    /// # Errors
    ///
    /// As [`Vfs::write`].
    pub fn append(&self, path: &str, data: &[u8], user: UserId) -> Result<()> {
        self.write_impl(path, data, user, true)
    }

    fn write_impl(&self, path: &str, data: &[u8], user: UserId, append: bool) -> Result<()> {
        let path = normalize(path);
        let mut state = self.state.write();
        let (parent, name) = state.resolve_parent(&path, user)?;
        let existing = match &state.node(parent).kind {
            NodeKind::Dir(entries) => entries.get(name).copied(),
            NodeKind::File(_) => unreachable!("resolve_parent guarantees a directory"),
        };
        match existing {
            Some(id) => {
                let mtime = state.tick();
                let node = state.node_mut(id);
                let writable = node.allows(user, |m| m.write);
                match &mut node.kind {
                    NodeKind::File(contents) => {
                        if !writable {
                            return Err(VfsError::denied(path, "write"));
                        }
                        if append {
                            contents.extend_from_slice(data);
                        } else {
                            contents.clear();
                            contents.extend_from_slice(data);
                        }
                        node.mtime = mtime;
                        Ok(())
                    }
                    NodeKind::Dir(_) => Err(VfsError::IsADirectory { path }),
                }
            }
            None => {
                create_node(
                    &mut state,
                    parent,
                    name,
                    NodeKind::File(data.to_vec()),
                    user,
                    Mode::FILE_DEFAULT,
                    &path,
                )?;
                Ok(())
            }
        }
    }

    /// Reads the entire contents of the file at `path`.
    ///
    /// # Errors
    ///
    /// `PermissionDenied` if `user` may not read it; `IsADirectory` for
    /// directories; `NotFound` if absent.
    pub fn read(&self, path: &str, user: UserId) -> Result<Vec<u8>> {
        let path = normalize(path);
        let state = self.state.read();
        let id = state.resolve(&path, user)?;
        let node = state.node(id);
        match &node.kind {
            NodeKind::File(data) => {
                if !node.allows(user, |m| m.read) {
                    return Err(VfsError::denied(path, "read"));
                }
                Ok(data.clone())
            }
            NodeKind::Dir(_) => Err(VfsError::IsADirectory { path }),
        }
    }

    /// Reads up to `len` bytes starting at `offset`. Returns an empty vector
    /// at end-of-file. Useful for streaming readers.
    ///
    /// # Errors
    ///
    /// As [`Vfs::read`].
    pub fn read_at(&self, path: &str, offset: u64, len: usize, user: UserId) -> Result<Vec<u8>> {
        let path = normalize(path);
        let state = self.state.read();
        let id = state.resolve(&path, user)?;
        let node = state.node(id);
        match &node.kind {
            NodeKind::File(data) => {
                if !node.allows(user, |m| m.read) {
                    return Err(VfsError::denied(path, "read"));
                }
                let start = (offset as usize).min(data.len());
                let end = start.saturating_add(len).min(data.len());
                Ok(data[start..end].to_vec())
            }
            NodeKind::Dir(_) => Err(VfsError::IsADirectory { path }),
        }
    }

    /// Creates an empty file if `path` is absent, else bumps its mtime.
    ///
    /// # Errors
    ///
    /// As [`Vfs::write`].
    pub fn touch(&self, path: &str, user: UserId) -> Result<()> {
        let npath = normalize(path);
        let exists = {
            let state = self.state.read();
            state.resolve(&npath, user).is_ok()
        };
        if exists {
            let mut state = self.state.write();
            let id = state.resolve(&npath, user)?;
            let mtime = state.tick();
            let node = state.node_mut(id);
            if !node.allows(user, |m| m.write) {
                return Err(VfsError::denied(npath, "write"));
            }
            node.mtime = mtime;
            Ok(())
        } else {
            self.write(path, b"", user)
        }
    }

    /// Removes the file at `path` (like `unlink`). Requires write permission
    /// on the *parent directory*, matching Unix semantics — this is exactly
    /// the check a `checkDelete` security hook sits in front of (paper §3.3).
    ///
    /// # Errors
    ///
    /// `IsADirectory` for directories (use [`Vfs::rmdir`]);
    /// `PermissionDenied`/`NotFound` as usual.
    pub fn remove(&self, path: &str, user: UserId) -> Result<()> {
        self.remove_impl(path, user, false)
    }

    /// Removes the *empty* directory at `path`.
    ///
    /// # Errors
    ///
    /// `NotEmpty` if the directory has entries; `NotADirectory` for files.
    pub fn rmdir(&self, path: &str, user: UserId) -> Result<()> {
        self.remove_impl(path, user, true)
    }

    fn remove_impl(&self, path: &str, user: UserId, dir: bool) -> Result<()> {
        let path = normalize(path);
        let mut state = self.state.write();
        let (parent, name) = state.resolve_parent(&path, user)?;
        let parent_node = state.node(parent);
        if !parent_node.allows(user, |m| m.write) {
            return Err(VfsError::denied(path, "delete"));
        }
        let id = match &parent_node.kind {
            NodeKind::Dir(entries) => entries
                .get(name)
                .copied()
                .ok_or_else(|| VfsError::not_found(&path))?,
            NodeKind::File(_) => unreachable!("resolve_parent guarantees a directory"),
        };
        match (&state.node(id).kind, dir) {
            (NodeKind::Dir(_), false) => return Err(VfsError::IsADirectory { path }),
            (NodeKind::File(_), true) => return Err(VfsError::NotADirectory { path }),
            (NodeKind::Dir(entries), true) if !entries.is_empty() => {
                return Err(VfsError::NotEmpty { path })
            }
            _ => {}
        }
        let mtime = state.tick();
        if let NodeKind::Dir(entries) = &mut state.node_mut(parent).kind {
            entries.remove(name);
        }
        state.node_mut(parent).mtime = mtime;
        state.nodes.remove(&id);
        Ok(())
    }

    /// Recursively removes `path` and everything under it (like `rm -r`).
    /// Requires write permission on the parent of every removed entry.
    ///
    /// # Errors
    ///
    /// Stops at the first permission failure, leaving a partially-removed
    /// tree (like `rm -r` does).
    pub fn remove_recursive(&self, path: &str, user: UserId) -> Result<()> {
        let info = self.stat(path, user)?;
        if info.kind == FileKind::Directory {
            let children = self.list_dir(path, user)?;
            for child in children {
                self.remove_recursive(&crate::path::join(&normalize(path), &child.name), user)?;
            }
            self.rmdir(path, user)
        } else {
            self.remove(path, user)
        }
    }

    /// Renames/moves `from` to `to` (which must not exist). Requires write
    /// permission on both parent directories.
    ///
    /// # Errors
    ///
    /// `AlreadyExists` if `to` is taken; permission/lookup errors as usual.
    pub fn rename(&self, from: &str, to: &str, user: UserId) -> Result<()> {
        let from = normalize(from);
        let to = normalize(to);
        let mut state = self.state.write();
        let (from_parent, from_name) = state.resolve_parent(&from, user)?;
        let (to_parent, to_name) = state.resolve_parent(&to, user)?;
        if !state.node(from_parent).allows(user, |m| m.write) {
            return Err(VfsError::denied(from, "delete"));
        }
        if !state.node(to_parent).allows(user, |m| m.write) {
            return Err(VfsError::denied(to, "write"));
        }
        if let NodeKind::Dir(entries) = &state.node(to_parent).kind {
            if entries.contains_key(to_name) {
                return Err(VfsError::AlreadyExists { path: to });
            }
        }
        let id = match &state.node(from_parent).kind {
            NodeKind::Dir(entries) => entries
                .get(from_name)
                .copied()
                .ok_or_else(|| VfsError::not_found(&from))?,
            NodeKind::File(_) => unreachable!("resolve_parent guarantees a directory"),
        };
        let mtime = state.tick();
        if let NodeKind::Dir(entries) = &mut state.node_mut(from_parent).kind {
            entries.remove(from_name);
        }
        let to_name = to_name.to_string();
        if let NodeKind::Dir(entries) = &mut state.node_mut(to_parent).kind {
            entries.insert(to_name, id);
        }
        state.node_mut(from_parent).mtime = mtime;
        state.node_mut(to_parent).mtime = mtime;
        Ok(())
    }

    /// Changes the owner of `path`. Only the superuser or the current owner
    /// may do this.
    ///
    /// # Errors
    ///
    /// `PermissionDenied` for anyone else.
    pub fn chown(&self, path: &str, new_owner: UserId, user: UserId) -> Result<()> {
        let path = normalize(path);
        let mut state = self.state.write();
        let id = state.resolve(&path, user)?;
        let mtime = state.tick();
        let node = state.node_mut(id);
        if user != SUPERUSER && user != node.owner {
            return Err(VfsError::denied(path, "chown"));
        }
        node.owner = new_owner;
        node.mtime = mtime;
        Ok(())
    }

    /// Changes the mode bits of `path`. Only the superuser or the owner may
    /// do this.
    ///
    /// # Errors
    ///
    /// `PermissionDenied` for anyone else.
    pub fn chmod(&self, path: &str, mode: Mode, user: UserId) -> Result<()> {
        let path = normalize(path);
        let mut state = self.state.write();
        let id = state.resolve(&path, user)?;
        let mtime = state.tick();
        let node = state.node_mut(id);
        if user != SUPERUSER && user != node.owner {
            return Err(VfsError::denied(path, "chmod"));
        }
        node.mode = mode;
        node.mtime = mtime;
        Ok(())
    }

    /// Total number of nodes (files + directories, including root). Used by
    /// tests and the memory-footprint experiment.
    pub fn node_count(&self) -> usize {
        self.state.read().nodes.len()
    }
}

fn create_node(
    state: &mut State,
    parent: NodeId,
    name: &str,
    kind: NodeKind,
    owner: UserId,
    mode: Mode,
    full_path: &str,
) -> Result<NodeId> {
    let parent_node = state.node(parent);
    // Existence wins over permission, matching Unix mkdir(2): creating an
    // entry that already exists reports EEXIST even in a read-only parent.
    if let NodeKind::Dir(entries) = &parent_node.kind {
        if entries.contains_key(name) {
            return Err(VfsError::AlreadyExists {
                path: full_path.to_string(),
            });
        }
    }
    if !parent_node.allows(owner, |m| m.write) {
        return Err(VfsError::denied(full_path, "create"));
    }
    let id = state.next_id;
    state.next_id += 1;
    let mtime = state.tick();
    state.nodes.insert(
        id,
        Node {
            kind,
            owner,
            mode,
            mtime,
        },
    );
    if let NodeKind::Dir(entries) = &mut state.node_mut(parent).kind {
        entries.insert(name.to_string(), id);
    }
    state.node_mut(parent).mtime = mtime;
    Ok(id)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ROOT_U: UserId = UserId(0);
    const ALICE: UserId = UserId(1);
    const BOB: UserId = UserId(2);

    /// Builds the standard two-user world the paper's examples use.
    fn world() -> Vfs {
        let fs = Vfs::new();
        fs.mkdirs("/home/alice", ROOT_U).unwrap();
        fs.mkdirs("/home/bob", ROOT_U).unwrap();
        fs.mkdirs("/tmp", ROOT_U).unwrap();
        fs.chmod("/tmp", Mode::WORLD_WRITABLE, ROOT_U).unwrap();
        fs.chown("/home/alice", ALICE, ROOT_U).unwrap();
        fs.chmod("/home/alice", Mode::DIR_PRIVATE, ROOT_U).unwrap();
        fs.chown("/home/bob", BOB, ROOT_U).unwrap();
        fs.chmod("/home/bob", Mode::DIR_PRIVATE, ROOT_U).unwrap();
        fs
    }

    #[test]
    fn write_and_read_roundtrip() {
        let fs = world();
        fs.write("/home/alice/notes.txt", b"dear diary", ALICE)
            .unwrap();
        assert_eq!(
            fs.read("/home/alice/notes.txt", ALICE).unwrap(),
            b"dear diary"
        );
        let info = fs.stat("/home/alice/notes.txt", ALICE).unwrap();
        assert_eq!(info.kind, FileKind::File);
        assert_eq!(info.size, 10);
        assert_eq!(info.owner, ALICE);
    }

    #[test]
    fn bob_cannot_enter_alices_private_home() {
        let fs = world();
        fs.write("/home/alice/secret", b"x", ALICE).unwrap();
        let err = fs.read("/home/alice/secret", BOB).unwrap_err();
        assert!(err.is_permission_denied(), "got {err:?}");
        // ... but the superuser can.
        assert_eq!(fs.read("/home/alice/secret", ROOT_U).unwrap(), b"x");
    }

    #[test]
    fn world_readable_file_in_private_dir_is_still_unreachable() {
        // Traverse permission on the directory gates everything inside.
        let fs = world();
        fs.write("/home/alice/public.txt", b"x", ALICE).unwrap();
        fs.chmod("/home/alice/public.txt", Mode::from_octal(0o644), ALICE)
            .unwrap();
        assert!(fs
            .read("/home/alice/public.txt", BOB)
            .unwrap_err()
            .is_permission_denied());
    }

    #[test]
    fn tmp_is_shared() {
        let fs = world();
        fs.write("/tmp/a", b"alice", ALICE).unwrap();
        fs.write("/tmp/b", b"bob", BOB).unwrap();
        // Bob can read alice's default-mode file in /tmp...
        assert_eq!(fs.read("/tmp/a", BOB).unwrap(), b"alice");
        // ...but cannot write it.
        assert!(fs
            .write("/tmp/a", b"evil", BOB)
            .unwrap_err()
            .is_permission_denied());
        // Deletion is governed by the parent directory, which is world-writable.
        fs.remove("/tmp/a", BOB).unwrap();
    }

    #[test]
    fn private_file_mode() {
        let fs = world();
        fs.write("/tmp/secret", b"x", ALICE).unwrap();
        fs.chmod("/tmp/secret", Mode::FILE_PRIVATE, ALICE).unwrap();
        assert!(fs
            .read("/tmp/secret", BOB)
            .unwrap_err()
            .is_permission_denied());
        assert_eq!(fs.read("/tmp/secret", ALICE).unwrap(), b"x");
    }

    #[test]
    fn append_extends() {
        let fs = world();
        fs.write("/tmp/log", b"one\n", ALICE).unwrap();
        fs.append("/tmp/log", b"two\n", ALICE).unwrap();
        assert_eq!(fs.read("/tmp/log", ALICE).unwrap(), b"one\ntwo\n");
    }

    #[test]
    fn read_at_windows() {
        let fs = world();
        fs.write("/tmp/data", b"0123456789", ALICE).unwrap();
        assert_eq!(fs.read_at("/tmp/data", 2, 3, ALICE).unwrap(), b"234");
        assert_eq!(fs.read_at("/tmp/data", 8, 10, ALICE).unwrap(), b"89");
        assert_eq!(fs.read_at("/tmp/data", 100, 10, ALICE).unwrap(), b"");
    }

    #[test]
    fn mkdir_requires_parent_write() {
        let fs = world();
        assert!(fs
            .mkdir("/home/alice/sub", BOB)
            .unwrap_err()
            .is_permission_denied());
        fs.mkdir("/home/alice/sub", ALICE).unwrap();
        assert_eq!(
            fs.stat("/home/alice/sub", ALICE).unwrap().kind,
            FileKind::Directory
        );
    }

    #[test]
    fn mkdirs_is_idempotent_and_detects_file_conflicts() {
        let fs = world();
        fs.mkdirs("/a/b/c", ROOT_U).unwrap();
        fs.mkdirs("/a/b/c", ROOT_U).unwrap();
        fs.write("/a/file", b"x", ROOT_U).unwrap();
        let err = fs.mkdirs("/a/file", ROOT_U).unwrap_err();
        assert!(matches!(err, VfsError::NotADirectory { .. }));
    }

    #[test]
    fn list_dir_is_sorted_and_respects_read_bit() {
        let fs = world();
        fs.write("/tmp/b", b"", ALICE).unwrap();
        fs.write("/tmp/a", b"", ALICE).unwrap();
        let names: Vec<String> = fs
            .list_dir("/tmp", BOB)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["a", "b"]);

        assert!(fs
            .list_dir("/home/alice", BOB)
            .unwrap_err()
            .is_permission_denied());
    }

    #[test]
    fn remove_distinguishes_files_and_dirs() {
        let fs = world();
        fs.mkdir("/tmp/d", ALICE).unwrap();
        fs.write("/tmp/f", b"", ALICE).unwrap();
        assert!(matches!(
            fs.remove("/tmp/d", ALICE).unwrap_err(),
            VfsError::IsADirectory { .. }
        ));
        assert!(matches!(
            fs.rmdir("/tmp/f", ALICE).unwrap_err(),
            VfsError::NotADirectory { .. }
        ));
        fs.write("/tmp/d/x", b"", ALICE).unwrap();
        assert!(matches!(
            fs.rmdir("/tmp/d", ALICE).unwrap_err(),
            VfsError::NotEmpty { .. }
        ));
        fs.remove("/tmp/d/x", ALICE).unwrap();
        fs.rmdir("/tmp/d", ALICE).unwrap();
        fs.remove("/tmp/f", ALICE).unwrap();
        assert!(!fs.exists("/tmp/f", ALICE));
    }

    #[test]
    fn remove_recursive_clears_trees() {
        let fs = world();
        fs.mkdirs("/tmp/t/a/b", ALICE).unwrap();
        fs.write("/tmp/t/a/b/f1", b"", ALICE).unwrap();
        fs.write("/tmp/t/f2", b"", ALICE).unwrap();
        let before = fs.node_count();
        fs.remove_recursive("/tmp/t", ALICE).unwrap();
        assert!(!fs.exists("/tmp/t", ALICE));
        assert_eq!(fs.node_count(), before - 5);
    }

    #[test]
    fn rename_moves_between_directories() {
        let fs = world();
        fs.write("/tmp/old", b"payload", ALICE).unwrap();
        fs.rename("/tmp/old", "/home/alice/new", ALICE).unwrap();
        assert!(!fs.exists("/tmp/old", ALICE));
        assert_eq!(fs.read("/home/alice/new", ALICE).unwrap(), b"payload");

        fs.write("/tmp/x", b"1", ALICE).unwrap();
        fs.write("/tmp/y", b"2", ALICE).unwrap();
        assert!(matches!(
            fs.rename("/tmp/x", "/tmp/y", ALICE).unwrap_err(),
            VfsError::AlreadyExists { .. }
        ));
    }

    #[test]
    fn chown_chmod_ownership_rules() {
        let fs = world();
        fs.write("/tmp/f", b"", ALICE).unwrap();
        assert!(fs
            .chown("/tmp/f", BOB, BOB)
            .unwrap_err()
            .is_permission_denied());
        assert!(fs
            .chmod("/tmp/f", Mode::FILE_PRIVATE, BOB)
            .unwrap_err()
            .is_permission_denied());
        fs.chown("/tmp/f", BOB, ALICE).unwrap();
        assert_eq!(fs.stat("/tmp/f", ALICE).unwrap().owner, BOB);
        // After giving it away, alice is no longer the owner.
        assert!(fs
            .chown("/tmp/f", ALICE, ALICE)
            .unwrap_err()
            .is_permission_denied());
    }

    #[test]
    fn mtime_is_monotone() {
        let fs = world();
        fs.write("/tmp/f", b"1", ALICE).unwrap();
        let t1 = fs.stat("/tmp/f", ALICE).unwrap().mtime;
        fs.write("/tmp/f", b"2", ALICE).unwrap();
        let t2 = fs.stat("/tmp/f", ALICE).unwrap().mtime;
        assert!(t2 > t1);
        fs.touch("/tmp/f", ALICE).unwrap();
        assert!(fs.stat("/tmp/f", ALICE).unwrap().mtime > t2);
    }

    #[test]
    fn touch_creates_files() {
        let fs = world();
        fs.touch("/tmp/new", ALICE).unwrap();
        assert_eq!(fs.stat("/tmp/new", ALICE).unwrap().size, 0);
    }

    #[test]
    fn relative_components_are_normalized() {
        let fs = world();
        fs.write("/tmp/../tmp/./f", b"x", ALICE).unwrap();
        assert_eq!(fs.read("/tmp/f", ALICE).unwrap(), b"x");
    }

    #[test]
    fn path_through_file_is_not_a_directory() {
        let fs = world();
        fs.write("/tmp/f", b"x", ALICE).unwrap();
        let err = fs.read("/tmp/f/deeper", ALICE).unwrap_err();
        assert!(matches!(err, VfsError::NotADirectory { .. }));
    }

    #[test]
    fn not_found_reports_the_missing_prefix() {
        let fs = world();
        let err = fs.read("/tmp/missing/deeper", ALICE).unwrap_err();
        match err {
            VfsError::NotFound { path } => assert_eq!(path, "/tmp/missing"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn superuser_bypasses_everything() {
        let fs = world();
        fs.write("/home/alice/f", b"x", ALICE).unwrap();
        fs.chmod("/home/alice/f", Mode::from_octal(0o000), ALICE)
            .unwrap();
        assert_eq!(fs.read("/home/alice/f", ROOT_U).unwrap(), b"x");
        fs.write("/home/alice/f", b"y", ROOT_U).unwrap();
        fs.remove("/home/alice/f", ROOT_U).unwrap();
    }

    #[test]
    fn owner_needs_mode_bits_too() {
        // Even the owner is subject to the owner-class bits (like Unix).
        let fs = world();
        fs.write("/tmp/f", b"x", ALICE).unwrap();
        fs.chmod("/tmp/f", Mode::from_octal(0o000), ALICE).unwrap();
        assert!(fs.read("/tmp/f", ALICE).unwrap_err().is_permission_denied());
    }
}
