use std::error::Error;
use std::fmt;

/// Errors raised by the virtual filesystem.
///
/// `PermissionDenied` here is the *O/S-level* denial (effective-uid vs mode
/// bits). It is deliberately a different type from
/// `jmp_security::SecurityError`: the paper points out that a Java
/// application "cannot see files that the UNIX user who runs the JVM is not
/// allowed to access, and an attempt to access those files results in a
/// FileNotFoundException instead of a SecurityException" (paper §4,
/// Feature 3 discussion).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VfsError {
    /// No entry at the path.
    NotFound {
        /// The path that was looked up.
        path: String,
    },
    /// A non-directory appeared where a directory was required.
    NotADirectory {
        /// The offending path.
        path: String,
    },
    /// A directory appeared where a file was required.
    IsADirectory {
        /// The offending path.
        path: String,
    },
    /// The target already exists.
    AlreadyExists {
        /// The path that already exists.
        path: String,
    },
    /// A directory could not be removed because it has entries.
    NotEmpty {
        /// The non-empty directory.
        path: String,
    },
    /// O/S-level permission denial: the acting user's id and the node's
    /// owner/mode bits do not allow the operation.
    PermissionDenied {
        /// The path being accessed.
        path: String,
        /// The action that was denied (`read`, `write`, `delete`, `traverse`, ...).
        action: &'static str,
    },
    /// The path is syntactically invalid (empty, or relative where an
    /// absolute path is required).
    InvalidPath {
        /// The invalid path text.
        path: String,
    },
}

impl VfsError {
    pub(crate) fn not_found(path: impl Into<String>) -> VfsError {
        VfsError::NotFound { path: path.into() }
    }

    pub(crate) fn denied(path: impl Into<String>, action: &'static str) -> VfsError {
        VfsError::PermissionDenied {
            path: path.into(),
            action,
        }
    }

    /// Returns `true` for the `NotFound` variant.
    pub fn is_not_found(&self) -> bool {
        matches!(self, VfsError::NotFound { .. })
    }

    /// Returns `true` for the O/S-level `PermissionDenied` variant.
    pub fn is_permission_denied(&self) -> bool {
        matches!(self, VfsError::PermissionDenied { .. })
    }
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound { path } => write!(f, "no such file or directory: {path}"),
            VfsError::NotADirectory { path } => write!(f, "not a directory: {path}"),
            VfsError::IsADirectory { path } => write!(f, "is a directory: {path}"),
            VfsError::AlreadyExists { path } => write!(f, "file exists: {path}"),
            VfsError::NotEmpty { path } => write!(f, "directory not empty: {path}"),
            VfsError::PermissionDenied { path, action } => {
                write!(f, "permission denied ({action}): {path}")
            }
            VfsError::InvalidPath { path } => write!(f, "invalid path: {path:?}"),
        }
    }
}

impl Error for VfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path_and_action() {
        let err = VfsError::denied("/home/bob/x", "read");
        let text = err.to_string();
        assert!(text.contains("/home/bob/x") && text.contains("read"));
    }

    #[test]
    fn predicates() {
        assert!(VfsError::not_found("/x").is_not_found());
        assert!(!VfsError::not_found("/x").is_permission_denied());
        assert!(VfsError::denied("/x", "write").is_permission_denied());
    }
}
