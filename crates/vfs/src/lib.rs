//! # jmp-vfs
//!
//! An in-memory, Unix-like virtual filesystem for the jmproc runtime.
//!
//! The paper's multi-user experiments need a filesystem underneath the
//! runtime for two reasons:
//!
//! 1. User-based access control (paper §5.3) must have real objects — files
//!    owned by Alice and Bob — to protect.
//! 2. The paper observes (Feature 3 discussion) that the underlying O/S
//!    enforces its *own* access control, which surfaces to Java code as
//!    `FileNotFoundException` rather than `SecurityException`. Reproducing
//!    that distinction requires an O/S layer with its own owners and mode
//!    bits, separate from the runtime's security manager.
//!
//! [`Vfs`] is the filesystem; every operation takes the [`UserId`] it is
//! performed *as*, mirroring a process's effective uid. The runtime's
//! security-manager checks happen a layer above, in `jmp-core`.
//!
//! # Example
//!
//! ```
//! use jmp_vfs::{Mode, Vfs};
//! use jmp_security::UserId;
//!
//! let fs = Vfs::new();
//! let root = UserId(0);
//! let alice = UserId(1);
//! fs.mkdirs("/home/alice", root)?;
//! fs.chown("/home/alice", alice, root)?;
//! fs.write("/home/alice/notes.txt", b"hello", alice)?;
//! assert_eq!(fs.read("/home/alice/notes.txt", alice)?, b"hello");
//! # Ok::<(), jmp_vfs::VfsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fs;
mod mode;
mod path;

pub use error::VfsError;
pub use fs::{DirEntry, FileInfo, FileKind, Vfs};
pub use mode::{Mode, Rwx};
pub use path::{basename, dirname, is_absolute, join, normalize};

// Re-exported so downstream crates don't need a direct jmp-security
// dependency just to name an owner.
pub use jmp_security::UserId;

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, VfsError>;
