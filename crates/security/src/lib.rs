//! # jmp-security
//!
//! A faithful, self-contained reimplementation of the **JDK 1.2 security
//! architecture** (Gong et al., *Going Beyond the Sandbox*, USENIX ITS 1997)
//! as required by Balfanz & Gong, *Experience with Secure Multi-Processing in
//! Java* (ICDCS 1998), extended with the paper's **user-based access control**
//! (paper §5.3).
//!
//! The pieces:
//!
//! * [`Permission`] — a typed permission lattice with an `implies` relation
//!   ([`Permission::implies`]), covering files, sockets, runtime targets,
//!   properties, AWT targets and the paper's new *user permission*.
//! * [`CodeSource`] — where code came from (a URL) and who signed it.
//! * [`ProtectionDomain`] — the permissions granted to a code source when its
//!   classes were defined.
//! * [`Policy`] — a parsed policy configuration, read from a textual syntax
//!   close to the JDK 1.2 policy-file format, extended with
//!   `grant user "alice" { ... }` blocks (paper §5.3).
//! * [`AccessController`] — the stack-inspection algorithm: a permission is
//!   granted only if **every** protection domain on the call stack implies it,
//!   where a `doPrivileged` frame stops the walk, and where a domain that holds
//!   [`UserPermission`](Permission::User)`("exerciseUserPermissions")` may
//!   additionally exercise the permissions granted to the *running user*.
//! * [`UserRegistry`] — users, password authentication, home directories
//!   (paper §5.2, Feature 3/4).
//!
//! # Example
//!
//! ```
//! use jmp_security::{
//!     AccessContext, AccessController, CodeSource, FileActions, Permission, Policy,
//!     ProtectionDomain,
//! };
//! use std::sync::Arc;
//!
//! let policy = Policy::parse(
//!     r#"
//!     grant codeBase "file:/apps/-" {
//!         permission user "exerciseUserPermissions";
//!     };
//!     grant user "alice" {
//!         permission file "/home/alice/-" "read,write";
//!     };
//!     "#,
//! )?;
//!
//! let editor_source = CodeSource::local("file:/apps/editor");
//! let editor_domain = Arc::new(ProtectionDomain::new(
//!     editor_source.clone(),
//!     policy.permissions_for(&editor_source),
//! ));
//!
//! // A call stack containing only the editor's domain, run by alice:
//! let ctx = AccessContext::from_domains(vec![editor_domain]);
//! let read_alice = Permission::file("/home/alice/notes.txt", FileActions::READ);
//! AccessController::check_with(&ctx, &read_alice, Some("alice"), &policy)?;
//! // ... but run by bob, the same code may not touch alice's files:
//! assert!(AccessController::check_with(&ctx, &read_alice, Some("bob"), &policy).is_err());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod code_source;
mod domain;
mod error;
mod index;
mod infer;
mod intern;
mod permission;
mod policy;
mod principal;
mod store;

pub use access::{AccessContext, AccessController, DomainEntry, GrantRoute};
pub use code_source::CodeSource;
#[doc(hidden)]
pub use domain::domain_display_format_count;
pub use domain::{PermissionCollection, ProtectionDomain};
pub use error::SecurityError;
pub use index::PermissionIndex;
pub use infer::{
    diff_policy, emit_policy_text, grant_count, infer_policy, ObservedDemand, PolicyDiffRow,
};
pub use intern::{interned_domain_count, ContextFingerprint, DomainId, FingerprintBuilder};
pub use permission::{FileActions, Permission, PropertyActions, SocketActions};
pub use policy::{Grant, GrantTarget, Policy};
pub use principal::{User, UserId, UserRegistry};
pub use store::{GrantSource, LazyUserStore, TemplateGrantSource, UserGrants};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, SecurityError>;
