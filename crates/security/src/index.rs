//! An indexed form of a grant list, replacing the linear `implies` scan.
//!
//! [`PermissionIndex`] pre-sorts grants by permission kind and target shape so
//! a concrete demand resolves with hash-map probes instead of walking every
//! grant. The index is semantically *exact*: for every demand it returns the
//! same answer as `grants.iter().any(|g| g.implies(demand))`, which the
//! `index_matches_linear_scan` test below enforces over the full pattern
//! matrix (exact paths, `/*` children, `/-` subtrees, `<<ALL FILES>>`, name
//! wildcards, dotted property wildcards, pattern-shaped demands).
//!
//! Action sets are deliberately **not** unioned across grants: two grants
//! `read` and `write` on the same path do not satisfy a `read,write` demand
//! (JDK `PermissionCollection` semantics, covered by the seed test
//! `collection_union_semantics`). Each index bucket therefore keeps one
//! action-set entry per grant and a demand must be contained by a single one.

use std::collections::{HashMap, HashSet};

use crate::permission::{
    host_pattern_implies, name_pattern_implies, path_pattern_implies, FileActions, Permission,
    PropertyActions, SocketActions,
};

/// Exact/wildcard split for named targets (runtime, awt, user).
///
/// `name_pattern_implies` treats a grant without a trailing `*` as an exact
/// string match, so those land in a hash set; the (rare) wildcard grants stay
/// in a short linear list.
#[derive(Debug, Clone, Default)]
struct NameIndex {
    exact: HashSet<String>,
    wildcard: Vec<String>,
}

impl NameIndex {
    fn add(&mut self, target: &str) {
        if target.ends_with('*') {
            self.wildcard.push(target.to_string());
        } else {
            self.exact.insert(target.to_string());
        }
    }

    fn implies(&self, demand: &str) -> bool {
        self.exact.contains(demand)
            || self
                .wildcard
                .iter()
                .any(|g| name_pattern_implies(g, demand))
    }

    fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.wildcard.is_empty()
    }
}

/// A kind- and target-indexed view of a set of permission grants.
///
/// Built once (lazily) per [`PermissionCollection`](crate::PermissionCollection)
/// or per policy user; queried on every access check that misses the
/// per-domain memo.
#[derive(Debug, Clone, Default)]
pub struct PermissionIndex {
    /// `AllPermission` granted: implies every demand.
    all: bool,
    /// File grants with an exact path, keyed by path.
    file_exact: HashMap<String, Vec<FileActions>>,
    /// `dir/*` file grants (direct children only), keyed by `dir`.
    file_children: HashMap<String, Vec<FileActions>>,
    /// `dir/-` file grants (recursive), keyed by `dir`.
    file_recursive: HashMap<String, Vec<FileActions>>,
    /// `<<ALL FILES>>` grants.
    file_all: Vec<FileActions>,
    /// Every file grant in declaration order; consulted only when the
    /// *demand* side is itself a pattern (`/*`, `/-`, `<<ALL FILES>>`),
    /// which never happens on the access-check hot path.
    file_linear: Vec<(String, FileActions)>,
    /// Socket grants; host patterns (ports, `*.suffix`) resist prefix
    /// indexing and socket checks are rare, so these stay linear.
    sockets: Vec<(String, SocketActions)>,
    runtime: NameIndex,
    awt: NameIndex,
    user: NameIndex,
    resource: NameIndex,
    /// Property grants with an exact key.
    property_exact: HashMap<String, Vec<PropertyActions>>,
    /// Property grants whose key ends in a wildcard.
    property_wildcard: Vec<(String, PropertyActions)>,
}

impl PermissionIndex {
    /// Builds an index over `grants`.
    pub fn build<'a>(grants: impl IntoIterator<Item = &'a Permission>) -> PermissionIndex {
        let mut index = PermissionIndex::default();
        for grant in grants {
            index.add(grant);
        }
        index
    }

    fn add(&mut self, grant: &Permission) {
        match grant {
            Permission::All => self.all = true,
            Permission::File { path, actions } => {
                self.file_linear.push((path.clone(), *actions));
                if path == "<<ALL FILES>>" {
                    self.file_all.push(*actions);
                } else if let Some(dir) = path.strip_suffix("/-") {
                    self.file_recursive
                        .entry(dir.to_string())
                        .or_default()
                        .push(*actions);
                } else if let Some(dir) = path.strip_suffix("/*") {
                    self.file_children
                        .entry(dir.to_string())
                        .or_default()
                        .push(*actions);
                } else {
                    self.file_exact
                        .entry(path.clone())
                        .or_default()
                        .push(*actions);
                }
            }
            Permission::Socket { host, actions } => self.sockets.push((host.clone(), *actions)),
            Permission::Runtime(target) => self.runtime.add(target),
            Permission::Property { key, actions } => {
                if key.ends_with('*') {
                    self.property_wildcard.push((key.clone(), *actions));
                } else {
                    self.property_exact
                        .entry(key.clone())
                        .or_default()
                        .push(*actions);
                }
            }
            Permission::Awt(target) => self.awt.add(target),
            Permission::User(target) => self.user.add(target),
            Permission::Resource(target) => self.resource.add(target),
        }
    }

    /// Returns `true` if the index holds no grants at all.
    pub fn is_empty(&self) -> bool {
        !self.all
            && self.file_linear.is_empty()
            && self.sockets.is_empty()
            && self.runtime.is_empty()
            && self.awt.is_empty()
            && self.user.is_empty()
            && self.resource.is_empty()
            && self.property_exact.is_empty()
            && self.property_wildcard.is_empty()
    }

    /// Returns `true` if any indexed grant implies `demand`.
    ///
    /// Exactly equivalent to the linear `any(|g| g.implies(demand))` scan.
    pub fn implies(&self, demand: &Permission) -> bool {
        if self.all {
            return true;
        }
        match demand {
            // Only `AllPermission` implies `AllPermission`.
            Permission::All => false,
            Permission::File { path, actions } => self.file_implies(path, *actions),
            Permission::Socket { host, actions } => self
                .sockets
                .iter()
                .any(|(g, a)| a.contains(*actions) && host_pattern_implies(g, host)),
            Permission::Runtime(target) => self.runtime.implies(target),
            Permission::Property { key, actions } => self.property_implies(key, *actions),
            Permission::Awt(target) => self.awt.implies(target),
            Permission::User(target) => self.user.implies(target),
            Permission::Resource(target) => self.resource.implies(target),
        }
    }

    fn file_implies(&self, path: &str, demand: FileActions) -> bool {
        // A pattern-shaped demand ("may I do X to everything under /a?") has
        // covering rules that cut across the index buckets; fall back to the
        // exact linear semantics for those.
        if path == "<<ALL FILES>>" || path.ends_with("/-") || path.ends_with("/*") {
            return self
                .file_linear
                .iter()
                .any(|(g, a)| a.contains(demand) && path_pattern_implies(g, path));
        }
        if self.file_all.iter().any(|a| a.contains(demand)) {
            return true;
        }
        if let Some(grants) = self.file_exact.get(path) {
            if grants.iter().any(|a| a.contains(demand)) {
                return true;
            }
        }
        // A `dir/*` grant covers exactly one more non-empty path component.
        if !self.file_children.is_empty() {
            if let Some((dir, name)) = path.rsplit_once('/') {
                if !name.is_empty() {
                    if let Some(grants) = self.file_children.get(dir) {
                        if grants.iter().any(|a| a.contains(demand)) {
                            return true;
                        }
                    }
                }
            }
        }
        // A `dir/-` grant covers every strict descendant: probe each proper
        // ancestor prefix (every prefix of `path` ending just before a '/').
        if !self.file_recursive.is_empty() {
            for (i, byte) in path.bytes().enumerate() {
                if byte == b'/' {
                    if let Some(grants) = self.file_recursive.get(&path[..i]) {
                        if grants.iter().any(|a| a.contains(demand)) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    fn property_implies(&self, key: &str, demand: PropertyActions) -> bool {
        if let Some(grants) = self.property_exact.get(key) {
            if grants.iter().any(|a| a.contains(demand)) {
                return true;
            }
        }
        self.property_wildcard
            .iter()
            .any(|(g, a)| a.contains(demand) && name_pattern_implies(g, key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_implies(grants: &[Permission], demand: &Permission) -> bool {
        grants.iter().any(|g| g.implies(demand))
    }

    fn grant_matrix() -> Vec<Permission> {
        vec![
            Permission::file("/home/alice/notes.txt", FileActions::READ),
            Permission::file("/home/alice/notes.txt", FileActions::WRITE),
            Permission::file("/home/alice/*", FileActions::READ),
            Permission::file("/home/alice/-", FileActions::DELETE),
            Permission::file("/-", FileActions::EXECUTE),
            Permission::file("<<ALL FILES>>", FileActions::READ),
            Permission::socket("*.example.com", SocketActions::CONNECT),
            Permission::socket("host:80", SocketActions::ALL),
            Permission::runtime("exitVM"),
            Permission::runtime("modifyThread*"),
            Permission::property("os.name", PropertyActions::READ),
            Permission::property("user.*", PropertyActions::ALL),
            Permission::awt("showWindow"),
            Permission::user(Permission::EXERCISE_USER),
            Permission::resource(Permission::SET_LIMITS),
            Permission::resource("limit.*"),
        ]
    }

    fn demand_matrix() -> Vec<Permission> {
        vec![
            Permission::All,
            Permission::file("/home/alice/notes.txt", FileActions::READ),
            Permission::file("/home/alice/notes.txt", FileActions::WRITE),
            Permission::file(
                "/home/alice/notes.txt",
                FileActions {
                    read: true,
                    write: true,
                    ..FileActions::default()
                },
            ),
            Permission::file("/home/alice/other.txt", FileActions::READ),
            Permission::file("/home/alice/sub/deep.txt", FileActions::READ),
            Permission::file("/home/alice/sub/deep.txt", FileActions::DELETE),
            Permission::file("/home/alice/sub/deep.txt", FileActions::EXECUTE),
            Permission::file("/home/bob/x", FileActions::READ),
            Permission::file("/home/bob/x", FileActions::WRITE),
            Permission::file("/home", FileActions::DELETE),
            Permission::file("/home/alice", FileActions::DELETE),
            Permission::file("relative", FileActions::READ),
            Permission::file("/home/alice/*", FileActions::READ),
            Permission::file("/home/alice/-", FileActions::DELETE),
            Permission::file("/home/alice/sub/-", FileActions::DELETE),
            Permission::file("<<ALL FILES>>", FileActions::READ),
            Permission::file("<<ALL FILES>>", FileActions::WRITE),
            Permission::socket("www.example.com", SocketActions::CONNECT),
            Permission::socket("example.com", SocketActions::CONNECT),
            Permission::socket("evil.com", SocketActions::CONNECT),
            Permission::socket("host:80", SocketActions::ACCEPT),
            Permission::socket("host:81", SocketActions::ACCEPT),
            Permission::runtime("exitVM"),
            Permission::runtime("modifyThreadGroup"),
            Permission::runtime("setUser"),
            Permission::property("os.name", PropertyActions::READ),
            Permission::property("os.name", PropertyActions::WRITE),
            Permission::property("user.home", PropertyActions::ALL),
            Permission::property("username", PropertyActions::READ),
            Permission::awt("showWindow"),
            Permission::awt("accessEventQueue"),
            Permission::user(Permission::EXERCISE_USER),
            Permission::user("other"),
            Permission::resource(Permission::SET_LIMITS),
            Permission::resource("limit.threads:256"),
            Permission::resource("limits"),
            Permission::resource("other"),
        ]
    }

    #[test]
    fn index_matches_linear_scan() {
        let grants = grant_matrix();
        let index = PermissionIndex::build(&grants);
        for demand in demand_matrix() {
            assert_eq!(
                index.implies(&demand),
                linear_implies(&grants, &demand),
                "index disagrees with linear scan for {demand}"
            );
        }
    }

    #[test]
    fn index_matches_linear_scan_per_grant() {
        // Each grant alone, against the full demand matrix: catches bucket
        // misclassification that the combined matrix could mask.
        for grant in grant_matrix() {
            let grants = vec![grant.clone()];
            let index = PermissionIndex::build(&grants);
            for demand in demand_matrix() {
                assert_eq!(
                    index.implies(&demand),
                    linear_implies(&grants, &demand),
                    "index disagrees with linear scan for grant {grant} demand {demand}"
                );
            }
        }
    }

    #[test]
    fn all_permission_dominates() {
        let index = PermissionIndex::build(&[Permission::All]);
        assert!(index.implies(&Permission::All));
        assert!(index.implies(&Permission::runtime("anything")));
        assert!(index.implies(&Permission::file("/x", FileActions::ALL)));
    }

    #[test]
    fn empty_index_implies_nothing() {
        let index = PermissionIndex::build(&[]);
        assert!(index.is_empty());
        assert!(!index.implies(&Permission::runtime("x")));
        assert!(!index.implies(&Permission::All));
    }

    #[test]
    fn root_recursive_grant_covers_absolute_paths() {
        let index = PermissionIndex::build(&[Permission::file("/-", FileActions::READ)]);
        assert!(index.implies(&Permission::file("/etc/passwd", FileActions::READ)));
        assert!(!index.implies(&Permission::file("relative", FileActions::READ)));
    }

    #[test]
    fn actions_are_not_unioned_across_grants() {
        let index = PermissionIndex::build(&[
            Permission::file("/a/x", FileActions::READ),
            Permission::file("/a/x", FileActions::WRITE),
        ]);
        assert!(index.implies(&Permission::file("/a/x", FileActions::READ)));
        assert!(index.implies(&Permission::file("/a/x", FileActions::WRITE)));
        assert!(!index.implies(&Permission::file(
            "/a/x",
            FileActions {
                read: true,
                write: true,
                ..FileActions::default()
            }
        )));
    }
}
