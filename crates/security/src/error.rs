use std::error::Error;
use std::fmt;

use crate::permission::Permission;

/// Error type for all security operations.
///
/// `AccessDenied` corresponds to Java's `SecurityException`: it is raised by
/// the access controller or a security manager when a sensitive operation is
/// not permitted, *before any harm can be done* (paper §3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SecurityError {
    /// A permission check failed. Carries the permission that was demanded
    /// and a description of the domain (or rule) that refused it.
    AccessDenied {
        /// The permission that was being checked.
        permission: Box<Permission>,
        /// Human-readable reason: which domain or rule denied the access.
        denied_by: String,
    },
    /// Authentication failed (wrong user name or password).
    AuthenticationFailed {
        /// The user name that attempted to log in.
        user: String,
    },
    /// A user name was not found in the registry.
    UnknownUser {
        /// The unknown user name.
        user: String,
    },
    /// A user with this name already exists in the registry.
    DuplicateUser {
        /// The duplicate user name.
        user: String,
    },
    /// The policy text could not be parsed.
    PolicyParse {
        /// 1-based line at which parsing failed.
        line: usize,
        /// Description of the syntax problem.
        message: String,
    },
}

impl SecurityError {
    /// Convenience constructor for an access-denied error.
    pub fn denied(permission: &Permission, denied_by: impl Into<String>) -> Self {
        SecurityError::AccessDenied {
            permission: Box::new(permission.clone()),
            denied_by: denied_by.into(),
        }
    }

    /// Returns `true` if this error is an access-control denial (as opposed
    /// to an authentication or parse problem).
    pub fn is_access_denied(&self) -> bool {
        matches!(self, SecurityError::AccessDenied { .. })
    }
}

impl fmt::Display for SecurityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityError::AccessDenied {
                permission,
                denied_by,
            } => write!(f, "access denied: {permission} (denied by {denied_by})"),
            SecurityError::AuthenticationFailed { user } => {
                write!(f, "authentication failed for user {user:?}")
            }
            SecurityError::UnknownUser { user } => write!(f, "unknown user {user:?}"),
            SecurityError::DuplicateUser { user } => write!(f, "user {user:?} already exists"),
            SecurityError::PolicyParse { line, message } => {
                write!(f, "policy parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for SecurityError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permission::{FileActions, Permission};

    #[test]
    fn display_is_informative() {
        let err = SecurityError::denied(
            &Permission::file("/etc/passwd", FileActions::READ),
            "codeBase file:/untrusted",
        );
        let text = err.to_string();
        assert!(text.contains("access denied"));
        assert!(text.contains("/etc/passwd"));
        assert!(text.contains("file:/untrusted"));
    }

    #[test]
    fn is_access_denied_discriminates() {
        let denied = SecurityError::denied(&Permission::runtime("exitVM"), "x");
        assert!(denied.is_access_denied());
        let auth = SecurityError::AuthenticationFailed {
            user: "alice".into(),
        };
        assert!(!auth.is_access_denied());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SecurityError>();
    }
}
