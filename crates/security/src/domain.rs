use std::fmt;

use serde::{Deserialize, Serialize};

use crate::code_source::CodeSource;
use crate::permission::Permission;

/// A heterogeneous set of granted permissions with an `implies` query
/// (JDK `PermissionCollection`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PermissionCollection {
    grants: Vec<Permission>,
}

impl PermissionCollection {
    /// Creates an empty collection (grants nothing).
    pub fn new() -> PermissionCollection {
        PermissionCollection::default()
    }

    /// Creates a collection granting everything.
    pub fn all_permissions() -> PermissionCollection {
        PermissionCollection {
            grants: vec![Permission::All],
        }
    }

    /// Adds a permission to the collection.
    pub fn add(&mut self, permission: Permission) {
        self.grants.push(permission);
    }

    /// Returns `true` if any granted permission implies `demand`.
    pub fn implies(&self, demand: &Permission) -> bool {
        self.grants.iter().any(|g| g.implies(demand))
    }

    /// Returns `true` if no permissions are granted.
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }

    /// Number of granted permissions (not a measure of power: one
    /// `AllPermission` beats any number of file grants).
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// Iterates over the granted permissions.
    pub fn iter(&self) -> std::slice::Iter<'_, Permission> {
        self.grants.iter()
    }
}

impl FromIterator<Permission> for PermissionCollection {
    fn from_iter<I: IntoIterator<Item = Permission>>(iter: I) -> Self {
        PermissionCollection {
            grants: iter.into_iter().collect(),
        }
    }
}

impl Extend<Permission> for PermissionCollection {
    fn extend<I: IntoIterator<Item = Permission>>(&mut self, iter: I) {
        self.grants.extend(iter);
    }
}

impl<'a> IntoIterator for &'a PermissionCollection {
    type Item = &'a Permission;
    type IntoIter = std::slice::Iter<'a, Permission>;
    fn into_iter(self) -> Self::IntoIter {
        self.grants.iter()
    }
}

impl fmt::Display for PermissionCollection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.grants.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

/// The permissions granted to a [`CodeSource`] when its classes were defined
/// (JDK 1.2 `ProtectionDomain`).
///
/// In the JDK 1.2 architecture a class is assigned its protection domain at
/// class-definition time, by resolving the policy against the class's code
/// source; every stack frame executing that class's code carries the domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectionDomain {
    code_source: CodeSource,
    permissions: PermissionCollection,
}

impl ProtectionDomain {
    /// Creates a domain for `code_source` holding `permissions`.
    pub fn new(code_source: CodeSource, permissions: PermissionCollection) -> ProtectionDomain {
        ProtectionDomain {
            code_source,
            permissions,
        }
    }

    /// A fully-privileged domain for runtime-internal ("system") code.
    pub fn system() -> ProtectionDomain {
        ProtectionDomain {
            code_source: CodeSource::local("file:/sys/-"),
            permissions: PermissionCollection::all_permissions(),
        }
    }

    /// A domain granting nothing, for completely untrusted code.
    pub fn untrusted(code_source: CodeSource) -> ProtectionDomain {
        ProtectionDomain {
            code_source,
            permissions: PermissionCollection::new(),
        }
    }

    /// The code source this domain was created for.
    pub fn code_source(&self) -> &CodeSource {
        &self.code_source
    }

    /// The statically-bound permissions.
    pub fn permissions(&self) -> &PermissionCollection {
        &self.permissions
    }

    /// Returns `true` if the domain's static permissions imply `demand`.
    pub fn implies(&self, demand: &Permission) -> bool {
        self.permissions.implies(demand)
    }
}

impl fmt::Display for ProtectionDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain[{}]", self.code_source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permission::{FileActions, Permission};

    #[test]
    fn empty_collection_implies_nothing() {
        let pc = PermissionCollection::new();
        assert!(pc.is_empty());
        assert!(!pc.implies(&Permission::runtime("exitVM")));
    }

    #[test]
    fn collection_union_semantics() {
        let pc: PermissionCollection = [
            Permission::file("/a/-", FileActions::READ),
            Permission::file("/a/x", FileActions::WRITE),
        ]
        .into_iter()
        .collect();
        assert!(pc.implies(&Permission::file("/a/deep/y", FileActions::READ)));
        assert!(pc.implies(&Permission::file("/a/x", FileActions::WRITE)));
        // Union of permissions does NOT merge actions across grants:
        assert!(!pc.implies(&Permission::file(
            "/a/deep/y",
            FileActions {
                read: true,
                write: true,
                ..FileActions::default()
            }
        )));
    }

    #[test]
    fn all_permissions_collection() {
        let pc = PermissionCollection::all_permissions();
        assert!(pc.implies(&Permission::All));
        assert!(pc.implies(&Permission::runtime("anything")));
    }

    #[test]
    fn system_domain_is_all_powerful() {
        let sys = ProtectionDomain::system();
        assert!(sys.implies(&Permission::All));
    }

    #[test]
    fn untrusted_domain_grants_nothing() {
        let d = ProtectionDomain::untrusted(CodeSource::remote("http://evil/x"));
        assert!(!d.implies(&Permission::file("/tmp/x", FileActions::READ)));
        assert_eq!(d.code_source().url(), "http://evil/x");
    }

    #[test]
    fn extend_and_iterate() {
        let mut pc = PermissionCollection::new();
        pc.extend([Permission::runtime("a"), Permission::runtime("b")]);
        assert_eq!(pc.len(), 2);
        let names: Vec<String> = pc.iter().map(|p| p.to_string()).collect();
        assert!(names[0].contains("\"a\""));
        assert!(names[1].contains("\"b\""));
    }

    #[test]
    fn display_formats() {
        let mut pc = PermissionCollection::new();
        pc.add(Permission::runtime("exitVM"));
        assert!(pc.to_string().contains("exitVM"));
        let d = ProtectionDomain::new(CodeSource::local("file:/x"), pc);
        assert!(d.to_string().contains("file:/x"));
    }
}
