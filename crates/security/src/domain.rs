use std::cell::Cell;
use std::fmt;
use std::sync::{Arc, OnceLock};

use serde::{DeError, Deserialize, Serialize, Value};

use crate::code_source::CodeSource;
use crate::index::PermissionIndex;
use crate::intern::{self, DomainId, InternedDomain};
use crate::permission::Permission;

/// A heterogeneous set of granted permissions with an `implies` query
/// (JDK `PermissionCollection`).
///
/// The grant list is lazily compiled into a [`PermissionIndex`] on first
/// query, replacing the linear scan with kind- and target-keyed lookups;
/// mutation resets the index.
#[derive(Debug, Default)]
pub struct PermissionCollection {
    grants: Vec<Permission>,
    /// Lazily-built query index over `grants`. Intentionally excluded from
    /// `Clone`/`PartialEq`/serde: it is a pure function of `grants`.
    index: OnceLock<PermissionIndex>,
}

impl PermissionCollection {
    /// Creates an empty collection (grants nothing).
    pub fn new() -> PermissionCollection {
        PermissionCollection::default()
    }

    /// Creates a collection granting everything.
    pub fn all_permissions() -> PermissionCollection {
        PermissionCollection::from_grants(vec![Permission::All])
    }

    fn from_grants(grants: Vec<Permission>) -> PermissionCollection {
        PermissionCollection {
            grants,
            index: OnceLock::new(),
        }
    }

    /// Adds a permission to the collection.
    pub fn add(&mut self, permission: Permission) {
        self.grants.push(permission);
        self.index.take();
    }

    /// Returns `true` if any granted permission implies `demand`.
    pub fn implies(&self, demand: &Permission) -> bool {
        self.index().implies(demand)
    }

    fn index(&self) -> &PermissionIndex {
        self.index
            .get_or_init(|| PermissionIndex::build(&self.grants))
    }

    /// Returns `true` if no permissions are granted.
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }

    /// Number of granted permissions (not a measure of power: one
    /// `AllPermission` beats any number of file grants).
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// Iterates over the granted permissions.
    pub fn iter(&self) -> std::slice::Iter<'_, Permission> {
        self.grants.iter()
    }
}

impl Clone for PermissionCollection {
    fn clone(&self) -> PermissionCollection {
        PermissionCollection::from_grants(self.grants.clone())
    }
}

impl PartialEq for PermissionCollection {
    fn eq(&self, other: &PermissionCollection) -> bool {
        self.grants == other.grants
    }
}

impl Eq for PermissionCollection {}

impl Serialize for PermissionCollection {
    fn serialize_value(&self) -> Value {
        Value::Map(vec![("grants".to_string(), self.grants.serialize_value())])
    }
}

impl Deserialize for PermissionCollection {
    fn deserialize_value(value: &Value) -> Result<PermissionCollection, DeError> {
        let entries = value
            .as_map()
            .ok_or_else(|| DeError::custom("expected map for PermissionCollection"))?;
        Ok(PermissionCollection::from_grants(serde::field_from_map(
            entries, "grants",
        )?))
    }
}

impl FromIterator<Permission> for PermissionCollection {
    fn from_iter<I: IntoIterator<Item = Permission>>(iter: I) -> Self {
        PermissionCollection::from_grants(iter.into_iter().collect())
    }
}

impl Extend<Permission> for PermissionCollection {
    fn extend<I: IntoIterator<Item = Permission>>(&mut self, iter: I) {
        self.grants.extend(iter);
        self.index.take();
    }
}

impl<'a> IntoIterator for &'a PermissionCollection {
    type Item = &'a Permission;
    type IntoIter = std::slice::Iter<'a, Permission>;
    fn into_iter(self) -> Self::IntoIter {
        self.grants.iter()
    }
}

impl fmt::Display for PermissionCollection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.grants.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

thread_local! {
    /// Counts every `Display` formatting of a [`ProtectionDomain`] on this
    /// thread. Denial messages are the only hot-path consumer, so tests use
    /// this to prove the granted path formats nothing. Thread-local so
    /// concurrently-running tests cannot perturb each other's counts.
    static DOMAIN_DISPLAY_FORMATS: Cell<u64> = const { Cell::new(0) };
}

/// Number of times a [`ProtectionDomain`] has been `Display`-formatted on
/// the calling thread.
///
/// A test/diagnostic hook for the invariant that granted access checks never
/// build denial strings; not part of the stable API.
#[doc(hidden)]
pub fn domain_display_format_count() -> u64 {
    DOMAIN_DISPLAY_FORMATS.with(Cell::get)
}

/// The permissions granted to a [`CodeSource`] when its classes were defined
/// (JDK 1.2 `ProtectionDomain`).
///
/// In the JDK 1.2 architecture a class is assigned its protection domain at
/// class-definition time, by resolving the policy against the class's code
/// source; every stack frame executing that class's code carries the domain.
///
/// Domains are interned on first use: equal `(code source, grants)` pairs
/// share one [`DomainId`], one fingerprint term and one bounded memo of
/// `implies` results (see [`crate::intern`]).
#[derive(Debug, Clone)]
pub struct ProtectionDomain {
    code_source: CodeSource,
    permissions: PermissionCollection,
    /// Lazily-resolved intern record; a pure function of the other fields,
    /// so clones may carry it and equality ignores it.
    interned: OnceLock<Arc<InternedDomain>>,
}

impl ProtectionDomain {
    /// Creates a domain for `code_source` holding `permissions`.
    pub fn new(code_source: CodeSource, permissions: PermissionCollection) -> ProtectionDomain {
        ProtectionDomain {
            code_source,
            permissions,
            interned: OnceLock::new(),
        }
    }

    /// A fully-privileged domain for runtime-internal ("system") code.
    pub fn system() -> ProtectionDomain {
        ProtectionDomain::new(
            CodeSource::local("file:/sys/-"),
            PermissionCollection::all_permissions(),
        )
    }

    /// A domain granting nothing, for completely untrusted code.
    pub fn untrusted(code_source: CodeSource) -> ProtectionDomain {
        ProtectionDomain::new(code_source, PermissionCollection::new())
    }

    /// The code source this domain was created for.
    pub fn code_source(&self) -> &CodeSource {
        &self.code_source
    }

    /// The statically-bound permissions.
    pub fn permissions(&self) -> &PermissionCollection {
        &self.permissions
    }

    /// The interned id of this domain. Equal domains always share an id.
    pub fn id(&self) -> DomainId {
        self.interned().id()
    }

    /// The shared intern record (id, fingerprint term, memo).
    pub(crate) fn interned(&self) -> &Arc<InternedDomain> {
        self.interned.get_or_init(|| intern::intern(self))
    }

    /// Returns `true` if the domain's static permissions imply `demand`.
    ///
    /// Memoized per interned domain: a given `(domain, demand)` pair is
    /// resolved against the grant index at most once VM-wide (until the memo
    /// cap), after which this is a single hash lookup.
    pub fn implies(&self, demand: &Permission) -> bool {
        let interned = self.interned();
        if let Some(memoized) = interned.memo().get(demand) {
            return memoized;
        }
        let granted = self.permissions.implies(demand);
        interned.memo().insert(demand, granted);
        granted
    }
}

impl PartialEq for ProtectionDomain {
    fn eq(&self, other: &ProtectionDomain) -> bool {
        self.code_source == other.code_source && self.permissions == other.permissions
    }
}

impl Eq for ProtectionDomain {}

impl fmt::Display for ProtectionDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        DOMAIN_DISPLAY_FORMATS.with(|count| count.set(count.get() + 1));
        write!(f, "domain[{}]", self.code_source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permission::{FileActions, Permission};

    #[test]
    fn empty_collection_implies_nothing() {
        let pc = PermissionCollection::new();
        assert!(pc.is_empty());
        assert!(!pc.implies(&Permission::runtime("exitVM")));
    }

    #[test]
    fn collection_union_semantics() {
        let pc: PermissionCollection = [
            Permission::file("/a/-", FileActions::READ),
            Permission::file("/a/x", FileActions::WRITE),
        ]
        .into_iter()
        .collect();
        assert!(pc.implies(&Permission::file("/a/deep/y", FileActions::READ)));
        assert!(pc.implies(&Permission::file("/a/x", FileActions::WRITE)));
        // Union of permissions does NOT merge actions across grants:
        assert!(!pc.implies(&Permission::file(
            "/a/deep/y",
            FileActions {
                read: true,
                write: true,
                ..FileActions::default()
            }
        )));
    }

    #[test]
    fn all_permissions_collection() {
        let pc = PermissionCollection::all_permissions();
        assert!(pc.implies(&Permission::All));
        assert!(pc.implies(&Permission::runtime("anything")));
    }

    #[test]
    fn system_domain_is_all_powerful() {
        let sys = ProtectionDomain::system();
        assert!(sys.implies(&Permission::All));
    }

    #[test]
    fn untrusted_domain_grants_nothing() {
        let d = ProtectionDomain::untrusted(CodeSource::remote("http://evil/x"));
        assert!(!d.implies(&Permission::file("/tmp/x", FileActions::READ)));
        assert_eq!(d.code_source().url(), "http://evil/x");
    }

    #[test]
    fn extend_and_iterate() {
        let mut pc = PermissionCollection::new();
        pc.extend([Permission::runtime("a"), Permission::runtime("b")]);
        assert_eq!(pc.len(), 2);
        let names: Vec<String> = pc.iter().map(|p| p.to_string()).collect();
        assert!(names[0].contains("\"a\""));
        assert!(names[1].contains("\"b\""));
    }

    #[test]
    fn mutation_resets_the_query_index() {
        let mut pc = PermissionCollection::new();
        assert!(!pc.implies(&Permission::runtime("late")));
        pc.add(Permission::runtime("late"));
        assert!(pc.implies(&Permission::runtime("late")));
        assert!(!pc.implies(&Permission::runtime("later")));
        pc.extend([Permission::runtime("later")]);
        assert!(pc.implies(&Permission::runtime("later")));
    }

    #[test]
    fn clone_and_equality_ignore_the_index() {
        let mut pc = PermissionCollection::new();
        pc.add(Permission::runtime("x"));
        // Build the index on one side only.
        assert!(pc.implies(&Permission::runtime("x")));
        let fresh: PermissionCollection = [Permission::runtime("x")].into_iter().collect();
        assert_eq!(pc, fresh);
        let cloned = pc.clone();
        assert_eq!(cloned, pc);
        assert!(cloned.implies(&Permission::runtime("x")));
    }

    #[test]
    fn collection_serde_roundtrip() {
        let pc: PermissionCollection = [
            Permission::file("/a/-", FileActions::READ),
            Permission::runtime("exitVM"),
        ]
        .into_iter()
        .collect();
        let value = pc.serialize_value();
        let back = PermissionCollection::deserialize_value(&value).unwrap();
        assert_eq!(pc, back);
    }

    #[test]
    fn display_formats() {
        let mut pc = PermissionCollection::new();
        pc.add(Permission::runtime("exitVM"));
        assert!(pc.to_string().contains("exitVM"));
        let d = ProtectionDomain::new(CodeSource::local("file:/x"), pc);
        assert!(d.to_string().contains("file:/x"));
    }

    #[test]
    fn display_is_counted() {
        let d = ProtectionDomain::system();
        let before = domain_display_format_count();
        let _ = d.to_string();
        assert!(domain_display_format_count() > before);
    }
}
