//! Hash-consed interning of [`ProtectionDomain`]s.
//!
//! Two domains with the same code source and the same grant list are the
//! *same* domain for access-control purposes, no matter how many `Arc`s or
//! clones of them float around the VM. The [`DomainRegistry`] assigns each
//! distinct `(code source, grants)` pair a small stable [`DomainId`], so:
//!
//! * an [`AccessContext`](crate::AccessContext) reduces to a deduplicated
//!   id-*set* with a stable order-insensitive 64-bit fingerprint (the stack
//!   walk ANDs over the set of visible domains, so order and multiplicity
//!   are irrelevant to the decision), and
//! * every clone of a domain shares one [`DomainMemo`], a bounded
//!   `(Permission → bool)` memo of `implies` results, so a demand is
//!   resolved against a given domain's grants at most once VM-wide.
//!
//! Interning is lazy: the registry is consulted the first time a domain's
//! [`id`](crate::ProtectionDomain::id) is needed (typically on its first
//! access check) and the result is cached in the domain via `OnceLock`, so
//! the warm path never takes the registry lock.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};

use crate::code_source::CodeSource;
use crate::permission::Permission;
use crate::ProtectionDomain;

/// Cap on each shared per-domain memo. Real workloads demand a handful of
/// distinct permissions per domain; the cap only guards against a
/// pathological stream of never-repeating demands growing memory without
/// bound. When full, new results are simply not memoized.
const MEMO_CAP: usize = 1024;

/// A small stable handle for an interned protection domain.
///
/// Equal `(code source, grants)` pairs always receive the same id within a
/// process; ids are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(u64);

impl DomainId {
    /// The raw id value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// A bounded, shared memo of `(Permission → implies?)` results for one
/// interned domain. All clones of equal domains share one memo through the
/// registry.
#[derive(Debug, Default)]
pub struct DomainMemo {
    map: RwLock<HashMap<Permission, bool>>,
}

impl DomainMemo {
    /// Looks up a memoized `implies` result.
    pub fn get(&self, demand: &Permission) -> Option<bool> {
        self.map
            .read()
            .expect("domain memo poisoned")
            .get(demand)
            .copied()
    }

    /// Memoizes an `implies` result (no-op once the memo is full).
    pub fn insert(&self, demand: &Permission, granted: bool) {
        let mut map = self.map.write().expect("domain memo poisoned");
        if map.len() < MEMO_CAP {
            map.insert(demand.clone(), granted);
        }
    }
}

/// The registry's record for one distinct domain: its id, its precomputed
/// fingerprint term, and the shared memo.
#[derive(Debug)]
pub struct InternedDomain {
    id: DomainId,
    /// This domain's contribution to a context fingerprint: the id passed
    /// through a 64-bit avalanche so that XOR-combining terms of distinct
    /// id-sets produces well-spread fingerprints.
    fingerprint_term: u64,
    memo: DomainMemo,
}

impl InternedDomain {
    /// The interned id.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// The domain's XOR-combinable fingerprint contribution.
    pub fn fingerprint_term(&self) -> u64 {
        self.fingerprint_term
    }

    /// The shared `(Permission → bool)` memo.
    pub fn memo(&self) -> &DomainMemo {
        &self.memo
    }
}

fn avalanche(x: u64) -> u64 {
    // DefaultHasher (SipHash-1-3 with fixed keys) is deterministic within a
    // process, which is all a fingerprint term needs.
    let mut hasher = DefaultHasher::new();
    x.hash(&mut hasher);
    hasher.finish()
}

/// Identity of a domain for interning purposes: its code source plus its
/// full static permission set.
type InternKey = (CodeSource, Vec<Permission>);

/// The process-wide hash-consing table.
#[derive(Debug, Default)]
struct DomainRegistry {
    map: RwLock<HashMap<InternKey, Arc<InternedDomain>>>,
}

impl DomainRegistry {
    fn intern(&self, domain: &ProtectionDomain) -> Arc<InternedDomain> {
        let key = (
            domain.code_source().clone(),
            domain.permissions().iter().cloned().collect::<Vec<_>>(),
        );
        if let Some(found) = self.map.read().expect("domain registry poisoned").get(&key) {
            return Arc::clone(found);
        }
        let mut map = self.map.write().expect("domain registry poisoned");
        if let Some(found) = map.get(&key) {
            return Arc::clone(found);
        }
        let id = DomainId(map.len() as u64 + 1);
        let interned = Arc::new(InternedDomain {
            id,
            fingerprint_term: avalanche(id.0),
            memo: DomainMemo::default(),
        });
        map.insert(key, Arc::clone(&interned));
        interned
    }

    fn len(&self) -> usize {
        self.map.read().expect("domain registry poisoned").len()
    }
}

fn registry() -> &'static DomainRegistry {
    static REGISTRY: OnceLock<DomainRegistry> = OnceLock::new();
    REGISTRY.get_or_init(DomainRegistry::default)
}

/// Interns `domain`, returning the shared record (called from
/// `ProtectionDomain::interned` under its `OnceLock`).
pub(crate) fn intern(domain: &ProtectionDomain) -> Arc<InternedDomain> {
    registry().intern(domain)
}

/// Number of distinct domains interned so far in this process.
pub fn interned_domain_count() -> usize {
    registry().len()
}

/// The identity of the domain *set* visible to a stack walk: an
/// order-insensitive 64-bit hash plus the number of distinct domains.
///
/// `unique == 0` means the walk saw no domains at all (an empty stack, i.e.
/// only runtime-internal code) — fully trusted, and never worth caching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContextFingerprint {
    /// Order-insensitive hash of the visible id-set.
    pub hash: u64,
    /// Number of distinct visible domains.
    pub unique: usize,
}

/// Incrementally folds the domains visible to a stack walk into a
/// deduplicated id-set plus an order-insensitive 64-bit fingerprint.
///
/// Duplicate ids are skipped (the decision ANDs over the *set* of visible
/// domains) and the combining operator is XOR over per-id avalanche terms,
/// so permutations of the same set always fingerprint identically. The
/// first 16 distinct ids live inline on the stack; deeper sets spill to a
/// heap vector.
#[derive(Debug)]
pub struct FingerprintBuilder {
    inline: [DomainId; 16],
    len: usize,
    spill: Vec<DomainId>,
    acc: u64,
}

impl Default for FingerprintBuilder {
    fn default() -> FingerprintBuilder {
        FingerprintBuilder::new()
    }
}

impl FingerprintBuilder {
    /// An empty builder.
    pub fn new() -> FingerprintBuilder {
        FingerprintBuilder {
            inline: [DomainId(0); 16],
            len: 0,
            spill: Vec::new(),
            acc: 0,
        }
    }

    fn contains(&self, id: DomainId) -> bool {
        self.inline[..self.len.min(16)].contains(&id) || self.spill.contains(&id)
    }

    /// Adds one visible domain; returns `true` if its id was not seen yet.
    pub fn add(&mut self, domain: &ProtectionDomain) -> bool {
        let interned = domain.interned();
        if self.contains(interned.id()) {
            return false;
        }
        if self.len < 16 {
            self.inline[self.len] = interned.id();
        } else {
            self.spill.push(interned.id());
        }
        self.len += 1;
        self.acc ^= interned.fingerprint_term();
        true
    }

    /// Number of distinct domains added. Zero means the walk saw only an
    /// empty stack — fully trusted, no cache entry needed.
    pub fn unique(&self) -> usize {
        self.len
    }

    /// The finished fingerprint: the XOR accumulator re-avalanched together
    /// with the set size, so `{a}` and `{a, b, c}` cannot collide merely by
    /// terms cancelling out.
    ///
    /// Uses the splitmix64 finalizer rather than a hash function: this runs
    /// on every warm access check (the per-term avalanche already paid the
    /// SipHash cost once, at intern time), and an arithmetic mix keeps the
    /// probe allocation- and hashing-free.
    pub fn finish(&self) -> u64 {
        let mut x = self
            .acc
            .wrapping_add((self.len as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// The finished fingerprint paired with the distinct-domain count.
    pub fn fingerprint(&self) -> ContextFingerprint {
        ContextFingerprint {
            hash: self.finish(),
            unique: self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permission::FileActions;

    fn domain(url: &str, perms: Vec<Permission>) -> ProtectionDomain {
        ProtectionDomain::new(CodeSource::local(url), perms.into_iter().collect())
    }

    #[test]
    fn equal_domains_intern_to_the_same_id() {
        let a = domain("file:/intern/a", vec![Permission::runtime("x")]);
        let b = domain("file:/intern/a", vec![Permission::runtime("x")]);
        assert_eq!(a.id(), b.id());
        // Clones share the already-resolved intern record.
        assert_eq!(a.clone().id(), a.id());
    }

    #[test]
    fn distinct_domains_get_distinct_ids() {
        let a = domain("file:/intern/b", vec![]);
        let by_url = domain("file:/intern/c", vec![]);
        let by_grants = domain("file:/intern/b", vec![Permission::runtime("x")]);
        assert_ne!(a.id(), by_url.id());
        assert_ne!(a.id(), by_grants.id());
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_deduplicating() {
        let a = domain("file:/intern/fp-a", vec![]);
        let b = domain("file:/intern/fp-b", vec![]);

        let mut ab = FingerprintBuilder::new();
        assert!(ab.add(&a));
        assert!(ab.add(&b));
        let mut ba = FingerprintBuilder::new();
        ba.add(&b);
        ba.add(&a);
        assert_eq!(ab.finish(), ba.finish());
        assert_eq!(ab.unique(), 2);

        // Duplicates neither change the fingerprint nor the unique count.
        let mut aab = FingerprintBuilder::new();
        aab.add(&a);
        assert!(!aab.add(&a));
        aab.add(&b);
        assert_eq!(aab.finish(), ab.finish());
        assert_eq!(aab.unique(), 2);
    }

    #[test]
    fn subset_fingerprints_do_not_alias() {
        let a = domain("file:/intern/sub-a", vec![]);
        let b = domain("file:/intern/sub-b", vec![]);
        let mut just_a = FingerprintBuilder::new();
        just_a.add(&a);
        let mut both = FingerprintBuilder::new();
        both.add(&a);
        both.add(&b);
        assert_ne!(just_a.finish(), both.finish());
    }

    #[test]
    fn builder_spills_past_inline_capacity() {
        let mut forward = FingerprintBuilder::new();
        let mut reverse = FingerprintBuilder::new();
        let domains: Vec<ProtectionDomain> = (0..40)
            .map(|i| domain(&format!("file:/intern/spill-{i}"), vec![]))
            .collect();
        for d in &domains {
            forward.add(d);
        }
        for d in domains.iter().rev() {
            reverse.add(d);
        }
        assert_eq!(forward.unique(), 40);
        assert_eq!(forward.finish(), reverse.finish());
        // Re-adding an inline-range and a spill-range id is still a dedup hit.
        assert!(!forward.add(&domains[0]));
        assert!(!forward.add(&domains[39]));
    }

    #[test]
    fn memo_is_shared_between_equal_domains() {
        let a = domain("file:/intern/memo", vec![Permission::runtime("memoTest")]);
        let b = domain("file:/intern/memo", vec![Permission::runtime("memoTest")]);
        let demand = Permission::runtime("memoTest");
        assert!(a.implies(&demand));
        assert_eq!(b.interned().memo().get(&demand), Some(true));
    }

    #[test]
    fn registry_count_is_monotone() {
        let before = interned_domain_count();
        let _ = domain("file:/intern/count-probe", vec![]).id();
        assert!(interned_domain_count() > before);
        let again = interned_domain_count();
        let _ = domain("file:/intern/count-probe", vec![]).id();
        assert_eq!(interned_domain_count(), again);
    }

    #[test]
    fn memo_respects_file_action_boundaries() {
        let d = domain(
            "file:/intern/actions",
            vec![Permission::file("/m/x", FileActions::READ)],
        );
        assert!(d.implies(&Permission::file("/m/x", FileActions::READ)));
        assert!(!d.implies(&Permission::file("/m/x", FileActions::WRITE)));
        // Both outcomes memoized independently.
        assert!(d.implies(&Permission::file("/m/x", FileActions::READ)));
        assert!(!d.implies(&Permission::file("/m/x", FileActions::WRITE)));
    }
}
