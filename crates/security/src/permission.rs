use std::fmt;

use serde::{Deserialize, Serialize};

/// Actions for a file permission, mirroring JDK 1.2 `FilePermission`.
///
/// The set is represented as individual booleans rather than a bitmask so the
/// `Debug` output stays self-describing in test failures.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct FileActions {
    /// May read the file's contents or list the directory.
    pub read: bool,
    /// May write / create the file.
    pub write: bool,
    /// May execute the file as a program.
    pub execute: bool,
    /// May delete the file.
    pub delete: bool,
}

impl FileActions {
    /// Read-only action set.
    pub const READ: FileActions = FileActions {
        read: true,
        write: false,
        execute: false,
        delete: false,
    };
    /// Write-only action set.
    pub const WRITE: FileActions = FileActions {
        read: false,
        write: true,
        execute: false,
        delete: false,
    };
    /// Execute-only action set.
    pub const EXECUTE: FileActions = FileActions {
        read: false,
        write: false,
        execute: true,
        delete: false,
    };
    /// Delete-only action set.
    pub const DELETE: FileActions = FileActions {
        read: false,
        write: false,
        execute: false,
        delete: true,
    };
    /// All file actions.
    pub const ALL: FileActions = FileActions {
        read: true,
        write: true,
        execute: true,
        delete: true,
    };

    /// Parses a comma-separated action list, e.g. `"read,write"`.
    ///
    /// # Errors
    ///
    /// Returns the offending token if an action name is not one of
    /// `read`, `write`, `execute`, `delete`.
    pub fn parse(actions: &str) -> Result<FileActions, String> {
        let mut out = FileActions::default();
        for tok in actions.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match tok {
                "read" => out.read = true,
                "write" => out.write = true,
                "execute" => out.execute = true,
                "delete" => out.delete = true,
                other => return Err(other.to_string()),
            }
        }
        Ok(out)
    }

    /// Returns `true` if `self` includes every action in `other`.
    pub fn contains(self, other: FileActions) -> bool {
        (!other.read || self.read)
            && (!other.write || self.write)
            && (!other.execute || self.execute)
            && (!other.delete || self.delete)
    }

    /// Returns the union of two action sets.
    pub fn union(self, other: FileActions) -> FileActions {
        FileActions {
            read: self.read || other.read,
            write: self.write || other.write,
            execute: self.execute || other.execute,
            delete: self.delete || other.delete,
        }
    }
}

impl fmt::Display for FileActions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        if self.read {
            names.push("read");
        }
        if self.write {
            names.push("write");
        }
        if self.execute {
            names.push("execute");
        }
        if self.delete {
            names.push("delete");
        }
        write!(f, "{}", names.join(","))
    }
}

/// Actions for a socket permission, mirroring JDK 1.2 `SocketPermission`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct SocketActions {
    /// May open a connection to the host.
    pub connect: bool,
    /// May accept connections from the host.
    pub accept: bool,
    /// May listen on the port.
    pub listen: bool,
    /// May resolve the host name.
    pub resolve: bool,
}

impl SocketActions {
    /// Connect (+resolve, which connect implies in the JDK) action set.
    pub const CONNECT: SocketActions = SocketActions {
        connect: true,
        accept: false,
        listen: false,
        resolve: true,
    };
    /// Accept (+resolve) action set.
    pub const ACCEPT: SocketActions = SocketActions {
        connect: false,
        accept: true,
        listen: false,
        resolve: true,
    };
    /// Listen action set.
    pub const LISTEN: SocketActions = SocketActions {
        connect: false,
        accept: false,
        listen: true,
        resolve: false,
    };
    /// All socket actions.
    pub const ALL: SocketActions = SocketActions {
        connect: true,
        accept: true,
        listen: true,
        resolve: true,
    };

    /// Parses a comma-separated action list, e.g. `"connect,accept"`.
    ///
    /// # Errors
    ///
    /// Returns the offending token if an action name is unknown.
    pub fn parse(actions: &str) -> Result<SocketActions, String> {
        let mut out = SocketActions::default();
        for tok in actions.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match tok {
                "connect" => {
                    out.connect = true;
                    out.resolve = true;
                }
                "accept" => {
                    out.accept = true;
                    out.resolve = true;
                }
                "listen" => out.listen = true,
                "resolve" => out.resolve = true,
                other => return Err(other.to_string()),
            }
        }
        Ok(out)
    }

    /// Returns `true` if `self` includes every action in `other`.
    pub fn contains(self, other: SocketActions) -> bool {
        (!other.connect || self.connect)
            && (!other.accept || self.accept)
            && (!other.listen || self.listen)
            && (!other.resolve || self.resolve)
    }
}

impl fmt::Display for SocketActions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        if self.connect {
            names.push("connect");
        }
        if self.accept {
            names.push("accept");
        }
        if self.listen {
            names.push("listen");
        }
        if self.resolve {
            names.push("resolve");
        }
        write!(f, "{}", names.join(","))
    }
}

/// Actions for a property permission (`read` = `getProperty`,
/// `write` = `setProperty`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct PropertyActions {
    /// May read the property.
    pub read: bool,
    /// May write the property.
    pub write: bool,
}

impl PropertyActions {
    /// Read-only property access.
    pub const READ: PropertyActions = PropertyActions {
        read: true,
        write: false,
    };
    /// Write-only property access.
    pub const WRITE: PropertyActions = PropertyActions {
        read: false,
        write: true,
    };
    /// Read and write property access.
    pub const ALL: PropertyActions = PropertyActions {
        read: true,
        write: true,
    };

    /// Parses a comma-separated action list, e.g. `"read,write"`.
    ///
    /// # Errors
    ///
    /// Returns the offending token if an action name is unknown.
    pub fn parse(actions: &str) -> Result<PropertyActions, String> {
        let mut out = PropertyActions::default();
        for tok in actions.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match tok {
                "read" => out.read = true,
                "write" => out.write = true,
                other => return Err(other.to_string()),
            }
        }
        Ok(out)
    }

    /// Returns `true` if `self` includes every action in `other`.
    pub fn contains(self, other: PropertyActions) -> bool {
        (!other.read || self.read) && (!other.write || self.write)
    }
}

impl fmt::Display for PropertyActions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.read, self.write) {
            (true, true) => write!(f, "read,write"),
            (true, false) => write!(f, "read"),
            (false, true) => write!(f, "write"),
            (false, false) => Ok(()),
        }
    }
}

/// A typed permission, the unit of the JDK 1.2-style policy.
///
/// Permissions form a lattice under [`Permission::implies`]; a policy grants a
/// *collection* of permissions to a code source or (new in the paper, §5.3)
/// to a user, and a demanded permission is satisfied if any granted permission
/// implies it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Permission {
    /// `AllPermission`: implies every other permission.
    All,
    /// `FilePermission`: a path pattern plus file actions.
    ///
    /// Path patterns follow the JDK:
    /// * `/a/b` — exactly that path,
    /// * `/a/*` — all entries directly inside `/a`,
    /// * `/a/-` — everything under `/a`, recursively,
    /// * `<<ALL FILES>>` — every path.
    File {
        /// Path pattern.
        path: String,
        /// Granted actions.
        actions: FileActions,
    },
    /// `SocketPermission`: a host pattern (optionally `host:port`, host may be
    /// `*` or `*.domain`) plus socket actions.
    Socket {
        /// Host pattern, optionally with `:port`.
        host: String,
        /// Granted actions.
        actions: SocketActions,
    },
    /// `RuntimePermission`: a named runtime target, e.g. `exitVM`,
    /// `setUser`, `modifyThread`, `modifyThreadGroup`, `setSecurityManager`,
    /// `createClassLoader`, `accessDeclaredMembers`, `setIO`, `stopApplication`.
    /// A trailing `*` in the grant acts as a prefix wildcard.
    Runtime(String),
    /// `PropertyPermission`: a key pattern (`a.b.*` suffix wildcard allowed)
    /// plus read/write actions.
    Property {
        /// Property-key pattern.
        key: String,
        /// Granted actions.
        actions: PropertyActions,
    },
    /// `AWTPermission`: a named windowing target, e.g. `showWindow`,
    /// `accessEventQueue`, `readDisplay`, `injectEvents`.
    Awt(String),
    /// The paper's new `UserPermission` (§5.3). The canonical target is
    /// `exerciseUserPermissions`: code holding it may additionally exercise
    /// the permissions the policy grants to the *running user*.
    User(String),
    /// `ResourcePermission`: a named resource-governance target. The
    /// canonical operational target is `setLimits` (may change another
    /// application's quotas); grants of the form `limit.<resource>:<value>`
    /// (e.g. `limit.threads:256`) in a `grant user` block carry per-user
    /// quota overrides applied at application spawn.
    Resource(String),
}

impl Permission {
    /// Constructs a file permission.
    pub fn file(path: impl Into<String>, actions: FileActions) -> Permission {
        Permission::File {
            path: path.into(),
            actions,
        }
    }

    /// Constructs a socket permission.
    pub fn socket(host: impl Into<String>, actions: SocketActions) -> Permission {
        Permission::Socket {
            host: host.into(),
            actions,
        }
    }

    /// Constructs a runtime permission.
    pub fn runtime(target: impl Into<String>) -> Permission {
        Permission::Runtime(target.into())
    }

    /// Constructs a property permission.
    pub fn property(key: impl Into<String>, actions: PropertyActions) -> Permission {
        Permission::Property {
            key: key.into(),
            actions,
        }
    }

    /// Constructs an AWT permission.
    pub fn awt(target: impl Into<String>) -> Permission {
        Permission::Awt(target.into())
    }

    /// Constructs a user permission. [`Permission::EXERCISE_USER`] is the
    /// canonical target from the paper.
    pub fn user(target: impl Into<String>) -> Permission {
        Permission::User(target.into())
    }

    /// Constructs a resource permission. [`Permission::SET_LIMITS`] is the
    /// canonical operational target.
    pub fn resource(target: impl Into<String>) -> Permission {
        Permission::Resource(target.into())
    }

    /// The canonical user-permission target (paper §5.3): grants code the
    /// right to exercise the permissions of the user running it.
    pub const EXERCISE_USER: &'static str = "exerciseUserPermissions";

    /// The canonical resource-permission target: may change another
    /// application's resource quotas.
    pub const SET_LIMITS: &'static str = "setLimits";

    /// Shorthand for `Permission::User("exerciseUserPermissions")`.
    pub fn exercise_user_permissions() -> Permission {
        Permission::User(Permission::EXERCISE_USER.to_string())
    }

    /// The `implies` relation: does holding `self` satisfy a demand for
    /// `other`?
    ///
    /// `All` implies everything; otherwise the permissions must be of the
    /// same kind, the name/path/host pattern of `self` must cover `other`'s,
    /// and `self`'s actions must be a superset of `other`'s.
    pub fn implies(&self, other: &Permission) -> bool {
        match (self, other) {
            (Permission::All, _) => true,
            (
                Permission::File { path, actions },
                Permission::File {
                    path: opath,
                    actions: oactions,
                },
            ) => actions.contains(*oactions) && path_pattern_implies(path, opath),
            (
                Permission::Socket { host, actions },
                Permission::Socket {
                    host: ohost,
                    actions: oactions,
                },
            ) => actions.contains(*oactions) && host_pattern_implies(host, ohost),
            (Permission::Runtime(target), Permission::Runtime(otarget)) => {
                name_pattern_implies(target, otarget)
            }
            (
                Permission::Property { key, actions },
                Permission::Property {
                    key: okey,
                    actions: oactions,
                },
            ) => actions.contains(*oactions) && name_pattern_implies(key, okey),
            (Permission::Awt(target), Permission::Awt(otarget)) => {
                name_pattern_implies(target, otarget)
            }
            (Permission::User(target), Permission::User(otarget)) => {
                name_pattern_implies(target, otarget)
            }
            (Permission::Resource(target), Permission::Resource(otarget)) => {
                name_pattern_implies(target, otarget)
            }
            _ => false,
        }
    }
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Permission::All => write!(f, "permission all"),
            Permission::File { path, actions } => {
                write!(f, "permission file \"{path}\" \"{actions}\"")
            }
            Permission::Socket { host, actions } => {
                write!(f, "permission socket \"{host}\" \"{actions}\"")
            }
            Permission::Runtime(target) => write!(f, "permission runtime \"{target}\""),
            Permission::Property { key, actions } => {
                write!(f, "permission property \"{key}\" \"{actions}\"")
            }
            Permission::Awt(target) => write!(f, "permission awt \"{target}\""),
            Permission::User(target) => write!(f, "permission user \"{target}\""),
            Permission::Resource(target) => write!(f, "permission resource \"{target}\""),
        }
    }
}

/// JDK `FilePermission` path-pattern matching.
///
/// The *demanded* side (`demand`) is always a concrete path or itself a
/// pattern that must be entirely covered: a grant of `/a/-` covers a demand
/// for `/a/b/*`, but a grant of `/a/*` does not cover a demand for `/a/-`.
pub(crate) fn path_pattern_implies(grant: &str, demand: &str) -> bool {
    if grant == "<<ALL FILES>>" {
        return true;
    }
    if demand == "<<ALL FILES>>" {
        return false;
    }
    if let Some(dir) = grant.strip_suffix("/-") {
        // Recursive: demand must live strictly under `dir` (any depth), or be
        // a pattern rooted under it.
        let demand_base = demand
            .strip_suffix("/-")
            .or_else(|| demand.strip_suffix("/*"))
            .unwrap_or(demand);
        return demand_base.starts_with(dir)
            && demand_base.len() > dir.len()
            && demand_base.as_bytes()[dir.len()] == b'/';
    }
    if let Some(dir) = grant.strip_suffix("/*") {
        if demand.ends_with("/-") {
            return false;
        }
        let demand_base = demand.strip_suffix("/*").unwrap_or(demand);
        if demand.ends_with("/*") {
            // `/a/*` covers `/a/*` only.
            return demand_base == dir;
        }
        // Direct child only: one extra non-empty component, no further '/'.
        return match demand_base.strip_prefix(dir) {
            Some(rest) => rest.len() > 1 && rest.starts_with('/') && !rest[1..].contains('/'),
            None => false,
        };
    }
    // Exact grant covers exact demand only.
    grant == demand
}

/// `SocketPermission` host matching: `host[:port]`, host may be `*` or
/// `*.suffix`; a grant without a port covers any port.
pub(crate) fn host_pattern_implies(grant: &str, demand: &str) -> bool {
    let (ghost, gport) = split_host_port(grant);
    let (dhost, dport) = split_host_port(demand);
    let host_ok = if ghost == "*" {
        true
    } else if let Some(suffix) = ghost.strip_prefix("*.") {
        dhost == suffix || dhost.ends_with(&format!(".{suffix}"))
    } else {
        ghost == dhost
    };
    let port_ok = match (gport, dport) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(g), Some(d)) => g == d,
    };
    host_ok && port_ok
}

fn split_host_port(spec: &str) -> (&str, Option<&str>) {
    match spec.rsplit_once(':') {
        Some((host, port)) if !port.is_empty() && port.chars().all(|c| c.is_ascii_digit()) => {
            (host, Some(port))
        }
        _ => (spec, None),
    }
}

/// Dotted-name matching for runtime/property/awt/user targets: a grant of
/// `*` covers everything; a grant ending in `.*` or `*` is a prefix wildcard.
pub(crate) fn name_pattern_implies(grant: &str, demand: &str) -> bool {
    if grant == "*" {
        return true;
    }
    if let Some(prefix) = grant.strip_suffix(".*") {
        return demand == prefix
            || (demand.starts_with(prefix) && demand.as_bytes().get(prefix.len()) == Some(&b'.'));
    }
    if let Some(prefix) = grant.strip_suffix('*') {
        return demand.starts_with(prefix);
    }
    grant == demand
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(path: &str, actions: FileActions) -> Permission {
        Permission::file(path, actions)
    }

    #[test]
    fn all_implies_everything() {
        let all = Permission::All;
        assert!(all.implies(&fp("/etc/passwd", FileActions::ALL)));
        assert!(all.implies(&Permission::runtime("exitVM")));
        assert!(all.implies(&Permission::socket(
            "example.com:80",
            SocketActions::CONNECT
        )));
        assert!(all.implies(&Permission::All));
    }

    #[test]
    fn nothing_but_all_implies_all() {
        assert!(!fp("<<ALL FILES>>", FileActions::ALL).implies(&Permission::All));
        assert!(!Permission::runtime("*").implies(&Permission::All));
    }

    #[test]
    fn file_exact_match() {
        let grant = fp("/home/alice/notes.txt", FileActions::READ);
        assert!(grant.implies(&fp("/home/alice/notes.txt", FileActions::READ)));
        assert!(!grant.implies(&fp("/home/alice/notes.txt", FileActions::WRITE)));
        assert!(!grant.implies(&fp("/home/alice/other.txt", FileActions::READ)));
    }

    #[test]
    fn file_star_matches_direct_children_only() {
        let grant = fp("/home/alice/*", FileActions::READ);
        assert!(grant.implies(&fp("/home/alice/notes.txt", FileActions::READ)));
        assert!(!grant.implies(&fp("/home/alice", FileActions::READ)));
        assert!(!grant.implies(&fp("/home/alice/sub/deep.txt", FileActions::READ)));
        assert!(!grant.implies(&fp("/home/bob/notes.txt", FileActions::READ)));
        assert!(grant.implies(&fp("/home/alice/*", FileActions::READ)));
        assert!(!grant.implies(&fp("/home/alice/-", FileActions::READ)));
    }

    #[test]
    fn file_dash_matches_recursively() {
        let grant = fp("/home/alice/-", FileActions::ALL);
        assert!(grant.implies(&fp("/home/alice/notes.txt", FileActions::READ)));
        assert!(grant.implies(&fp("/home/alice/sub/deep.txt", FileActions::ALL)));
        assert!(grant.implies(&fp("/home/alice/sub/-", FileActions::ALL)));
        assert!(grant.implies(&fp("/home/alice/sub/*", FileActions::ALL)));
        assert!(!grant.implies(&fp("/home/alice", FileActions::READ)));
        assert!(!grant.implies(&fp("/home/aliceother/x", FileActions::READ)));
        assert!(!grant.implies(&fp("/home/bob/notes.txt", FileActions::READ)));
    }

    #[test]
    fn all_files_token() {
        let grant = fp("<<ALL FILES>>", FileActions::READ);
        assert!(grant.implies(&fp("/anything/at/all", FileActions::READ)));
        assert!(!grant.implies(&fp("/anything", FileActions::WRITE)));
        assert!(!fp("/a/-", FileActions::ALL).implies(&fp("<<ALL FILES>>", FileActions::READ)));
    }

    #[test]
    fn file_actions_parse_and_display_roundtrip() {
        let actions = FileActions::parse("read, write,delete").unwrap();
        assert!(actions.read && actions.write && actions.delete && !actions.execute);
        assert_eq!(actions.to_string(), "read,write,delete");
        assert!(FileActions::parse("chmod").is_err());
    }

    #[test]
    fn socket_host_patterns() {
        let any = Permission::socket("*", SocketActions::CONNECT);
        assert!(any.implies(&Permission::socket(
            "example.com:80",
            SocketActions::CONNECT
        )));

        let domain = Permission::socket("*.example.com", SocketActions::CONNECT);
        assert!(domain.implies(&Permission::socket(
            "www.example.com",
            SocketActions::CONNECT
        )));
        assert!(domain.implies(&Permission::socket("example.com", SocketActions::CONNECT)));
        assert!(!domain.implies(&Permission::socket("evil.com", SocketActions::CONNECT)));
        assert!(
            !domain.implies(&Permission::socket(
                "notexample.com",
                SocketActions::CONNECT
            )),
            "suffix must match at a dot boundary"
        );

        let with_port = Permission::socket("host:80", SocketActions::CONNECT);
        assert!(with_port.implies(&Permission::socket("host:80", SocketActions::CONNECT)));
        assert!(!with_port.implies(&Permission::socket("host:81", SocketActions::CONNECT)));
        assert!(!with_port.implies(&Permission::socket("host", SocketActions::CONNECT)));

        let no_port = Permission::socket("host", SocketActions::CONNECT);
        assert!(no_port.implies(&Permission::socket("host:9999", SocketActions::CONNECT)));
    }

    #[test]
    fn socket_connect_implies_resolve() {
        let actions = SocketActions::parse("connect").unwrap();
        assert!(actions.resolve, "connect implies resolve as in the JDK");
        let grant = Permission::socket("h", actions);
        assert!(grant.implies(&Permission::socket(
            "h",
            SocketActions {
                resolve: true,
                ..SocketActions::default()
            }
        )));
    }

    #[test]
    fn socket_actions_must_be_superset() {
        let connect_only = Permission::socket("h", SocketActions::CONNECT);
        assert!(!connect_only.implies(&Permission::socket("h", SocketActions::ACCEPT)));
        assert!(!connect_only.implies(&Permission::socket("h", SocketActions::ALL)));
    }

    #[test]
    fn runtime_name_wildcards() {
        assert!(Permission::runtime("*").implies(&Permission::runtime("exitVM")));
        assert!(
            Permission::runtime("modifyThread*").implies(&Permission::runtime("modifyThreadGroup"))
        );
        assert!(!Permission::runtime("exitVM").implies(&Permission::runtime("setUser")));
        assert!(!Permission::runtime("exitVM").implies(&Permission::awt("exitVM")));
    }

    #[test]
    fn property_dotted_wildcards() {
        let grant = Permission::property("os.*", PropertyActions::READ);
        assert!(grant.implies(&Permission::property("os.name", PropertyActions::READ)));
        assert!(grant.implies(&Permission::property("os", PropertyActions::READ)));
        assert!(
            !grant.implies(&Permission::property("osname", PropertyActions::READ)),
            "dotted wildcard must not match mid-component"
        );
        assert!(!grant.implies(&Permission::property("os.name", PropertyActions::WRITE)));
    }

    #[test]
    fn user_permission_target() {
        let grant = Permission::exercise_user_permissions();
        assert!(grant.implies(&Permission::user(Permission::EXERCISE_USER)));
        assert!(!grant.implies(&Permission::user("somethingElse")));
        assert!(!grant.implies(&Permission::runtime(Permission::EXERCISE_USER)));
    }

    #[test]
    fn display_roundtrips_kind_and_target() {
        let p = Permission::file("/a/b", FileActions::READ);
        assert_eq!(p.to_string(), "permission file \"/a/b\" \"read\"");
        let p = Permission::runtime("setUser");
        assert_eq!(p.to_string(), "permission runtime \"setUser\"");
    }

    #[test]
    fn implies_is_reflexive_for_concrete_permissions() {
        let perms = vec![
            Permission::All,
            fp("/a/b", FileActions::READ),
            Permission::socket("h:80", SocketActions::CONNECT),
            Permission::runtime("exitVM"),
            Permission::property("os.name", PropertyActions::READ),
            Permission::awt("showWindow"),
            Permission::user(Permission::EXERCISE_USER),
            Permission::resource(Permission::SET_LIMITS),
        ];
        for p in &perms {
            assert!(p.implies(p), "{p} should imply itself");
        }
    }

    #[test]
    fn resource_permission_targets() {
        let grant = Permission::resource(Permission::SET_LIMITS);
        assert!(grant.implies(&Permission::resource("setLimits")));
        assert!(!grant.implies(&Permission::resource("limit.threads:10")));
        assert!(!grant.implies(&Permission::runtime("setLimits")));
        let wildcard = Permission::resource("limit.*");
        assert!(wildcard.implies(&Permission::resource("limit.threads:10")));
        assert!(!wildcard.implies(&Permission::resource("setLimits")));
    }
}
