//! The lazy per-user grant store.
//!
//! The resident [`Policy`](crate::Policy) keeps every grant of its policy
//! text in memory, which is right for the handful of hand-written grants a
//! desktop carries — and wrong for a deployment provisioning a million
//! users, where "parse the policy" must not mean "intern a million grant
//! blocks". [`LazyUserStore`] splits that: user grants live behind a
//! [`GrantSource`] (a vfs directory of per-user policy files, a synthetic
//! template, anything), and a user's permissions are loaded, parsed, and
//! indexed **on first demand**, then cached in a bounded sharded map.
//!
//! Invalidation is epoch-based, mirroring the VM decision cache: every
//! cached entry records the store epoch it was loaded under, and
//! [`LazyUserStore::invalidate`] (called on `set_policy`) bumps the epoch,
//! killing every cached user at once. The epoch is captured **before** the
//! source is consulted, so a reload racing an in-flight load can never
//! resurrect pre-reload grants. Negative results are cached too — a user
//! with no provisioned grants costs one source probe, not one per check.
//!
//! A full shard is cleared rather than evicted entry-by-entry (grants are
//! cheap to re-load and re-loading is exact), so resident entries stay
//! bounded at `SHARDS * shard_cap` no matter how many users are
//! provisioned.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::index::PermissionIndex;
use crate::permission::Permission;
use crate::policy::Policy;

/// Shard count; a power of two.
const SHARDS: usize = 16;

/// Default per-shard entry cap; see the module docs for the overflow rule.
const DEFAULT_SHARD_CAP: usize = 4096;

/// Where per-user grants come from. Implementations are expected to be
/// cheap to probe for absent users and tolerant of concurrent reads; the
/// store never writes.
pub trait GrantSource: Send + Sync {
    /// Returns the policy text holding `user`'s grants (any text accepted
    /// by [`Policy::parse`]; only its `grant user "<user>" { ... }` blocks
    /// are used), or `None` if the user has no provisioned grants.
    fn load_user(&self, user: &str) -> Option<String>;

    /// Number of users this source provisions grants for, if known. Used
    /// for reporting (resident vs provisioned), never for correctness.
    fn provisioned_users(&self) -> Option<u64> {
        None
    }
}

/// The loaded, indexed grants of one user.
pub struct UserGrants {
    permissions: Vec<Permission>,
    index: PermissionIndex,
}

impl UserGrants {
    fn build(permissions: Vec<Permission>) -> UserGrants {
        let index = PermissionIndex::build(permissions.iter());
        UserGrants { permissions, index }
    }

    /// Returns `true` if one of the user's stored grants implies `demand`.
    pub fn implies(&self, demand: &Permission) -> bool {
        self.index.implies(demand)
    }

    /// The stored permissions, in declaration order.
    pub fn permissions(&self) -> &[Permission] {
        &self.permissions
    }

    /// `true` when the user has no stored grants (a cached negative).
    pub fn is_empty(&self) -> bool {
        self.permissions.is_empty()
    }
}

impl fmt::Debug for UserGrants {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UserGrants")
            .field("permissions", &self.permissions.len())
            .finish()
    }
}

struct CachedUser {
    epoch: u64,
    grants: Arc<UserGrants>,
}

type Shard = HashMap<String, CachedUser>;

/// A bounded, sharded, epoch-invalidated cache of per-user grants over a
/// [`GrantSource`]. See the module docs for the protocol.
pub struct LazyUserStore {
    source: Arc<dyn GrantSource>,
    epoch: AtomicU64,
    shards: [RwLock<Shard>; SHARDS],
    shard_cap: usize,
    /// Completed source loads (including negative probes), for tests and
    /// the E19 report.
    loads: AtomicU64,
    hasher: RandomState,
}

impl LazyUserStore {
    /// Creates a store over `source` with the default per-shard cap.
    pub fn new(source: Arc<dyn GrantSource>) -> LazyUserStore {
        LazyUserStore::with_shard_cap(source, DEFAULT_SHARD_CAP)
    }

    /// Creates a store with an explicit per-shard entry cap (tests and
    /// memory-tight deployments).
    pub fn with_shard_cap(source: Arc<dyn GrantSource>, shard_cap: usize) -> LazyUserStore {
        LazyUserStore {
            source,
            epoch: AtomicU64::new(0),
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            shard_cap: shard_cap.max(1),
            loads: AtomicU64::new(0),
            hasher: RandomState::new(),
        }
    }

    /// The current store epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Bumps the epoch, logically discarding every cached user. Called by
    /// the VM on `set_policy` so a policy reload re-reads the source.
    pub fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Users currently resident in the cache (stale entries included until
    /// their shard overflows or they are re-loaded).
    pub fn resident_users(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().len()).sum()
    }

    /// Completed source loads, negative probes included.
    pub fn loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Users the underlying source provisions, if it knows.
    pub fn provisioned_users(&self) -> Option<u64> {
        self.source.provisioned_users()
    }

    fn shard(&self, user: &str) -> &RwLock<Shard> {
        &self.shards[(self.hasher.hash_one(user) as usize) & (SHARDS - 1)]
    }

    /// The grants of `user`, loading and interning them on first demand.
    /// Returns a cached negative (empty) entry for users the source does
    /// not provision, so absent users cost one probe, not one per check.
    pub fn lookup(&self, user: &str) -> Arc<UserGrants> {
        let shard = self.shard(user);
        // Capture the epoch *before* touching the cache or the source: an
        // invalidate racing this load then makes the inserted entry stale,
        // and a stale entry can never serve a future lookup.
        let epoch = self.epoch();
        {
            let guard = shard.read();
            if let Some(entry) = guard.get(user) {
                if entry.epoch == epoch {
                    return Arc::clone(&entry.grants);
                }
            }
        }
        // Load outside any lock — the source may read the vfs.
        let permissions = self
            .source
            .load_user(user)
            .and_then(|text| Policy::parse(&text).ok())
            .map(|policy| {
                policy
                    .permissions_for_user(user)
                    .iter()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default();
        self.loads.fetch_add(1, Ordering::Relaxed);
        let grants = Arc::new(UserGrants::build(permissions));
        let mut guard = shard.write();
        if guard.len() >= self.shard_cap && !guard.contains_key(user) {
            guard.clear();
        }
        guard.insert(
            user.to_string(),
            CachedUser {
                epoch,
                grants: Arc::clone(&grants),
            },
        );
        grants
    }
}

impl fmt::Debug for LazyUserStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LazyUserStore")
            .field("epoch", &self.epoch())
            .field("resident_users", &self.resident_users())
            .field("loads", &self.loads())
            .finish_non_exhaustive()
    }
}

/// A synthetic [`GrantSource`] provisioning `count` users named
/// `<prefix>0 .. <prefix>{count-1}`, each receiving `template` with every
/// `${user}` replaced by the user's name. This is how an experiment
/// provisions a million users in O(1) memory: the users exist as a rule,
/// not as a million resident grant objects.
pub struct TemplateGrantSource {
    prefix: String,
    count: u64,
    template: String,
}

impl TemplateGrantSource {
    /// Creates a template source; see the type docs for the naming rule.
    pub fn new(
        prefix: impl Into<String>,
        count: u64,
        template: impl Into<String>,
    ) -> TemplateGrantSource {
        TemplateGrantSource {
            prefix: prefix.into(),
            count,
            template: template.into(),
        }
    }
}

impl GrantSource for TemplateGrantSource {
    fn load_user(&self, user: &str) -> Option<String> {
        let index: u64 = user.strip_prefix(&self.prefix)?.parse().ok()?;
        if index >= self.count {
            return None;
        }
        Some(self.template.replace("${user}", user))
    }

    fn provisioned_users(&self) -> Option<u64> {
        Some(self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permission::FileActions;

    fn template_store(count: u64) -> LazyUserStore {
        LazyUserStore::new(Arc::new(TemplateGrantSource::new(
            "u",
            count,
            r#"grant user "${user}" { permission file "/home/${user}/-" "read,write"; };"#,
        )))
    }

    #[test]
    fn grants_load_on_first_demand_and_cache() {
        let store = template_store(1_000_000);
        assert_eq!(store.provisioned_users(), Some(1_000_000));
        assert_eq!(store.resident_users(), 0, "nothing resident up front");
        let demand = Permission::file("/home/u42/notes", FileActions::READ);
        let grants = store.lookup("u42");
        assert!(grants.implies(&demand));
        assert!(!grants.implies(&Permission::file("/home/u43/notes", FileActions::READ)));
        assert_eq!(store.loads(), 1);
        // Warm lookups do not touch the source again.
        assert!(store.lookup("u42").implies(&demand));
        assert_eq!(store.loads(), 1);
        assert_eq!(store.resident_users(), 1);
    }

    #[test]
    fn absent_users_cache_a_negative() {
        let store = template_store(10);
        assert!(store.lookup("u99").is_empty());
        assert!(store.lookup("eve").is_empty());
        assert_eq!(store.loads(), 2);
        // Re-probing the same absent users is served from the cache.
        assert!(store.lookup("u99").is_empty());
        assert!(store.lookup("eve").is_empty());
        assert_eq!(store.loads(), 2);
    }

    #[test]
    fn invalidate_forces_a_reload() {
        let store = template_store(10);
        let demand = Permission::file("/home/u3/x", FileActions::WRITE);
        assert!(store.lookup("u3").implies(&demand));
        assert_eq!(store.loads(), 1);
        store.invalidate();
        assert!(store.lookup("u3").implies(&demand), "reload is identical");
        assert_eq!(store.loads(), 2, "the stale entry was not served");
    }

    #[test]
    fn invalidate_racing_a_load_kills_the_inflight_entry() {
        // Simulated race: capture-epoch → invalidate → insert. The insert
        // lands with the stale epoch and must not serve.
        struct Counting {
            inner: TemplateGrantSource,
            calls: AtomicU64,
        }
        impl GrantSource for Counting {
            fn load_user(&self, user: &str) -> Option<String> {
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.inner.load_user(user)
            }
        }
        let source = Arc::new(Counting {
            inner: TemplateGrantSource::new("u", 10, r#"grant user "${user}" { };"#),
            calls: AtomicU64::new(0),
        });
        let store = LazyUserStore::new(Arc::clone(&source) as Arc<dyn GrantSource>);
        store.lookup("u1");
        store.invalidate();
        // The entry inserted before the invalidate is stale: this lookup
        // must go back to the source.
        store.lookup("u1");
        assert_eq!(source.calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn overflowing_a_shard_clears_it_and_reloads_identically() {
        let source = Arc::new(TemplateGrantSource::new(
            "u",
            100_000,
            r#"grant user "${user}" { permission file "/home/${user}/-" "read"; };"#,
        ));
        let store = LazyUserStore::with_shard_cap(source, 4);
        let demand = Permission::file("/home/u0/f", FileActions::READ);
        assert!(store.lookup("u0").implies(&demand));
        let first_loads = store.loads();
        // Push enough users through to overflow every shard.
        for i in 1..200 {
            store.lookup(&format!("u{i}"));
        }
        assert!(
            store.resident_users() <= SHARDS * 4,
            "resident entries stay bounded: {}",
            store.resident_users()
        );
        // u0 was (very likely) evicted; either way the re-load is exact.
        assert!(store.lookup("u0").implies(&demand));
        assert!(store.loads() > first_loads);
    }

    #[test]
    fn unparseable_source_text_reads_as_no_grants() {
        struct Broken;
        impl GrantSource for Broken {
            fn load_user(&self, _user: &str) -> Option<String> {
                Some("grant garbage {{{".to_string())
            }
        }
        let store = LazyUserStore::new(Arc::new(Broken));
        assert!(store.lookup("anyone").is_empty());
    }

    #[test]
    fn template_source_only_matches_its_namespace() {
        let source = TemplateGrantSource::new("user", 5, "x");
        assert!(source.load_user("user0").is_some());
        assert!(source.load_user("user4").is_some());
        assert!(source.load_user("user5").is_none());
        assert!(source.load_user("user-1").is_none());
        assert!(source.load_user("alice").is_none());
        assert!(source.load_user("userx").is_none());
    }
}
