use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use serde::{DeError, Deserialize, Serialize, Value};

use crate::code_source::CodeSource;
use crate::domain::PermissionCollection;
use crate::error::SecurityError;
use crate::index::PermissionIndex;
use crate::permission::{FileActions, Permission, PropertyActions, SocketActions};
use crate::store::LazyUserStore;
use crate::Result;

/// Whom a [`Grant`] applies to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrantTarget {
    /// Classic JDK 1.2 target: code matching a code-source pattern.
    Code(CodeSource),
    /// The paper's extension (§5.3): a *user*, by login name. The permissions
    /// in such a grant are exercised by code that holds
    /// `UserPermission("exerciseUserPermissions")` while that user is the
    /// running user.
    User(String),
}

impl fmt::Display for GrantTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrantTarget::Code(cs) => write!(f, "{cs}"),
            GrantTarget::User(name) => write!(f, "user {name:?}"),
        }
    }
}

/// One `grant { ... }` block of a policy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grant {
    /// Whom the permissions are granted to.
    pub target: GrantTarget,
    /// The granted permissions.
    pub permissions: Vec<Permission>,
}

/// A security policy: the user-configurable mapping from code sources *and
/// users* to permissions (paper §3.3, §5.3).
///
/// Parsed from a textual syntax modeled on the JDK 1.2 policy file format:
///
/// ```text
/// // Local applications may exercise their running user's permissions.
/// grant codeBase "file:/apps/-" {
///     permission user "exerciseUserPermissions";
/// };
///
/// grant codeBase "file:/apps/backup" signedBy "ops" {
///     permission file "<<ALL FILES>>" "read";
/// };
///
/// grant user "alice" {
///     permission file "/home/alice/-" "read,write,delete";
/// };
/// ```
#[derive(Debug, Default)]
pub struct Policy {
    grants: Vec<Grant>,
    /// Lazily-built per-user grant index, a pure function of `grants`
    /// (excluded from `Clone`/`PartialEq`/serde); reset on mutation.
    user_index: OnceLock<HashMap<String, PermissionIndex>>,
    /// Optional lazy per-user grant store consulted when the resident
    /// grants do not answer a user query (see [`LazyUserStore`]). Carried
    /// by `Clone`, excluded from `PartialEq`/serde/`Display` — equality,
    /// wire form, and text render only the resident grants.
    user_store: Option<Arc<LazyUserStore>>,
}

impl Policy {
    /// Creates an empty policy (grants nothing to anyone).
    pub fn new() -> Policy {
        Policy::default()
    }

    fn from_grants(grants: Vec<Grant>) -> Policy {
        Policy {
            grants,
            user_index: OnceLock::new(),
            user_store: None,
        }
    }

    /// Parses policy text.
    ///
    /// # Errors
    ///
    /// Returns [`SecurityError::PolicyParse`] with a line number on any
    /// syntax error, unknown permission kind, or malformed action list.
    pub fn parse(text: &str) -> Result<Policy> {
        Parser::new(text).parse_policy()
    }

    /// Parses one permission entry in policy syntax — the inverse of
    /// [`Permission`]'s `Display`, e.g. `permission file "/tmp/x" "read"`
    /// (a trailing `;` is accepted). This is how the demand ledger's
    /// string-typed rows are turned back into typed permissions for
    /// inference.
    ///
    /// # Errors
    ///
    /// Returns [`SecurityError::PolicyParse`] on anything but exactly one
    /// well-formed entry.
    pub fn parse_permission_entry(text: &str) -> Result<Permission> {
        let mut parser = Parser::new(text);
        parser.expect_word("permission")?;
        let permission = parser.parse_permission_body()?;
        if parser.peek() == Some(&Token::Semi) {
            parser.pos += 1;
        }
        if parser.peek().is_some() {
            return Err(parser.err("trailing input after permission entry"));
        }
        Ok(permission)
    }

    /// Adds a grant programmatically.
    pub fn add_grant(&mut self, grant: Grant) {
        self.grants.push(grant);
        self.user_index.take();
    }

    /// Convenience: grant `permissions` to code matching `source_pattern`.
    pub fn grant_code(&mut self, source: CodeSource, permissions: Vec<Permission>) {
        self.add_grant(Grant {
            target: GrantTarget::Code(source),
            permissions,
        });
    }

    /// Convenience: grant `permissions` to the user named `user`.
    pub fn grant_user(&mut self, user: impl Into<String>, permissions: Vec<Permission>) {
        self.add_grant(Grant {
            target: GrantTarget::User(user.into()),
            permissions,
        });
    }

    /// All grants, in declaration order.
    pub fn grants(&self) -> &[Grant] {
        &self.grants
    }

    /// Resolves the permissions for code from `source`, i.e. the union of
    /// all code grants whose pattern covers `source`.
    ///
    /// This is what a class loader calls at class-definition time to build
    /// the class's [`ProtectionDomain`](crate::ProtectionDomain).
    pub fn permissions_for(&self, source: &CodeSource) -> PermissionCollection {
        self.grants
            .iter()
            .filter_map(|g| match &g.target {
                GrantTarget::Code(pattern) if pattern.implies(source) => {
                    Some(g.permissions.iter().cloned())
                }
                _ => None,
            })
            .flatten()
            .collect()
    }

    /// Resolves the permissions granted to the user named `user`: the
    /// resident `grant user` blocks, plus (when a [`LazyUserStore`] is
    /// attached) whatever the store loads for the user on demand.
    pub fn permissions_for_user(&self, user: &str) -> PermissionCollection {
        let resident = self
            .grants
            .iter()
            .filter_map(|g| match &g.target {
                GrantTarget::User(name) if name == user => Some(g.permissions.iter().cloned()),
                _ => None,
            })
            .flatten();
        match &self.user_store {
            Some(store) => {
                let stored = store.lookup(user);
                resident
                    .chain(stored.permissions().iter().cloned())
                    .collect()
            }
            None => resident.collect(),
        }
    }

    /// Returns `true` if the policy grants `demand` to the user named `user`.
    ///
    /// Served from a lazily-built per-user [`PermissionIndex`] over the
    /// resident grants; when that does not answer and a [`LazyUserStore`]
    /// is attached, the user's stored grants are loaded (and interned) on
    /// this first demand and consulted too.
    pub fn user_implies(&self, user: &str, demand: &Permission) -> bool {
        if self
            .user_index()
            .get(user)
            .is_some_and(|index| index.implies(demand))
        {
            return true;
        }
        match &self.user_store {
            Some(store) => store.lookup(user).implies(demand),
            None => false,
        }
    }

    /// Attaches a lazy per-user grant store; see [`LazyUserStore`].
    #[must_use]
    pub fn with_user_store(mut self, store: Arc<LazyUserStore>) -> Policy {
        self.user_store = Some(store);
        self
    }

    /// The attached lazy grant store, if any.
    pub fn user_store(&self) -> Option<&Arc<LazyUserStore>> {
        self.user_store.as_ref()
    }

    /// Invalidates the attached store's cached user grants (no-op without a
    /// store). The VM calls this on `set_policy` so a reload re-reads the
    /// grant source instead of serving pre-reload interned grants.
    pub fn invalidate_user_store(&self) {
        if let Some(store) = &self.user_store {
            store.invalidate();
        }
    }

    fn user_index(&self) -> &HashMap<String, PermissionIndex> {
        self.user_index.get_or_init(|| {
            let mut by_user: HashMap<String, Vec<&Permission>> = HashMap::new();
            for grant in &self.grants {
                if let GrantTarget::User(name) = &grant.target {
                    by_user
                        .entry(name.clone())
                        .or_default()
                        .extend(grant.permissions.iter());
                }
            }
            by_user
                .into_iter()
                .map(|(user, perms)| (user, PermissionIndex::build(perms)))
                .collect()
        })
    }
}

impl Clone for Policy {
    fn clone(&self) -> Policy {
        let mut clone = Policy::from_grants(self.grants.clone());
        clone.user_store = self.user_store.clone();
        clone
    }
}

impl PartialEq for Policy {
    fn eq(&self, other: &Policy) -> bool {
        self.grants == other.grants
    }
}

impl Eq for Policy {}

impl Serialize for Policy {
    fn serialize_value(&self) -> Value {
        Value::Map(vec![("grants".to_string(), self.grants.serialize_value())])
    }
}

impl Deserialize for Policy {
    fn deserialize_value(value: &Value) -> std::result::Result<Policy, DeError> {
        let entries = value
            .as_map()
            .ok_or_else(|| DeError::custom("expected map for Policy"))?;
        Ok(Policy::from_grants(serde::field_from_map(
            entries, "grants",
        )?))
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for grant in &self.grants {
            writeln!(f, "grant {} {{", grant.target)?;
            for p in &grant.permissions {
                writeln!(f, "    {p};")?;
            }
            writeln!(f, "}};")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Word(String),
    Str(String),
    LBrace,
    RBrace,
    Semi,
}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn new(text: &str) -> Parser {
        Parser {
            tokens: tokenize(text),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> SecurityError {
        let line = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |(_, l)| *l);
        SecurityError::PolicyParse {
            line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let tok = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn expect_word(&mut self, word: &str) -> Result<()> {
        match self.next() {
            Some(Token::Word(w)) if w == word => Ok(()),
            other => Err(self.err(format!("expected `{word}`, found {other:?}"))),
        }
    }

    fn expect_string(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(self.err(format!("expected quoted {what}, found {other:?}"))),
        }
    }

    fn parse_policy(&mut self) -> Result<Policy> {
        let mut policy = Policy::new();
        while self.peek().is_some() {
            self.expect_word("grant")?;
            let target = self.parse_target()?;
            match self.next() {
                Some(Token::LBrace) => {}
                other => return Err(self.err(format!("expected `{{`, found {other:?}"))),
            }
            let mut permissions = Vec::new();
            loop {
                match self.peek() {
                    Some(Token::RBrace) => {
                        self.pos += 1;
                        break;
                    }
                    Some(Token::Word(w)) if w == "permission" => {
                        self.pos += 1;
                        permissions.push(self.parse_permission()?);
                    }
                    other => {
                        return Err(
                            self.err(format!("expected `permission` or `}}`, found {other:?}"))
                        )
                    }
                }
            }
            // Optional trailing semicolon after the block.
            if self.peek() == Some(&Token::Semi) {
                self.pos += 1;
            }
            policy.add_grant(Grant {
                target,
                permissions,
            });
        }
        Ok(policy)
    }

    fn parse_target(&mut self) -> Result<GrantTarget> {
        let mut code_base: Option<String> = None;
        let mut signed_by: Vec<String> = Vec::new();
        let mut user: Option<String> = None;
        loop {
            match self.peek() {
                Some(Token::Word(w)) if w == "codeBase" => {
                    self.pos += 1;
                    code_base = Some(self.expect_string("code base URL")?);
                }
                Some(Token::Word(w)) if w == "signedBy" => {
                    self.pos += 1;
                    let names = self.expect_string("signer list")?;
                    signed_by.extend(names.split(',').map(|s| s.trim().to_string()));
                }
                Some(Token::Word(w)) if w == "user" => {
                    self.pos += 1;
                    user = Some(self.expect_string("user name")?);
                }
                _ => break,
            }
        }
        match (user, code_base, signed_by) {
            (Some(name), None, sb) if sb.is_empty() => Ok(GrantTarget::User(name)),
            (Some(_), _, _) => {
                Err(self.err("`user` target cannot be combined with codeBase/signedBy"))
            }
            (None, cb, sb) => Ok(GrantTarget::Code(CodeSource::new(
                cb.unwrap_or_default(),
                sb,
            ))),
        }
    }

    fn parse_permission(&mut self) -> Result<Permission> {
        let permission = self.parse_permission_body()?;
        match self.next() {
            Some(Token::Semi) => Ok(permission),
            other => Err(self.err(format!("expected `;` after permission, found {other:?}"))),
        }
    }

    fn parse_permission_body(&mut self) -> Result<Permission> {
        let kind = match self.next() {
            Some(Token::Word(w)) => w,
            other => return Err(self.err(format!("expected permission kind, found {other:?}"))),
        };
        let permission = match kind.as_str() {
            "all" => Permission::All,
            "file" => {
                let path = self.expect_string("file path")?;
                let actions = self.expect_string("file actions")?;
                let actions = FileActions::parse(&actions)
                    .map_err(|bad| self.err(format!("unknown file action `{bad}`")))?;
                Permission::File { path, actions }
            }
            "socket" => {
                let host = self.expect_string("host")?;
                let actions = self.expect_string("socket actions")?;
                let actions = SocketActions::parse(&actions)
                    .map_err(|bad| self.err(format!("unknown socket action `{bad}`")))?;
                Permission::Socket { host, actions }
            }
            "runtime" => Permission::Runtime(self.expect_string("runtime target")?),
            "property" => {
                let key = self.expect_string("property key")?;
                let actions = self.expect_string("property actions")?;
                let actions = PropertyActions::parse(&actions)
                    .map_err(|bad| self.err(format!("unknown property action `{bad}`")))?;
                Permission::Property { key, actions }
            }
            "awt" => Permission::Awt(self.expect_string("awt target")?),
            "user" => Permission::User(self.expect_string("user target")?),
            "resource" => Permission::Resource(self.expect_string("resource target")?),
            other => return Err(self.err(format!("unknown permission kind `{other}`"))),
        };
        Ok(permission)
    }
}

fn tokenize(text: &str) -> Vec<(Token, usize)> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                // Comment to end of line.
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    // A stray slash becomes a word character cluster; treat
                    // it as a one-character word so the parser reports it.
                    tokens.push((Token::Word("/".into()), line));
                }
            }
            '{' => {
                tokens.push((Token::LBrace, line));
                chars.next();
            }
            '}' => {
                tokens.push((Token::RBrace, line));
                chars.next();
            }
            ';' => {
                tokens.push((Token::Semi, line));
                chars.next();
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                for c in chars.by_ref() {
                    if c == '"' {
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                    }
                    s.push(c);
                }
                tokens.push((Token::Str(s), line));
            }
            _ => {
                let mut w = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '.' {
                        w.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if w.is_empty() {
                    // Unknown character: surface it as a word for error reporting.
                    w.push(c);
                    chars.next();
                }
                tokens.push((Token::Word(w), line));
            }
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_POLICY: &str = r#"
        // Rule 1: all local applications can exercise their running users'
        // permissions (paper section 5.3).
        grant codeBase "file:/apps/-" {
            permission user "exerciseUserPermissions";
        };

        // Rule 2: the backup application can read all files.
        grant codeBase "file:/apps/backup" {
            permission file "<<ALL FILES>>" "read";
        };

        // Rule 3 and 4: Alice and Bob own their home directories.
        grant user "alice" {
            permission file "/home/alice/-" "read,write,execute,delete";
        };
        grant user "bob" {
            permission file "/home/bob/-" "read,write,execute,delete";
        };
    "#;

    #[test]
    fn parses_the_paper_example_policy() {
        let policy = Policy::parse(PAPER_POLICY).unwrap();
        assert_eq!(policy.grants().len(), 4);

        let editor = CodeSource::local("file:/apps/editor");
        let perms = policy.permissions_for(&editor);
        assert!(perms.implies(&Permission::exercise_user_permissions()));
        assert!(!perms.implies(&Permission::file("/etc/passwd", FileActions::READ)));

        let backup = CodeSource::local("file:/apps/backup");
        let perms = policy.permissions_for(&backup);
        assert!(perms.implies(&Permission::file("/home/bob/secret", FileActions::READ)));
        assert!(!perms.implies(&Permission::file("/home/bob/secret", FileActions::WRITE)));

        assert!(policy.user_implies(
            "alice",
            &Permission::file("/home/alice/notes.txt", FileActions::WRITE)
        ));
        assert!(!policy.user_implies(
            "alice",
            &Permission::file("/home/bob/notes.txt", FileActions::READ)
        ));
        assert!(!policy.user_implies(
            "carol",
            &Permission::file("/home/alice/notes.txt", FileActions::READ)
        ));
    }

    #[test]
    fn signed_by_restricts_grants() {
        let policy = Policy::parse(
            r#"
            grant codeBase "http://applets.example.com/-" signedBy "acme" {
                permission file "/tmp/*" "read,write";
            };
            "#,
        )
        .unwrap();
        let signed = CodeSource::new("http://applets.example.com/game", vec!["acme".into()]);
        let unsigned = CodeSource::remote("http://applets.example.com/game");
        let perm = Permission::file("/tmp/scratch", FileActions::READ);
        assert!(policy.permissions_for(&signed).implies(&perm));
        assert!(!policy.permissions_for(&unsigned).implies(&perm));
    }

    #[test]
    fn grant_without_codebase_applies_to_all_code() {
        let policy = Policy::parse(r#"grant { permission property "os.*" "read"; };"#).unwrap();
        let anywhere = CodeSource::remote("http://evil/x");
        assert!(policy
            .permissions_for(&anywhere)
            .implies(&Permission::property("os.name", PropertyActions::READ)));
    }

    #[test]
    fn all_permission_kind() {
        let policy = Policy::parse(r#"grant codeBase "file:/sys/-" { permission all; };"#).unwrap();
        let sys = CodeSource::local("file:/sys/classes");
        assert!(policy.permissions_for(&sys).implies(&Permission::All));
    }

    #[test]
    fn parse_error_reports_line() {
        let err =
            Policy::parse("grant codeBase \"x\" {\n  permission bogus \"y\";\n}").unwrap_err();
        match err {
            SecurityError::PolicyParse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bogus"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn user_target_cannot_mix_with_codebase() {
        let err = Policy::parse(r#"grant user "alice" codeBase "file:/x" { };"#).unwrap_err();
        assert!(matches!(err, SecurityError::PolicyParse { .. }));
    }

    #[test]
    fn comments_and_hash_comments_are_skipped() {
        let policy = Policy::parse(
            "# hash comment\n// slash comment\ngrant user \"a\" { permission runtime \"x\"; }",
        )
        .unwrap();
        assert!(policy.user_implies("a", &Permission::runtime("x")));
    }

    #[test]
    fn display_then_reparse_roundtrips() {
        let policy = Policy::parse(PAPER_POLICY).unwrap();
        let reparsed = Policy::parse(&policy.to_string()).unwrap();
        assert_eq!(policy, reparsed);
    }

    /// Every permission kind, written the way policies (and the demand
    /// ledger) spell them.
    const EVERY_KIND_POLICY: &str = r#"
        grant codeBase "file:/apps/kit" signedBy "acme" {
            permission all;
            permission file "/data/report.txt" "read";
            permission file "/home/alice/-" "read,write,execute,delete";
            permission file "/tmp/*" "write,delete";
            permission socket "host.example:80" "connect";
            permission socket "*.example.com" "accept,listen,resolve";
            permission runtime "setUser";
            permission property "os.*" "read";
            permission property "user.home" "read,write";
            permission awt "showWindow";
            permission user "exerciseUserPermissions";
            permission resource "limit.threads:8";
        };
        grant user "alice" {
            permission file "/home/alice" "read";
        };
    "#;

    #[test]
    fn every_permission_kind_roundtrips_through_display() {
        // parse → serialize → re-parse equality, across every kind the
        // policy language has — the guarantee the inference engine's
        // emitted policy files rely on.
        let policy = Policy::parse(EVERY_KIND_POLICY).unwrap();
        let kinds = &policy.grants()[0].permissions;
        assert_eq!(kinds.len(), 12, "every kind is represented");
        let reparsed = Policy::parse(&policy.to_string()).unwrap();
        assert_eq!(policy, reparsed);
        // And a second generation is textually stable.
        assert_eq!(policy.to_string(), reparsed.to_string());
    }

    #[test]
    fn permission_entries_roundtrip_through_parse_entry() {
        let policy = Policy::parse(EVERY_KIND_POLICY).unwrap();
        for grant in policy.grants() {
            for permission in &grant.permissions {
                let text = permission.to_string();
                let back = Policy::parse_permission_entry(&text).unwrap();
                assert_eq!(&back, permission, "{text}");
                // A trailing semicolon (as emitted inside grant blocks) is
                // accepted too.
                let back = Policy::parse_permission_entry(&format!("{text};")).unwrap();
                assert_eq!(&back, permission);
            }
        }
    }

    #[test]
    fn parse_entry_rejects_trailing_garbage() {
        assert!(Policy::parse_permission_entry("permission runtime \"x\"; extra").is_err());
        assert!(Policy::parse_permission_entry("grant user \"a\" { }").is_err());
        assert!(Policy::parse_permission_entry("permission bogus \"x\"").is_err());
    }

    #[test]
    fn programmatic_grants_match_parsed_grants() {
        let mut built = Policy::new();
        built.grant_code(
            CodeSource::local("file:/apps/-"),
            vec![Permission::exercise_user_permissions()],
        );
        built.grant_user(
            "alice",
            vec![Permission::file("/home/alice/-", FileActions::ALL)],
        );
        let parsed = Policy::parse(
            r#"
            grant codeBase "file:/apps/-" { permission user "exerciseUserPermissions"; };
            grant user "alice" { permission file "/home/alice/-" "read,write,execute,delete"; };
            "#,
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn user_index_resets_on_mutation() {
        let mut policy = Policy::new();
        let demand = Permission::file("/home/alice/x", FileActions::READ);
        // Build the index, then mutate: the new grant must be honored.
        assert!(!policy.user_implies("alice", &demand));
        policy.grant_user(
            "alice",
            vec![Permission::file("/home/alice/-", FileActions::ALL)],
        );
        assert!(policy.user_implies("alice", &demand));
        // Grants spread over multiple blocks for the same user all apply.
        policy.grant_user("alice", vec![Permission::runtime("lateGrant")]);
        assert!(policy.user_implies("alice", &Permission::runtime("lateGrant")));
        assert!(policy.user_implies("alice", &demand));
    }

    #[test]
    fn policy_serde_roundtrip() {
        let policy = Policy::parse(PAPER_POLICY).unwrap();
        let value = policy.serialize_value();
        let back = Policy::deserialize_value(&value).unwrap();
        assert_eq!(policy, back);
        assert!(back.user_implies(
            "alice",
            &Permission::file("/home/alice/notes.txt", FileActions::WRITE)
        ));
    }

    #[test]
    fn user_store_backs_user_queries() {
        use crate::store::{LazyUserStore, TemplateGrantSource};
        use std::sync::Arc;
        let store = Arc::new(LazyUserStore::new(Arc::new(TemplateGrantSource::new(
            "u",
            1000,
            r#"grant user "${user}" { permission file "/home/${user}/-" "read,write"; };"#,
        ))));
        let mut policy = Policy::new().with_user_store(Arc::clone(&store));
        policy.grant_user("alice", vec![Permission::runtime("residentGrant")]);

        // Resident grants answer without touching the store.
        assert!(policy.user_implies("alice", &Permission::runtime("residentGrant")));
        assert_eq!(store.loads(), 0, "a resident answer never probes the store");

        // Stored users load on first demand and serve both query forms.
        let demand = Permission::file("/home/u7/notes", FileActions::WRITE);
        assert!(policy.user_implies("u7", &demand));
        assert!(policy.permissions_for_user("u7").implies(&demand));
        assert!(!policy.user_implies("u7", &Permission::runtime("residentGrant")));
        assert!(!policy.user_implies("u7", &Permission::file("/home/u8/notes", FileActions::READ)));

        // permissions_for_user overlays resident and stored grants.
        policy.grant_user("u7", vec![Permission::runtime("extra")]);
        let merged = policy.permissions_for_user("u7");
        assert!(merged.implies(&demand));
        assert!(merged.implies(&Permission::runtime("extra")));

        // Clone carries the store; equality and wire form ignore it.
        let clone = policy.clone();
        assert!(clone.user_implies("u9", &Permission::file("/home/u9/x", FileActions::READ)));
        assert_eq!(clone, policy);
        let bare = Policy::deserialize_value(&policy.serialize_value()).unwrap();
        assert!(bare.user_store().is_none());
        assert_eq!(bare, policy, "equality is resident-grants-only");
    }

    #[test]
    fn multiple_signers_split_on_comma() {
        let policy =
            Policy::parse(r#"grant signedBy "acme, beta" { permission runtime "x"; };"#).unwrap();
        match &policy.grants()[0].target {
            GrantTarget::Code(cs) => {
                assert_eq!(cs.signers(), &["acme".to_string(), "beta".to_string()][..]);
            }
            other => panic!("unexpected target {other:?}"),
        }
    }
}
