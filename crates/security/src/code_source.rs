use std::fmt;

use serde::{Deserialize, Serialize};

/// Where code came from: a location URL plus the names of the principals that
/// signed it (JDK 1.2 `CodeSource`).
///
/// The current Java security architecture expresses policy "in terms of code
/// identity that is characterized by both digital signatures on the mobile
/// code and the network origin of the mobile code" (paper §1). We model
/// signatures by signer *name* — the cryptographic machinery is orthogonal to
/// the multi-processing architecture under study.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodeSource {
    /// Location URL, e.g. `file:/sys/classes` or `http://host.example/applets/`.
    url: String,
    /// Names of signing principals, sorted; empty for unsigned code.
    signers: Vec<String>,
}

impl CodeSource {
    /// Creates a code source with an explicit signer list.
    pub fn new(url: impl Into<String>, mut signers: Vec<String>) -> CodeSource {
        signers.sort();
        signers.dedup();
        CodeSource {
            url: url.into(),
            signers,
        }
    }

    /// Creates an unsigned, local code source.
    pub fn local(url: impl Into<String>) -> CodeSource {
        CodeSource::new(url, Vec::new())
    }

    /// Creates an unsigned code source for mobile code fetched from `url`
    /// over the (simulated) network.
    pub fn remote(url: impl Into<String>) -> CodeSource {
        CodeSource::new(url, Vec::new())
    }

    /// The location URL.
    pub fn url(&self) -> &str {
        &self.url
    }

    /// The signer names (sorted, deduplicated).
    pub fn signers(&self) -> &[String] {
        &self.signers
    }

    /// Returns the host component of an `http:`/`https:`-style URL, if any.
    ///
    /// Used by the appletviewer to let an applet connect back to the host it
    /// was loaded from (paper §6.3).
    pub fn host(&self) -> Option<&str> {
        let rest = self
            .url
            .strip_prefix("http://")
            .or_else(|| self.url.strip_prefix("https://"))?;
        let end = rest.find(['/', ':']).unwrap_or(rest.len());
        let host = &rest[..end];
        if host.is_empty() {
            None
        } else {
            Some(host)
        }
    }

    /// Policy-style matching: does a grant written for `self` cover code from
    /// `other`?
    ///
    /// * URL patterns follow FilePermission-like conventions: `...-` at the
    ///   end is a recursive prefix match, `...*` matches one more path
    ///   component, otherwise the match is exact. An empty pattern matches
    ///   any URL.
    /// * Every signer listed in the grant must have signed `other`.
    pub fn implies(&self, other: &CodeSource) -> bool {
        let url_ok = if self.url.is_empty() {
            true
        } else if let Some(prefix) = self.url.strip_suffix('-') {
            other.url.starts_with(prefix)
        } else if let Some(prefix) = self.url.strip_suffix('*') {
            match other.url.strip_prefix(prefix) {
                Some(rest) => !rest.contains('/'),
                None => false,
            }
        } else {
            self.url == other.url
        };
        url_ok && self.signers.iter().all(|s| other.signers.contains(s))
    }
}

impl fmt::Display for CodeSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.signers.is_empty() {
            write!(f, "codeBase {:?}", self.url)
        } else {
            write!(
                f,
                "codeBase {:?} signedBy {:?}",
                self.url,
                self.signers.join(",")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_url_match() {
        let grant = CodeSource::local("file:/sys/classes");
        assert!(grant.implies(&CodeSource::local("file:/sys/classes")));
        assert!(!grant.implies(&CodeSource::local("file:/sys/classes/sub")));
    }

    #[test]
    fn recursive_dash_match() {
        let grant = CodeSource::local("file:/apps/-");
        assert!(grant.implies(&CodeSource::local("file:/apps/editor")));
        assert!(grant.implies(&CodeSource::local("file:/apps/games/tetris")));
        assert!(!grant.implies(&CodeSource::local("file:/sys/editor")));
    }

    #[test]
    fn single_component_star_match() {
        let grant = CodeSource::local("file:/apps/*");
        assert!(grant.implies(&CodeSource::local("file:/apps/editor")));
        assert!(!grant.implies(&CodeSource::local("file:/apps/games/tetris")));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let grant = CodeSource::local("");
        assert!(grant.implies(&CodeSource::local("http://anywhere/x")));
    }

    #[test]
    fn signers_must_all_be_present() {
        let grant = CodeSource::new("file:/apps/-", vec!["acme".into()]);
        let signed = CodeSource::new("file:/apps/editor", vec!["acme".into(), "other".into()]);
        let unsigned = CodeSource::local("file:/apps/editor");
        assert!(grant.implies(&signed));
        assert!(!grant.implies(&unsigned));

        let two = CodeSource::new("", vec!["acme".into(), "beta".into()]);
        assert!(!two.implies(&signed));
    }

    #[test]
    fn host_extraction() {
        assert_eq!(
            CodeSource::remote("http://applets.example.com/games/").host(),
            Some("applets.example.com")
        );
        assert_eq!(
            CodeSource::remote("https://host:8080/x").host(),
            Some("host")
        );
        assert_eq!(CodeSource::local("file:/apps/editor").host(), None);
        assert_eq!(CodeSource::remote("http://").host(), None);
    }

    #[test]
    fn signers_are_sorted_and_deduped() {
        let cs = CodeSource::new("u", vec!["b".into(), "a".into(), "b".into()]);
        assert_eq!(cs.signers(), &["a".to_string(), "b".to_string()][..]);
    }

    #[test]
    fn display_mentions_signers() {
        let cs = CodeSource::new("file:/x", vec!["acme".into()]);
        let text = cs.to_string();
        assert!(text.contains("file:/x") && text.contains("acme"));
    }
}
