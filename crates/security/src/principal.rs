use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::SecurityError;
use crate::Result;

/// Numeric identifier for a user known to the runtime (paper Feature 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid:{}", self.0)
    }
}

/// A user account: the principal that *runs* applications.
///
/// "Every application is associated with a user, ... A newly started
/// application will inherit the running user from the currently running
/// application." (paper §5.2)
#[derive(Debug, Clone)]
pub struct User {
    id: UserId,
    name: String,
    home: String,
    password_hash: u64,
    salt: u64,
}

impl User {
    /// The user's numeric id.
    pub fn id(&self) -> UserId {
        self.id
    }

    /// The login name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The home directory path inside the virtual filesystem.
    pub fn home(&self) -> &str {
        &self.home
    }
}

impl fmt::Display for User {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.id)
    }
}

/// Salted password digest. FNV-1a based — *simulation-grade only*: the paper's
/// architecture is about where authentication hooks in, not about the digest
/// algorithm, so we deliberately use a trivial, dependency-free hash.
fn digest(password: &str, salt: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for b in password.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    // A few extra mixing rounds so similar passwords diverge.
    for _ in 0..4 {
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    }
    h
}

#[derive(Debug, Default)]
struct RegistryState {
    by_id: HashMap<UserId, User>,
    by_name: HashMap<String, UserId>,
    next_id: u32,
}

/// The runtime's account database: login names, password digests and home
/// directories.
///
/// The registry is internally synchronized and intended to be shared behind
/// an [`Arc`]: `Arc<UserRegistry>` is the "list of principals known to the
/// system" that the paper counts as *system-wide* state (paper Feature 8).
#[derive(Debug, Default)]
pub struct UserRegistry {
    state: RwLock<RegistryState>,
}

impl UserRegistry {
    /// Creates an empty registry.
    pub fn new() -> UserRegistry {
        UserRegistry::default()
    }

    /// Creates a registry pre-populated with conventional accounts:
    /// `system` (uid 0, home `/`) plus any `(name, password)` pairs given.
    ///
    /// Each user's home directory is `/home/<name>`.
    ///
    /// # Panics
    ///
    /// Panics if `users` contains a duplicate name (a configuration bug).
    pub fn with_users(users: &[(&str, &str)]) -> Arc<UserRegistry> {
        let registry = UserRegistry::new();
        registry
            .add_user("system", "", "/")
            .expect("fresh registry cannot contain `system`");
        for (name, password) in users {
            registry
                .add_user(name, password, &format!("/home/{name}"))
                .unwrap_or_else(|_| panic!("duplicate user {name:?}"));
        }
        Arc::new(registry)
    }

    /// Adds a user account.
    ///
    /// # Errors
    ///
    /// Returns [`SecurityError::DuplicateUser`] if the name is taken.
    pub fn add_user(&self, name: &str, password: &str, home: &str) -> Result<User> {
        let mut state = self.state.write();
        if state.by_name.contains_key(name) {
            return Err(SecurityError::DuplicateUser { user: name.into() });
        }
        let id = UserId(state.next_id);
        state.next_id += 1;
        let salt = 0x9e37_79b9_7f4a_7c15u64
            .wrapping_mul(u64::from(id.0) + 1)
            .rotate_left(17);
        let user = User {
            id,
            name: name.to_string(),
            home: home.to_string(),
            password_hash: digest(password, salt),
            salt,
        };
        state.by_id.insert(id, user.clone());
        state.by_name.insert(name.to_string(), id);
        Ok(user)
    }

    /// Verifies `password` for `name` and returns the account.
    ///
    /// # Errors
    ///
    /// [`SecurityError::UnknownUser`] if no such account exists,
    /// [`SecurityError::AuthenticationFailed`] if the password is wrong.
    pub fn authenticate(&self, name: &str, password: &str) -> Result<User> {
        let state = self.state.read();
        let id = state
            .by_name
            .get(name)
            .ok_or_else(|| SecurityError::UnknownUser { user: name.into() })?;
        let user = &state.by_id[id];
        if digest(password, user.salt) == user.password_hash {
            Ok(user.clone())
        } else {
            Err(SecurityError::AuthenticationFailed { user: name.into() })
        }
    }

    /// Changes the password of `name`, verifying `old` first.
    ///
    /// # Errors
    ///
    /// Same as [`UserRegistry::authenticate`].
    pub fn change_password(&self, name: &str, old: &str, new: &str) -> Result<()> {
        self.authenticate(name, old)?;
        let mut state = self.state.write();
        let id = state
            .by_name
            .get(name)
            .copied()
            .ok_or_else(|| SecurityError::UnknownUser { user: name.into() })?;
        let user = state.by_id.get_mut(&id).expect("id is indexed by name");
        user.password_hash = digest(new, user.salt);
        Ok(())
    }

    /// Looks up a user by name.
    ///
    /// # Errors
    ///
    /// [`SecurityError::UnknownUser`] if the name is not registered.
    pub fn lookup(&self, name: &str) -> Result<User> {
        let state = self.state.read();
        state
            .by_name
            .get(name)
            .map(|id| state.by_id[id].clone())
            .ok_or_else(|| SecurityError::UnknownUser { user: name.into() })
    }

    /// Looks up a user by id.
    pub fn lookup_id(&self, id: UserId) -> Option<User> {
        self.state.read().by_id.get(&id).cloned()
    }

    /// Returns all registered user names, sorted.
    pub fn user_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.state.read().by_name.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered accounts.
    pub fn len(&self) -> usize {
        self.state.read().by_id.len()
    }

    /// Returns `true` if no accounts are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_authenticate() {
        let reg = UserRegistry::new();
        let alice = reg.add_user("alice", "sesame", "/home/alice").unwrap();
        assert_eq!(alice.name(), "alice");
        assert_eq!(alice.home(), "/home/alice");

        let authed = reg.authenticate("alice", "sesame").unwrap();
        assert_eq!(authed.id(), alice.id());
    }

    #[test]
    fn wrong_password_is_rejected() {
        let reg = UserRegistry::new();
        reg.add_user("alice", "sesame", "/home/alice").unwrap();
        let err = reg.authenticate("alice", "SESAME").unwrap_err();
        assert!(matches!(err, SecurityError::AuthenticationFailed { .. }));
    }

    #[test]
    fn unknown_user_is_distinguished_from_bad_password() {
        let reg = UserRegistry::new();
        let err = reg.authenticate("ghost", "x").unwrap_err();
        assert!(matches!(err, SecurityError::UnknownUser { .. }));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let reg = UserRegistry::new();
        reg.add_user("alice", "a", "/home/alice").unwrap();
        let err = reg.add_user("alice", "b", "/home/alice2").unwrap_err();
        assert!(matches!(err, SecurityError::DuplicateUser { .. }));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let reg = UserRegistry::new();
        let a = reg.add_user("a", "", "/home/a").unwrap();
        let b = reg.add_user("b", "", "/home/b").unwrap();
        assert!(a.id() < b.id());
        assert_eq!(reg.lookup_id(a.id()).unwrap().name(), "a");
    }

    #[test]
    fn with_users_creates_system_account() {
        let reg = UserRegistry::with_users(&[("alice", "pw1"), ("bob", "pw2")]);
        assert_eq!(reg.lookup("system").unwrap().id(), UserId(0));
        assert_eq!(reg.user_names(), vec!["alice", "bob", "system"]);
        reg.authenticate("bob", "pw2").unwrap();
    }

    #[test]
    fn change_password_requires_old_password() {
        let reg = UserRegistry::new();
        reg.add_user("alice", "old", "/home/alice").unwrap();
        assert!(reg.change_password("alice", "wrong", "new").is_err());
        reg.change_password("alice", "old", "new").unwrap();
        assert!(reg.authenticate("alice", "old").is_err());
        reg.authenticate("alice", "new").unwrap();
    }

    #[test]
    fn same_password_different_users_different_hashes() {
        // Salting: equal passwords must not produce equal digests.
        let reg = UserRegistry::new();
        let a = reg.add_user("a", "same", "/home/a").unwrap();
        let b = reg.add_user("b", "same", "/home/b").unwrap();
        assert_ne!(a.password_hash, b.password_hash);
    }

    #[test]
    fn empty_registry_reports_empty() {
        let reg = UserRegistry::new();
        assert!(reg.is_empty());
    }
}
