use std::fmt;
use std::sync::Arc;

use crate::domain::ProtectionDomain;
use crate::error::SecurityError;
use crate::intern::{ContextFingerprint, FingerprintBuilder};
use crate::permission::Permission;
use crate::policy::Policy;
use crate::Result;

/// One stack frame's contribution to an access-control decision: the
/// protection domain of the class executing in that frame, and whether the
/// frame was entered through `doPrivileged`.
#[derive(Debug, Clone)]
pub struct DomainEntry {
    /// The protection domain of the code executing in the frame.
    pub domain: Arc<ProtectionDomain>,
    /// `true` if this frame marks a `doPrivileged` boundary: the stack walk
    /// stops after checking this frame's domain.
    pub privileged: bool,
}

/// A snapshot of the protection domains on a thread's call stack, newest
/// frame first (JDK 1.2 `AccessControlContext`).
///
/// A context may carry an *inherited* parent context: when a thread is
/// created, the JDK captures the creating thread's context and consults it
/// below the new thread's own frames. [`AccessContext::inherit`] reproduces
/// this.
#[derive(Debug, Clone, Default)]
pub struct AccessContext {
    /// Domain entries, newest first.
    entries: Vec<DomainEntry>,
    /// Context captured from the creating thread, consulted after (below)
    /// `entries` unless a privileged frame stops the walk first.
    inherited: Option<Arc<AccessContext>>,
}

impl AccessContext {
    /// An empty context. An empty stack means only runtime-internal code is
    /// executing, which is fully trusted — checks against it succeed.
    pub fn empty() -> AccessContext {
        AccessContext::default()
    }

    /// Builds a context from unprivileged domains, newest first.
    pub fn from_domains(domains: Vec<Arc<ProtectionDomain>>) -> AccessContext {
        AccessContext {
            entries: domains
                .into_iter()
                .map(|domain| DomainEntry {
                    domain,
                    privileged: false,
                })
                .collect(),
            inherited: None,
        }
    }

    /// Builds a context from explicit entries, newest first.
    pub fn from_entries(entries: Vec<DomainEntry>) -> AccessContext {
        AccessContext {
            entries,
            inherited: None,
        }
    }

    /// Returns a copy of this context with `parent` attached as the inherited
    /// (thread-creation-time) context.
    pub fn inherit(mut self, parent: Arc<AccessContext>) -> AccessContext {
        self.inherited = Some(parent);
        self
    }

    /// Returns a new context with one more (newest) frame on top.
    pub fn with_frame(&self, domain: Arc<ProtectionDomain>, privileged: bool) -> AccessContext {
        let mut entries = Vec::with_capacity(self.entries.len() + 1);
        entries.push(DomainEntry { domain, privileged });
        entries.extend(self.entries.iter().cloned());
        AccessContext {
            entries,
            inherited: self.inherited.clone(),
        }
    }

    /// The entries of this context (newest first), excluding inherited ones.
    pub fn entries(&self) -> &[DomainEntry] {
        &self.entries
    }

    /// The inherited parent context, if any.
    pub fn inherited(&self) -> Option<&Arc<AccessContext>> {
        self.inherited.as_ref()
    }

    /// Total number of domain entries that a full (unprivileged) walk would
    /// visit, including inherited frames.
    pub fn depth(&self) -> usize {
        self.entries.len() + self.inherited.as_ref().map_or(0, |p| p.depth())
    }

    /// The fingerprint of the domain set an access-control walk of this
    /// context would actually visit.
    ///
    /// Respects `doPrivileged` truncation — frames below (older than) a
    /// privileged frame contribute nothing, so a truncated context can never
    /// alias the fingerprint of the full stack it was cut from (unless the
    /// hidden frames add no *new* domains, in which case the decisions are
    /// identical anyway). Order-insensitive and duplicate-insensitive, which
    /// is sound because the decision ANDs one predicate over the *set* of
    /// visible domains.
    pub fn fingerprint(&self) -> ContextFingerprint {
        let mut builder = FingerprintBuilder::new();
        let mut current = Some(self);
        'walk: while let Some(c) = current {
            for entry in &c.entries {
                builder.add(&entry.domain);
                if entry.privileged {
                    break 'walk;
                }
            }
            current = c.inherited.as_deref();
        }
        builder.fingerprint()
    }
}

impl fmt::Display for AccessContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx[")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}{}", e.domain, if e.privileged { "!" } else { "" })?;
        }
        if let Some(parent) = &self.inherited {
            write!(f, " <- {parent}")?;
        }
        write!(f, "]")
    }
}

/// How one distinct visible domain participated in an access-control walk:
/// the demand observatory's raw material. Produced by
/// [`AccessController::check_with_routes`] on the slow (full-walk) path so
/// the demand ledger can attribute a demand to every domain that had to
/// satisfy it — and, for grants, record *which rule* satisfied it (the
/// domain's own permissions or the running user's, paper §5.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrantRoute {
    /// The domain's code-source URL.
    pub source: String,
    /// The demand was satisfied through the running user's policy grants
    /// (the domain held `exerciseUserPermissions`), not the domain's own.
    pub via_user: bool,
    /// This domain refused the demand — it is the one a denial names.
    pub refused: bool,
}

/// The stack-inspection access controller (JDK 1.2 `AccessController`),
/// extended with the paper's user-based access control (§5.3).
///
/// The decision algorithm, per [`AccessController::check_with`]:
/// walk the stack newest→oldest; *every* visited domain must satisfy the
/// demanded permission; a `doPrivileged` frame is the last one visited.
/// A domain satisfies a demand if it implies the permission directly, **or**
/// if it holds `UserPermission("exerciseUserPermissions")` and the policy
/// grants the permission to the current running user.
#[derive(Debug)]
pub struct AccessController(());

impl AccessController {
    /// Checks `demand` against `ctx`, combining code-source permissions with
    /// the permissions the `policy` grants to `running_user` (paper §5.3).
    ///
    /// # Errors
    ///
    /// Returns [`SecurityError::AccessDenied`] naming the first domain on the
    /// stack that satisfies neither the code-source nor the user rule.
    pub fn check_with(
        ctx: &AccessContext,
        demand: &Permission,
        running_user: Option<&str>,
        policy: &Policy,
    ) -> Result<()> {
        // Pre-compute whether the running user is granted the demand at all;
        // only consulted for domains holding the exercise permission.
        let user_granted = running_user.is_some_and(|u| policy.user_implies(u, demand));
        AccessController::check_granted(ctx, demand, user_granted)
    }

    /// [`AccessController::check_with`], additionally reporting how each
    /// distinct visible domain satisfied (or refused) the demand.
    ///
    /// The walk is the same AND-over-distinct-domains with `doPrivileged`
    /// truncation; the decision is identical to `check_with`. Along the way
    /// one [`GrantRoute`] is pushed per distinct *policy-dependent* domain:
    /// fully-trusted domains (those statically implying [`Permission::All`],
    /// like the runtime's system domain) are skipped, because no policy
    /// grant is needed — or derivable — for them. On a denial, the refusing
    /// domain's route (with `refused: true`) is the last one pushed.
    ///
    /// Route sources are code-source URL clones; the granted path still
    /// formats no domain display strings.
    ///
    /// # Errors
    ///
    /// Returns [`SecurityError::AccessDenied`] exactly when
    /// [`AccessController::check_with`] would.
    pub fn check_with_routes(
        ctx: &AccessContext,
        demand: &Permission,
        running_user: Option<&str>,
        policy: &Policy,
        routes: &mut Vec<GrantRoute>,
    ) -> Result<()> {
        let user_granted = running_user.is_some_and(|u| policy.user_implies(u, demand));
        let mut exercise: Option<Permission> = None;
        let mut seen = FingerprintBuilder::new();
        let mut current = Some(ctx);
        while let Some(c) = current {
            for entry in &c.entries {
                if seen.add(&entry.domain) {
                    if entry.domain.implies(&Permission::All) {
                        // Statically all-powerful: independent of policy.
                    } else {
                        let code_ok = entry.domain.implies(demand);
                        let user_ok = !code_ok && user_granted && {
                            let exercise =
                                exercise.get_or_insert_with(Permission::exercise_user_permissions);
                            entry.domain.implies(exercise)
                        };
                        routes.push(GrantRoute {
                            source: entry.domain.code_source().url().to_string(),
                            via_user: user_ok,
                            refused: !code_ok && !user_ok,
                        });
                        if !code_ok && !user_ok {
                            return Err(SecurityError::denied(demand, entry.domain.to_string()));
                        }
                    }
                }
                if entry.privileged {
                    return Ok(());
                }
            }
            current = c.inherited.as_deref();
        }
        Ok(())
    }

    /// Checks `demand` using code-source permissions only (no user
    /// combination). Equivalent to [`AccessController::check_with`] with no
    /// running user — no policy is consulted at all.
    ///
    /// # Errors
    ///
    /// Returns [`SecurityError::AccessDenied`] naming the refusing domain.
    pub fn check(ctx: &AccessContext, demand: &Permission) -> Result<()> {
        AccessController::check_granted(ctx, demand, false)
    }

    /// The shared walk: every *distinct* visible domain must satisfy the
    /// demand, where `user_granted` says the running user's policy grants
    /// cover it (so domains holding the exercise permission pass).
    ///
    /// Duplicate domains are checked once — sound because the walk is a pure
    /// AND over visited domains — and dedup preserves first-occurrence order,
    /// so the refusing domain named in a denial is exactly the one the
    /// un-deduplicated walk would have named. The denial message is built
    /// only on the error branch; the granted path formats nothing.
    fn check_granted(ctx: &AccessContext, demand: &Permission, user_granted: bool) -> Result<()> {
        let mut exercise: Option<Permission> = None;
        let mut seen = FingerprintBuilder::new();
        let mut current = Some(ctx);
        while let Some(c) = current {
            for entry in &c.entries {
                if seen.add(&entry.domain) {
                    let code_ok = entry.domain.implies(demand);
                    let user_ok = !code_ok && user_granted && {
                        let exercise =
                            exercise.get_or_insert_with(Permission::exercise_user_permissions);
                        entry.domain.implies(exercise)
                    };
                    if !code_ok && !user_ok {
                        return Err(SecurityError::denied(demand, entry.domain.to_string()));
                    }
                }
                if entry.privileged {
                    return Ok(());
                }
            }
            current = c.inherited.as_deref();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code_source::CodeSource;

    use crate::permission::FileActions;

    fn domain(url: &str, perms: Vec<Permission>) -> Arc<ProtectionDomain> {
        Arc::new(ProtectionDomain::new(
            CodeSource::local(url),
            perms.into_iter().collect(),
        ))
    }

    fn read_tmp() -> Permission {
        Permission::file("/tmp/x", FileActions::READ)
    }

    #[test]
    fn empty_context_is_fully_trusted() {
        AccessController::check(&AccessContext::empty(), &Permission::All).unwrap();
    }

    #[test]
    fn every_domain_on_stack_must_agree() {
        let trusted = domain("file:/sys/a", vec![Permission::All]);
        let untrusted = domain("http://evil/x", vec![]);

        // trusted alone: ok.
        let ctx = AccessContext::from_domains(vec![trusted.clone()]);
        AccessController::check(&ctx, &read_tmp()).unwrap();

        // untrusted anywhere on the stack: denied.
        let ctx = AccessContext::from_domains(vec![trusted.clone(), untrusted.clone()]);
        let err = AccessController::check(&ctx, &read_tmp()).unwrap_err();
        assert!(err.to_string().contains("http://evil/x"));

        let ctx = AccessContext::from_domains(vec![untrusted, trusted]);
        AccessController::check(&ctx, &read_tmp()).unwrap_err();
    }

    #[test]
    fn do_privileged_stops_the_walk() {
        let trusted = domain("file:/sys/a", vec![Permission::All]);
        let untrusted = domain("http://evil/x", vec![]);
        // Stack (newest first): trusted(privileged) above untrusted.
        let ctx = AccessContext::from_entries(vec![
            DomainEntry {
                domain: trusted.clone(),
                privileged: true,
            },
            DomainEntry {
                domain: untrusted.clone(),
                privileged: false,
            },
        ]);
        AccessController::check(&ctx, &read_tmp()).unwrap();

        // But a privileged frame below untrusted code does not help the
        // untrusted code above it (the luring-attack property).
        let ctx = AccessContext::from_entries(vec![
            DomainEntry {
                domain: untrusted,
                privileged: false,
            },
            DomainEntry {
                domain: trusted,
                privileged: true,
            },
        ]);
        AccessController::check(&ctx, &read_tmp()).unwrap_err();
    }

    #[test]
    fn privileged_frame_must_itself_hold_the_permission() {
        let weak = domain("file:/apps/weak", vec![]);
        let ctx = AccessContext::from_entries(vec![DomainEntry {
            domain: weak,
            privileged: true,
        }]);
        AccessController::check(&ctx, &read_tmp()).unwrap_err();
    }

    #[test]
    fn user_grants_are_combined_for_exercising_domains() {
        let mut policy = Policy::new();
        policy.grant_user(
            "alice",
            vec![Permission::file("/home/alice/-", FileActions::ALL)],
        );
        let editor = domain(
            "file:/apps/editor",
            vec![Permission::exercise_user_permissions()],
        );
        let ctx = AccessContext::from_domains(vec![editor]);
        let alice_file = Permission::file("/home/alice/notes", FileActions::READ);

        AccessController::check_with(&ctx, &alice_file, Some("alice"), &policy).unwrap();
        AccessController::check_with(&ctx, &alice_file, Some("bob"), &policy).unwrap_err();
        AccessController::check_with(&ctx, &alice_file, None, &policy).unwrap_err();
    }

    #[test]
    fn non_exercising_code_cannot_use_user_grants() {
        // Paper §5.3: remote code (applets) does not get the user permission,
        // so it may not touch the running user's files even when run by them.
        let mut policy = Policy::new();
        policy.grant_user(
            "alice",
            vec![Permission::file("/home/alice/-", FileActions::ALL)],
        );
        let applet = domain("http://applets.example.com/x", vec![]);
        let ctx = AccessContext::from_domains(vec![applet]);
        let alice_file = Permission::file("/home/alice/notes", FileActions::READ);
        AccessController::check_with(&ctx, &alice_file, Some("alice"), &policy).unwrap_err();
    }

    #[test]
    fn mixed_stack_applet_above_editor_is_denied() {
        // Even if the editor could exercise alice's permissions, an applet
        // frame above it poisons the stack.
        let mut policy = Policy::new();
        policy.grant_user(
            "alice",
            vec![Permission::file("/home/alice/-", FileActions::ALL)],
        );
        let editor = domain(
            "file:/apps/editor",
            vec![Permission::exercise_user_permissions()],
        );
        let applet = domain("http://applets.example.com/x", vec![]);
        let ctx = AccessContext::from_domains(vec![applet, editor]);
        let alice_file = Permission::file("/home/alice/notes", FileActions::READ);
        AccessController::check_with(&ctx, &alice_file, Some("alice"), &policy).unwrap_err();
    }

    #[test]
    fn inherited_context_is_consulted() {
        let trusted = domain("file:/sys/a", vec![Permission::All]);
        let untrusted = domain("http://evil/x", vec![]);
        // New thread runs only trusted frames, but was created by a thread
        // whose stack contained untrusted code.
        let parent = Arc::new(AccessContext::from_domains(vec![untrusted]));
        let ctx = AccessContext::from_domains(vec![trusted.clone()]).inherit(parent);
        AccessController::check(&ctx, &read_tmp()).unwrap_err();

        // A doPrivileged frame in the child stops before the inherited part.
        let parent = Arc::new(AccessContext::from_domains(vec![domain(
            "http://evil/x",
            vec![],
        )]));
        let ctx = AccessContext::from_entries(vec![DomainEntry {
            domain: trusted,
            privileged: true,
        }])
        .inherit(parent);
        AccessController::check(&ctx, &read_tmp()).unwrap();
    }

    #[test]
    fn with_frame_pushes_newest() {
        let a = domain("file:/a", vec![Permission::All]);
        let b = domain("file:/b", vec![]);
        let ctx = AccessContext::from_domains(vec![a]).with_frame(b, false);
        assert_eq!(ctx.entries().len(), 2);
        assert_eq!(ctx.entries()[0].domain.code_source().url(), "file:/b");
        assert_eq!(ctx.depth(), 2);
    }

    #[test]
    fn fingerprint_ignores_order_and_duplicates() {
        let a = domain("file:/fp/a", vec![Permission::All]);
        let b = domain("file:/fp/b", vec![]);
        let ab = AccessContext::from_domains(vec![a.clone(), b.clone()]);
        let ba = AccessContext::from_domains(vec![b.clone(), a.clone()]);
        let aab = AccessContext::from_domains(vec![a.clone(), a.clone(), b.clone()]);
        assert_eq!(ab.fingerprint(), ba.fingerprint());
        assert_eq!(ab.fingerprint(), aab.fingerprint());
        assert_eq!(ab.fingerprint().unique, 2);
        assert_ne!(
            ab.fingerprint(),
            AccessContext::from_domains(vec![a]).fingerprint()
        );
    }

    #[test]
    fn fingerprint_respects_privileged_truncation() {
        let trusted = domain("file:/fp/trusted", vec![Permission::All]);
        let below = domain("file:/fp/below", vec![]);
        let truncated = AccessContext::from_entries(vec![
            DomainEntry {
                domain: trusted.clone(),
                privileged: true,
            },
            DomainEntry {
                domain: below.clone(),
                privileged: false,
            },
        ]);
        let full = AccessContext::from_entries(vec![
            DomainEntry {
                domain: trusted.clone(),
                privileged: false,
            },
            DomainEntry {
                domain: below,
                privileged: false,
            },
        ]);
        // The truncated walk sees {trusted} only.
        assert_eq!(truncated.fingerprint().unique, 1);
        assert_ne!(truncated.fingerprint(), full.fingerprint());
        assert_eq!(
            truncated.fingerprint(),
            AccessContext::from_domains(vec![trusted]).fingerprint()
        );
    }

    #[test]
    fn fingerprint_covers_inherited_frames() {
        let a = domain("file:/fp/inh-a", vec![Permission::All]);
        let b = domain("file:/fp/inh-b", vec![Permission::All]);
        let parent = Arc::new(AccessContext::from_domains(vec![b.clone()]));
        let inherited = AccessContext::from_domains(vec![a.clone()]).inherit(parent);
        let flat = AccessContext::from_domains(vec![a.clone(), b]);
        assert_eq!(inherited.fingerprint(), flat.fingerprint());
        assert_ne!(
            inherited.fingerprint(),
            AccessContext::from_domains(vec![a]).fingerprint()
        );
    }

    #[test]
    fn empty_context_fingerprint_is_unique_zero() {
        assert_eq!(AccessContext::empty().fingerprint().unique, 0);
    }

    #[test]
    fn granted_checks_format_no_domain_strings() {
        let d = domain("file:/fmt/granted", vec![Permission::All]);
        let ctx = AccessContext::from_domains(vec![d.clone(), d]);
        let before = crate::domain::domain_display_format_count();
        for _ in 0..100 {
            AccessController::check(&ctx, &read_tmp()).unwrap();
        }
        assert_eq!(
            crate::domain::domain_display_format_count(),
            before,
            "the Ok path must not build denial strings"
        );
        // A denial does format (exactly the refusing domain).
        let denied_ctx = AccessContext::from_domains(vec![domain("file:/fmt/denied", vec![])]);
        AccessController::check(&denied_ctx, &read_tmp()).unwrap_err();
        assert_eq!(
            crate::domain::domain_display_format_count(),
            before + 1,
            "a denial formats exactly the refusing domain"
        );
    }

    #[test]
    fn duplicate_domains_are_checked_once_and_denials_name_first_refuser() {
        let open = domain("file:/dup/open", vec![Permission::All]);
        let first = domain("http://dup/first", vec![]);
        let second = domain("http://dup/second", vec![]);
        let ctx =
            AccessContext::from_domains(vec![open.clone(), first.clone(), open, second, first]);
        let err = AccessController::check(&ctx, &read_tmp()).unwrap_err();
        assert!(
            err.to_string().contains("http://dup/first"),
            "dedup must preserve the first refusing domain: {err}"
        );
    }

    #[test]
    fn routes_report_code_and_user_rules_and_skip_trusted_domains() {
        let mut policy = Policy::new();
        policy.grant_user(
            "alice",
            vec![Permission::file("/home/alice/-", FileActions::ALL)],
        );
        let system = domain("file:/sys/-", vec![Permission::All]);
        let editor = domain(
            "file:/apps/editor",
            vec![
                Permission::exercise_user_permissions(),
                Permission::file("/tmp/-", FileActions::READ),
            ],
        );
        let ctx = AccessContext::from_domains(vec![editor.clone(), system.clone()]);

        // Code route: the editor's own grant covers /tmp.
        let mut routes = Vec::new();
        let tmp = Permission::file("/tmp/x", FileActions::READ);
        AccessController::check_with_routes(&ctx, &tmp, Some("alice"), &policy, &mut routes)
            .unwrap();
        assert_eq!(
            routes,
            vec![GrantRoute {
                source: "file:/apps/editor".into(),
                via_user: false,
                refused: false,
            }],
            "the all-powerful system domain leaves no route"
        );

        // User route: alice's grant carries the editor.
        let mut routes = Vec::new();
        let alice_file = Permission::file("/home/alice/notes", FileActions::READ);
        AccessController::check_with_routes(&ctx, &alice_file, Some("alice"), &policy, &mut routes)
            .unwrap();
        assert_eq!(routes.len(), 1);
        assert!(routes[0].via_user && !routes[0].refused);

        // Denial: the refusing route is pushed last, and the decision
        // matches check_with.
        let mut routes = Vec::new();
        let err = AccessController::check_with_routes(
            &ctx,
            &alice_file,
            Some("bob"),
            &policy,
            &mut routes,
        )
        .unwrap_err();
        assert!(err.to_string().contains("file:/apps/editor"));
        let last = routes.last().unwrap();
        assert!(last.refused);
        assert_eq!(last.source, "file:/apps/editor");
        assert!(
            AccessController::check_with(&ctx, &alice_file, Some("bob"), &policy).is_err(),
            "routes walk and plain walk agree"
        );
    }

    #[test]
    fn routes_respect_privileged_truncation_and_dedup() {
        let below = domain("http://evil/x", vec![]);
        let priv_app = domain(
            "file:/apps/priv",
            vec![Permission::file("/tmp/x", FileActions::READ)],
        );
        let ctx = AccessContext::from_entries(vec![
            DomainEntry {
                domain: priv_app.clone(),
                privileged: true,
            },
            DomainEntry {
                domain: below,
                privileged: false,
            },
        ]);
        let mut routes = Vec::new();
        AccessController::check_with_routes(&ctx, &read_tmp(), None, &Policy::new(), &mut routes)
            .unwrap();
        assert_eq!(routes.len(), 1, "frames below doPrivileged are invisible");
        assert_eq!(routes[0].source, "file:/apps/priv");

        // Duplicates contribute one route.
        let b = domain(
            "file:/apps/other",
            vec![Permission::file("/tmp/x", FileActions::READ)],
        );
        let ctx = AccessContext::from_domains(vec![b.clone(), b.clone(), b]);
        let mut routes = Vec::new();
        AccessController::check_with_routes(&ctx, &read_tmp(), None, &Policy::new(), &mut routes)
            .unwrap();
        assert_eq!(routes.len(), 1);
    }

    #[test]
    fn display_marks_privileged_frames() {
        let a = domain("file:/a", vec![]);
        let ctx = AccessContext::from_entries(vec![DomainEntry {
            domain: a,
            privileged: true,
        }]);
        assert!(ctx.to_string().contains('!'));
    }
}
