//! Least-privilege policy inference: collapse observed permission demands
//! into the minimal policy that would have permitted exactly what ran.
//!
//! The paper's operational pain (§5.3, §7) is authoring per-user,
//! per-code-source policies by hand. Demanded-permission traces are enough
//! to derive minimal policies automatically (Li & Le Thanh): the VM's
//! demand ledger records every (code source, user, permission, outcome)
//! tuple the access-check chokepoint saw, and this module turns those rows
//! into `grant codeBase` / `grant user` blocks:
//!
//! * A demand granted through a domain's own permissions becomes a
//!   `grant codeBase` entry for that source.
//! * A demand granted through the running user's grants (paper §5.3 rule 1)
//!   becomes a `grant user` entry for that user, and the exercising source
//!   is granted `permission user "exerciseUserPermissions"`.
//! * File targets are generalized to directory `*` (direct children) or
//!   `-` (recursive) prefixes only when **every** observed demand under the
//!   prefix — in the same grant scope, with overlapping actions — was
//!   granted; a denied demand under the prefix keeps the entries exact, so
//!   inference never converts an observed refusal into a grant.
//! * Installed `resource "limit.*"` user grants are carried through
//!   verbatim: quota limits are policy-carried configuration consumed at
//!   spawn time, not runtime demands, so no ledger row will ever witness
//!   them.
//!
//! [`diff_policy`] is the other direction: which installed grants were
//! never exercised by any observed demand — the over-grant report.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::code_source::CodeSource;
use crate::permission::{FileActions, Permission};
use crate::policy::{GrantTarget, Policy};

/// One observed demand: the typed form of a demand-ledger row. The ledger
/// itself is string-typed (it lives below this crate); callers parse the
/// permission text with [`Policy::parse_permission_entry`] to build these.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedDemand {
    /// Code-source URL of the domain the demand was charged to.
    pub source: String,
    /// The effective user at check time.
    pub user: Option<String>,
    /// The demanded permission.
    pub permission: Permission,
    /// Times this demand was granted.
    pub granted: u64,
    /// Times this demand was denied.
    pub denied: u64,
    /// Whether a grant went via the running user's permissions rather than
    /// the domain's own.
    pub via_user: bool,
}

/// The scope a grant bucket collects under: one future `grant` block.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Scope {
    Code(String),
    User(String),
}

/// Infers the least-privilege policy covering every *granted* demand in
/// `demands`, carrying `resource "limit.*"` user grants over from the
/// `installed` policy (spawn-time configuration the ledger cannot see).
///
/// The result is deterministic: grant blocks are ordered `codeBase` (by
/// URL) then `user` (by name), with permissions sorted by display form.
pub fn infer_policy(demands: &[ObservedDemand], installed: &Policy) -> Policy {
    let mut buckets: BTreeMap<Scope, Vec<Permission>> = BTreeMap::new();
    let mut exercising: BTreeSet<String> = BTreeSet::new();
    let mut observed_users: BTreeSet<String> = BTreeSet::new();

    for demand in demands {
        if let Some(user) = &demand.user {
            observed_users.insert(user.clone());
        }
        if demand.granted == 0 {
            continue;
        }
        let scope = match (&demand.user, demand.via_user) {
            (Some(user), true) => {
                exercising.insert(demand.source.clone());
                Scope::User(user.clone())
            }
            _ => Scope::Code(demand.source.clone()),
        };
        buckets
            .entry(scope)
            .or_default()
            .push(demand.permission.clone());
    }

    // Exercising sources need the exercise permission itself, whether or
    // not they also earned direct code grants.
    for source in &exercising {
        buckets
            .entry(Scope::Code(source.clone()))
            .or_default()
            .push(Permission::exercise_user_permissions());
    }

    // Carry spawn-time resource configuration for every observed user.
    for grant in installed.grants() {
        if let GrantTarget::User(name) = &grant.target {
            if !observed_users.contains(name) {
                continue;
            }
            let carried: Vec<Permission> = grant
                .permissions
                .iter()
                .filter(|p| matches!(p, Permission::Resource(_)))
                .cloned()
                .collect();
            if !carried.is_empty() {
                buckets
                    .entry(Scope::User(name.clone()))
                    .or_default()
                    .extend(carried);
            }
        }
    }

    let mut policy = Policy::new();
    for (scope, permissions) in buckets {
        let denied = denied_file_demands(demands, &scope);
        let minimal = minimize(generalize_files(permissions, &denied));
        if minimal.is_empty() {
            continue;
        }
        match scope {
            Scope::Code(url) => policy.grant_code(CodeSource::local(url), minimal),
            Scope::User(name) => policy.grant_user(name, minimal),
        }
    }
    policy
}

/// Denied file demands visible to a scope: for a code scope, denials
/// charged to that source; for a user scope, denials seen while that user
/// was running (any source — the user grant would have been consulted for
/// all of them).
fn denied_file_demands(demands: &[ObservedDemand], scope: &Scope) -> Vec<(String, FileActions)> {
    demands
        .iter()
        .filter(|d| d.denied > 0)
        .filter(|d| match scope {
            Scope::Code(url) => &d.source == url,
            Scope::User(name) => d.user.as_deref() == Some(name),
        })
        .filter_map(|d| match &d.permission {
            Permission::File { path, actions } => Some((path.clone(), *actions)),
            _ => None,
        })
        .collect()
}

fn actions_intersect(a: FileActions, b: FileActions) -> bool {
    (a.read && b.read) || (a.write && b.write) || (a.execute && b.execute) || (a.delete && b.delete)
}

/// The parent directory of a concrete path (`/a/b/c` → `/a/b`); `None` for
/// roots, patterns, and the `<<ALL FILES>>` token.
fn parent_dir(path: &str) -> Option<&str> {
    if path == "<<ALL FILES>>" || path.ends_with("/-") || path.ends_with("/*") {
        return None;
    }
    let cut = path.rfind('/')?;
    if cut == 0 {
        None
    } else {
        Some(&path[..cut])
    }
}

/// Generalizes file permissions to directory patterns where every observed
/// demand under the candidate prefix (with overlapping actions, in this
/// scope) was granted. Non-file permissions pass through untouched.
fn generalize_files(
    permissions: Vec<Permission>,
    denied: &[(String, FileActions)],
) -> Vec<Permission> {
    let mut out: Vec<Permission> = Vec::new();
    // (actions, parent dir) → concrete child paths.
    let mut groups: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    let mut actions_of: BTreeMap<String, FileActions> = BTreeMap::new();
    for permission in permissions {
        match &permission {
            Permission::File { path, actions } => match parent_dir(path) {
                Some(dir) => {
                    let actions_key = actions.to_string();
                    actions_of.insert(actions_key.clone(), *actions);
                    groups
                        .entry((actions_key, dir.to_string()))
                        .or_default()
                        .push(path.clone());
                }
                None => out.push(permission),
            },
            _ => out.push(permission),
        }
    }
    for ((actions_key, dir), mut paths) in groups {
        let actions = actions_of[&actions_key];
        paths.sort();
        paths.dedup();
        // A single observed path stays exact; generalizing it would widen
        // the grant beyond anything the workload demonstrated it needs.
        let candidate_ok = paths.len() >= 2
            && !denied.iter().any(|(denied_path, denied_actions)| {
                actions_intersect(actions, *denied_actions)
                    && parent_dir(denied_path) == Some(dir.as_str())
            });
        if candidate_ok {
            out.push(Permission::File {
                path: format!("{dir}/*"),
                actions,
            });
        } else {
            out.extend(
                paths
                    .into_iter()
                    .map(|path| Permission::File { path, actions }),
            );
        }
    }
    out
}

/// Sorts deterministically and drops any permission implied by another in
/// the same grant (exact paths covered by a generalized pattern, repeated
/// runtime targets, action subsets).
fn minimize(mut permissions: Vec<Permission>) -> Vec<Permission> {
    permissions.sort_by_key(|p| p.to_string());
    permissions.dedup();
    let kept: Vec<Permission> = permissions
        .iter()
        .filter(|p| {
            !permissions
                .iter()
                .any(|other| other != *p && other.implies(p) && !p.implies(other))
        })
        .cloned()
        .collect();
    // Equal-implication duplicates (p implies q and q implies p but p != q,
    // e.g. differently-spelled equivalent entries) survive the filter;
    // final dedup by display keeps one.
    let mut seen = BTreeSet::new();
    kept.into_iter()
        .filter(|p| seen.insert(p.to_string()))
        .collect()
}

/// One row of the over-grant report: an installed grant entry and whether
/// any observed demand exercised it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyDiffRow {
    /// Display form of the grant target (`codeBase "..."` / `user "..."`).
    pub target: String,
    /// Display form of the granted permission.
    pub permission: String,
    /// Whether any observed granted demand was covered by this entry.
    pub exercised: bool,
    /// Whether the entry is spawn-time configuration (`resource` grants)
    /// that no runtime demand can exercise.
    pub config: bool,
}

/// Compares the installed policy against observed demands: every grant
/// entry that no granted demand exercised is an over-grant candidate.
///
/// Code grants match demands charged to a source the grant's pattern
/// covers (signer information is not retained by the ledger, so signed
/// grants match by URL only); a `user "exerciseUserPermissions"` entry is
/// exercised by any user-routed grant from a covered source. User grants
/// match user-routed demands by that user.
pub fn diff_policy(installed: &Policy, demands: &[ObservedDemand]) -> Vec<PolicyDiffRow> {
    let exercise = Permission::exercise_user_permissions();
    let mut rows = Vec::new();
    for grant in installed.grants() {
        for permission in &grant.permissions {
            let config = matches!(permission, Permission::Resource(_));
            let exercised = !config
                && demands
                    .iter()
                    .filter(|d| d.granted > 0)
                    .any(|d| match &grant.target {
                        GrantTarget::Code(pattern) => {
                            let source = CodeSource::local(d.source.clone());
                            if !pattern.implies(&source) {
                                return false;
                            }
                            if d.via_user {
                                permission.implies(&exercise)
                            } else {
                                permission.implies(&d.permission)
                            }
                        }
                        GrantTarget::User(name) => {
                            d.via_user
                                && d.user.as_deref() == Some(name)
                                && permission.implies(&d.permission)
                        }
                    });
            rows.push(PolicyDiffRow {
                target: grant.target.to_string(),
                permission: permission.to_string(),
                exercised,
                config,
            });
        }
    }
    rows
}

/// Total permission entries across every grant block — the "grant count"
/// the least-privilege comparison uses.
pub fn grant_count(policy: &Policy) -> usize {
    policy.grants().iter().map(|g| g.permissions.len()).sum()
}

/// Renders an inferred policy as a policy file with a provenance header.
pub fn emit_policy_text(policy: &Policy, provenance: &str) -> String {
    format!(
        "// Inferred least-privilege policy — generated from the demand ledger.\n// {provenance}\n{policy}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn granted(source: &str, user: Option<&str>, permission: Permission) -> ObservedDemand {
        ObservedDemand {
            source: source.into(),
            user: user.map(Into::into),
            permission,
            granted: 3,
            denied: 0,
            via_user: false,
        }
    }

    fn granted_via_user(source: &str, user: &str, permission: Permission) -> ObservedDemand {
        ObservedDemand {
            via_user: true,
            ..granted(source, Some(user), permission)
        }
    }

    fn denied(source: &str, user: Option<&str>, permission: Permission) -> ObservedDemand {
        ObservedDemand {
            granted: 0,
            denied: 2,
            ..granted(source, user, permission)
        }
    }

    #[test]
    fn code_and_user_routes_land_in_their_grant_blocks() {
        let demands = vec![
            granted(
                "file:/apps/cat",
                Some("alice"),
                Permission::file("/etc/motd", FileActions::READ),
            ),
            granted_via_user(
                "file:/apps/edit",
                "alice",
                Permission::file("/home/alice/notes", FileActions::WRITE),
            ),
        ];
        let policy = infer_policy(&demands, &Policy::new());
        // cat gets its direct grant.
        assert!(policy
            .permissions_for(&CodeSource::local("file:/apps/cat"))
            .implies(&Permission::file("/etc/motd", FileActions::READ)));
        // edit gets the exercise permission, alice the file grant.
        assert!(policy
            .permissions_for(&CodeSource::local("file:/apps/edit"))
            .implies(&Permission::exercise_user_permissions()));
        assert!(policy.user_implies(
            "alice",
            &Permission::file("/home/alice/notes", FileActions::WRITE)
        ));
        // Nothing was widened to other users or sources.
        assert!(!policy.user_implies(
            "bob",
            &Permission::file("/home/alice/notes", FileActions::WRITE)
        ));
        assert!(!policy
            .permissions_for(&CodeSource::local("file:/apps/cat"))
            .implies(&Permission::exercise_user_permissions()));
    }

    #[test]
    fn denied_demands_are_never_granted() {
        let demands = vec![
            denied(
                "file:/apps/snoop",
                Some("bob"),
                Permission::file("/home/alice/diary", FileActions::READ),
            ),
            granted(
                "file:/apps/snoop",
                Some("bob"),
                Permission::runtime("setIO"),
            ),
        ];
        let policy = infer_policy(&demands, &Policy::new());
        assert!(!policy
            .permissions_for(&CodeSource::local("file:/apps/snoop"))
            .implies(&Permission::file("/home/alice/diary", FileActions::READ)));
        assert!(policy
            .permissions_for(&CodeSource::local("file:/apps/snoop"))
            .implies(&Permission::runtime("setIO")));
    }

    #[test]
    fn sibling_files_generalize_to_star_unless_a_denial_blocks_it() {
        let reads = |paths: &[&str]| -> Vec<ObservedDemand> {
            paths
                .iter()
                .map(|p| {
                    granted(
                        "file:/apps/grep",
                        None,
                        Permission::file(*p, FileActions::READ),
                    )
                })
                .collect()
        };
        // Clean case: two granted siblings collapse to the directory.
        let policy = infer_policy(&reads(&["/data/a.txt", "/data/b.txt"]), &Policy::new());
        let perms = policy.permissions_for(&CodeSource::local("file:/apps/grep"));
        assert!(perms.implies(&Permission::file("/data/a.txt", FileActions::READ)));
        assert_eq!(grant_count(&policy), 1, "{policy}");
        assert!(policy.to_string().contains("/data/*"));

        // A denied sibling with overlapping actions blocks generalization.
        let mut demands = reads(&["/data/a.txt", "/data/b.txt"]);
        demands.push(denied(
            "file:/apps/grep",
            None,
            Permission::file("/data/secret.txt", FileActions::READ),
        ));
        let policy = infer_policy(&demands, &Policy::new());
        let perms = policy.permissions_for(&CodeSource::local("file:/apps/grep"));
        assert!(perms.implies(&Permission::file("/data/a.txt", FileActions::READ)));
        assert!(
            !perms.implies(&Permission::file("/data/secret.txt", FileActions::READ)),
            "{policy}"
        );

        // A denied sibling with disjoint actions does not block it.
        let mut demands = reads(&["/data/a.txt", "/data/b.txt"]);
        demands.push(denied(
            "file:/apps/grep",
            None,
            Permission::file("/data/c.txt", FileActions::WRITE),
        ));
        let policy = infer_policy(&demands, &Policy::new());
        assert!(policy.to_string().contains("/data/*"), "{policy}");
    }

    #[test]
    fn single_observed_path_stays_exact() {
        let policy = infer_policy(
            &[granted(
                "file:/apps/cat",
                None,
                Permission::file("/etc/motd", FileActions::READ),
            )],
            &Policy::new(),
        );
        assert!(policy.to_string().contains("\"/etc/motd\""));
        assert!(!policy.to_string().contains("/etc/*"));
    }

    #[test]
    fn resource_limits_are_carried_for_observed_users() {
        let mut installed = Policy::new();
        installed.grant_user(
            "mallory",
            vec![
                Permission::resource("limit.threads:8"),
                Permission::file("/home/mallory/-", FileActions::ALL),
            ],
        );
        installed.grant_user("idle", vec![Permission::resource("limit.threads:2")]);
        let demands = vec![granted(
            "file:/apps/bomb",
            Some("mallory"),
            Permission::runtime("execApplication"),
        )];
        let policy = infer_policy(&demands, &installed);
        let mallory = policy.permissions_for_user("mallory");
        assert!(mallory.implies(&Permission::resource("limit.threads:8")));
        assert!(
            !mallory.implies(&Permission::file("/home/mallory/x", FileActions::READ)),
            "only resource config is carried, not unexercised file grants"
        );
        assert!(
            policy.permissions_for_user("idle").iter().next().is_none(),
            "users that never ran get nothing"
        );
    }

    #[test]
    fn inference_is_deterministic_and_roundtrips() {
        let demands = vec![
            granted_via_user(
                "file:/apps/edit",
                "alice",
                Permission::file("/home/alice/b", FileActions::WRITE),
            ),
            granted_via_user(
                "file:/apps/edit",
                "alice",
                Permission::file("/home/alice/a", FileActions::WRITE),
            ),
            granted("file:/apps/ps", Some("bob"), Permission::runtime("setIO")),
        ];
        let mut reversed = demands.clone();
        reversed.reverse();
        let a = infer_policy(&demands, &Policy::new());
        let b = infer_policy(&reversed, &Policy::new());
        assert_eq!(a.to_string(), b.to_string());
        let reparsed = Policy::parse(&a.to_string()).unwrap();
        assert_eq!(a.to_string(), reparsed.to_string());
        let emitted = emit_policy_text(&a, "test run");
        assert_eq!(Policy::parse(&emitted).unwrap().to_string(), a.to_string());
    }

    #[test]
    fn minimize_drops_entries_implied_by_patterns() {
        let minimal = minimize(vec![
            Permission::file("/tmp/*", FileActions::READ),
            Permission::file("/tmp/a", FileActions::READ),
            Permission::runtime("setIO"),
            Permission::runtime("setIO"),
        ]);
        assert_eq!(minimal.len(), 2, "{minimal:?}");
    }

    #[test]
    fn diff_reports_unexercised_grants() {
        let mut installed = Policy::new();
        installed.grant_code(
            CodeSource::local("file:/apps/-"),
            vec![
                Permission::exercise_user_permissions(),
                Permission::runtime("setIO"),
                Permission::awt("showWindow"),
            ],
        );
        installed.grant_user(
            "alice",
            vec![
                Permission::file("/home/alice/-", FileActions::ALL),
                Permission::resource("limit.threads:4"),
            ],
        );
        let demands = vec![
            granted("file:/apps/sh", Some("alice"), Permission::runtime("setIO")),
            granted_via_user(
                "file:/apps/edit",
                "alice",
                Permission::file("/home/alice/notes", FileActions::WRITE),
            ),
        ];
        let rows = diff_policy(&installed, &demands);
        let row = |perm: &str| rows.iter().find(|r| r.permission.contains(perm)).unwrap();
        assert!(row("setIO").exercised);
        assert!(
            row("exerciseUserPermissions").exercised,
            "user-routed grants exercise the exercise permission"
        );
        assert!(!row("showWindow").exercised, "never demanded");
        assert!(row("/home/alice/-").exercised);
        assert!(row("limit.threads").config);
        assert!(!row("limit.threads").exercised);
    }
}
