//! # jmp-obs
//!
//! The observability substrate for the jmproc runtime: VM-wide tracing,
//! per-application metrics, and the security audit trail.
//!
//! The paper (Balfanz & Gong, ICDCS 1998) runs many mutually-suspicious
//! applications inside one JVM; once `ps`-style multiplexing exists, the
//! natural next questions are operational: *what is each application doing,
//! and who was denied what?* This crate answers them with three small,
//! dependency-light pieces:
//!
//! * **Events** ([`EventSink`]) — a bounded ring buffer of structured
//!   [`Event`]s (application lifecycle, class definition, access denials)
//!   with subscriber fan-out over channels. Publishing never blocks the hot
//!   path: a full ring drops the oldest event and counts it, and a disabled
//!   sink ([`EventSink::disabled`]) costs exactly one atomic load.
//! * **Metrics** ([`MetricsRegistry`]) — [`Counter`]s, [`Gauge`]s and
//!   log2-bucketed [`Histogram`]s, grouped per application and rolled up
//!   VM-wide, all exportable as JSON through `serde`.
//! * **Audit** ([`AuditLog`]) — every *denied* permission check, with the
//!   demanded permission, the refusing protection domain, the effective
//!   user, and the owning application.
//! * **Spans** ([`FlightRecorder`], [`trace`]) — causal spans carrying a
//!   [`TraceCtx`] across application boundaries (`exec`, AWT dispatch, pipe
//!   I/O, access checks) into an always-on bounded flight record that is
//!   attached to audit incidents and exports as Chrome `trace_event` JSON.
//! * **Watchdogs** ([`WatchdogRegistry`]) — per-dispatcher heartbeats with
//!   stall detection, surfacing hung event-dispatch and helper threads.
//! * **Profiles** ([`Profiler`], [`profile`]) — always-on per-opcode
//!   interpreter accounting (exact counts, apportioned cost quantiles) and
//!   sampled per-thread stacks, per application and VM-wide, exporting as
//!   [`ProfileReport`] JSON, flamegraph.pl collapsed-stack text, and Chrome
//!   trace instant events.
//!
//! [`ObsHub`] composes the pieces around one shared [`ObsClock`] and is
//! what the VM attaches; higher layers (`jmp-vm`, `jmp-core`, the shell's
//! `top`/`vmstat`/`audit`/`trace` builtins) only ever talk to the hub.
//! Reading any of it back *out* is permission-gated by the runtime
//! (`RuntimePermission("readMetrics")` / `RuntimePermission("readAuditLog")`
//! / `RuntimePermission("traceVm")`) — observability obeys the same
//! security model it observes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod demand;
mod hub;
mod metrics;
pub mod profile;
mod recorder;
mod sink;
pub mod trace;
mod watchdog;

pub use audit::{AuditLog, AuditRecord};
pub use demand::{DemandCell, DemandLedger, DemandRow};
pub use hub::{AppResolver, CacheOutcome, HubSnapshot, ObsClock, ObsHub};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
pub use profile::{OpcodeProfile, ProfileReport, ProfileView, Profiler, ThreadLoc};
pub use recorder::{FlightRecorder, Span, SpanCategory, SpanGuard};
pub use sink::{Event, EventKind, EventSink};
pub use trace::TraceCtx;
pub use watchdog::{Heartbeat, WatchdogRegistry, WatchdogRow};
