//! Causal trace context: the `{trace_id, parent_span}` pair that rides a
//! request across application boundaries.
//!
//! The paper's runtime hands work across three kinds of seams — `exec`
//! spawning a thread-group subtree, per-application event queues feeding
//! dedicated dispatcher threads, and inter-application pipes. A
//! [`TraceCtx`] is allocated at the entry seam (a shell command or an
//! `exec`) and then *propagated*, not re-created: thread spawn copies the
//! parent's context into the child, an AWT event carries the context of the
//! thread that created it, and a pipe carries the context of its last
//! writer. The context itself is two integers; carrying it is free, and
//! whether anything is *recorded* is decided by the
//! [`FlightRecorder`](crate::FlightRecorder).
//!
//! The thread-local plumbing mirrors the VM's `AccessContext` inheritance:
//! capture with [`current`], install with [`install`], and clear on thread
//! teardown with [`clear`].

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// The causal context carried by a traced request: which trace the current
/// work belongs to and which span new child spans should attach under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCtx {
    /// The trace this work belongs to (stable across every boundary hop).
    pub trace_id: u64,
    /// The span id child spans should name as their parent; `0` is the root.
    pub parent_span: u64,
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

// Trace and span ids come from one VM-global allocator so an id never
// collides across recorders, traces, or spans.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh VM-unique id (used for both trace and span ids).
pub fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// The calling thread's trace context, if it is inside a traced request.
pub fn current() -> Option<TraceCtx> {
    CURRENT.with(Cell::get)
}

/// Installs `ctx` as the calling thread's context (e.g. the context captured
/// at spawn time, or the one carried by a dispatched event).
pub fn install(ctx: Option<TraceCtx>) {
    CURRENT.with(|current| current.set(ctx));
}

/// Installs `ctx` and returns the previous context, for scoped restores
/// around a dispatch.
pub fn swap(ctx: Option<TraceCtx>) -> Option<TraceCtx> {
    CURRENT.with(|current| current.replace(ctx))
}

/// Clears the calling thread's context (thread teardown).
pub fn clear() {
    install(None);
}

// Small per-thread ordinal for the chrome export's `tid` field —
// `std::thread::ThreadId` is opaque, and the export wants a stable integer.
thread_local! {
    static THREAD_ORDINAL: Cell<u64> = const { Cell::new(0) };
}
static NEXT_ORDINAL: AtomicU64 = AtomicU64::new(1);

/// A small stable integer identifying the calling thread, allocated lazily.
pub fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|ordinal| {
        let mut id = ordinal.get();
        if id == 0 {
            id = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
            ordinal.set(id);
        }
        id
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_is_per_thread_and_clearable() {
        clear();
        assert_eq!(current(), None);
        let ctx = TraceCtx {
            trace_id: next_id(),
            parent_span: 0,
        };
        install(Some(ctx));
        assert_eq!(current(), Some(ctx));
        let handle = std::thread::spawn(current);
        assert_eq!(handle.join().unwrap(), None, "context does not leak");
        clear();
        assert_eq!(current(), None);
    }

    #[test]
    fn swap_restores_the_previous_context() {
        clear();
        let outer = TraceCtx {
            trace_id: 1,
            parent_span: 2,
        };
        install(Some(outer));
        let inner = TraceCtx {
            trace_id: 3,
            parent_span: 4,
        };
        let prev = swap(Some(inner));
        assert_eq!(prev, Some(outer));
        assert_eq!(current(), Some(inner));
        install(prev);
        assert_eq!(current(), Some(outer));
        clear();
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn thread_ordinals_are_stable_per_thread() {
        let here = thread_ordinal();
        assert_eq!(here, thread_ordinal());
        let there = std::thread::spawn(thread_ordinal).join().unwrap();
        assert_ne!(here, there);
    }
}
