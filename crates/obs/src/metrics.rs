//! Counters, gauges, log2-bucketed histograms, and the registries that
//! group them per application and roll them up VM-wide.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Number of histogram buckets: bucket 0 holds zeros, bucket *i* holds
/// values whose bit length is *i*, i.e. the range `[2^(i-1), 2^i)`.
pub const BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depths, live-thread counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over `u64` samples with logarithmic (power-of-two) buckets:
/// cheap to record into (two atomic adds and one atomic increment), mergeable,
/// and precise enough for latency distributions spanning nanoseconds to
/// seconds.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// The bucket index for `value`: its bit length (0 for 0).
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The exclusive upper bound of bucket `index` (`1` for the zero
    /// bucket, saturating at `u64::MAX`).
    pub fn bucket_bound(index: usize) -> u64 {
        if index >= 64 {
            u64::MAX
        } else {
            1u64 << index
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Histogram::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Folds another histogram's counts into this one.
    pub fn merge(&self, other: &Histogram) {
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// A consistent-enough copy for export (buckets are read individually;
    /// concurrent recording may skew totals by in-flight samples).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// Exported form of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket sample counts (see [`BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`), a conservative estimate good to a factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0;
        for (index, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return Histogram::bucket_bound(index);
            }
        }
        Histogram::bucket_bound(self.buckets.len())
    }

    /// [`HistogramSnapshot::quantile`] over several `q`s at once, in input
    /// order — the profiler's p50/p95/p99 triple in one call.
    pub fn quantiles(&self, qs: &[f64]) -> Vec<u64> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }

    /// One-line rendering for tables and `vmstat`:
    /// `count=N mean=M p50=…/p95=…/p99=…`. An empty histogram renders as
    /// `count=0`.
    pub fn render_compact(&self) -> String {
        if self.count == 0 {
            return "count=0".to_string();
        }
        let qs = self.quantiles(&[0.5, 0.95, 0.99]);
        format!(
            "count={} mean={} p50={}/p95={}/p99={}",
            self.count,
            self.mean(),
            qs[0],
            qs[1],
            qs[2]
        )
    }

    /// Adds another snapshot's counts into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }
}

/// A named group of metrics — one per application, plus one VM-wide.
/// Instruments are created on first use and shared via [`Arc`], so hot paths
/// hold the instrument directly and never touch the registry lock.
pub struct MetricsRegistry {
    name: String,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry labelled `name`.
    pub fn new(name: impl Into<String>) -> MetricsRegistry {
        MetricsRegistry {
            name: name.into(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// The registry's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Exports every instrument's current value.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            name: self.name.clone(),
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("name", &self.name)
            .field("counters", &self.counters.read().len())
            .field("gauges", &self.gauges.read().len())
            .field("histograms", &self.histograms.read().len())
            .finish()
    }
}

/// Exported form of a [`MetricsRegistry`] — and the unit of VM-wide rollup:
/// merging snapshots sums counters and histograms and drops gauges (an
/// instantaneous per-application depth has no meaningful VM-wide sum).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// The registry's label.
    pub name: String,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// An empty snapshot labelled `name`.
    pub fn empty(name: impl Into<String>) -> RegistrySnapshot {
        RegistrySnapshot {
            name: name.into(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Folds `other` into this snapshot: counters add, histograms merge,
    /// gauges are left alone (not meaningfully summable).
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(|| HistogramSnapshot {
                    count: 0,
                    sum: 0,
                    buckets: Vec::new(),
                })
                .merge(histogram);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        // Every boundary value lands in the bucket it opens.
        for i in 0..63 {
            let bound = Histogram::bucket_bound(i);
            assert_eq!(Histogram::bucket_of(bound), i + 1, "bound of bucket {i}");
        }
    }

    #[test]
    fn histogram_records_and_estimates_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 100, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1105);
        assert_eq!(snap.mean(), 184);
        assert_eq!(snap.buckets[0], 1, "one zero");
        assert_eq!(snap.buckets[1], 2, "two ones");
        assert_eq!(snap.buckets[2], 1, "one three");
        // Median lands in the ones bucket; the p99 in the 1000s bucket.
        assert_eq!(snap.quantile(0.5), 2);
        assert_eq!(snap.quantile(0.99), 1024);
        assert_eq!(snap.quantile(0.0), 1);
    }

    #[test]
    fn quantiles_and_compact_rendering() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 100, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(
            snap.quantiles(&[0.5, 0.95, 0.99]),
            vec![snap.quantile(0.5), snap.quantile(0.95), snap.quantile(0.99)]
        );
        assert_eq!(
            snap.render_compact(),
            "count=6 mean=184 p50=2/p95=1024/p99=1024"
        );
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.quantiles(&[0.5]), vec![0]);
        assert_eq!(empty.render_compact(), "count=0");
    }

    #[test]
    fn histogram_merge_adds_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(7);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 21);
        assert_eq!(a.snapshot().buckets[3], 2, "5 and 7 share [4,8)");
        // Snapshot-level merge agrees.
        let mut snap = Histogram::new().snapshot();
        snap.merge(&a.snapshot());
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 21);
    }

    #[test]
    fn registry_instruments_are_shared() {
        let reg = MetricsRegistry::new("test");
        let c1 = reg.counter("hits");
        let c2 = reg.counter("hits");
        c1.inc();
        c2.add(2);
        assert_eq!(reg.counter("hits").get(), 3);
        reg.gauge("depth").set(-4);
        reg.histogram("lat").record(42);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["hits"], 3);
        assert_eq!(snap.gauges["depth"], -4);
        assert_eq!(snap.histograms["lat"].count, 1);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = MetricsRegistry::new("vm");
        reg.counter("a").add(7);
        reg.gauge("g").set(3);
        reg.histogram("h").record(100);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn rollup_sums_counters_and_drops_gauges() {
        let mut total = RegistrySnapshot::empty("vm");
        let a = MetricsRegistry::new("app-1");
        a.counter("gui.dispatched").add(3);
        a.gauge("threads").set(2);
        let b = MetricsRegistry::new("app-2");
        b.counter("gui.dispatched").add(4);
        total.merge(&a.snapshot());
        total.merge(&b.snapshot());
        assert_eq!(total.counters["gui.dispatched"], 7);
        assert!(total.gauges.is_empty());
    }
}
