//! The permission-demand ledger: an always-on, bounded record of every
//! permission demand the VM's access-check chokepoint sees.
//!
//! The paper's operational pain is authoring per-user, per-code-source
//! policies by hand (§5.3); demanded-permission traces are enough to derive
//! minimal policies automatically. The ledger is the trace: one row per
//! distinct (app, code source, user, permission) tuple, counting granted and
//! denied outcomes with first/last timestamps on the hub's shared clock.
//!
//! The ledger is deliberately security-agnostic — it stores the *display
//! form* of permissions and the code-source URL as plain strings, so
//! `jmp-obs` keeps its no-`jmp-security` dependency rule. The inference
//! engine (`jmp_security::infer`) parses the strings back into typed
//! permissions.
//!
//! Hot-path contract: the VM's warm (decision-cache-hit) check must not
//! measurably slow down. The slow `record` path (string keys, map insert,
//! timestamps) runs only on full walks; it hands back an
//! [`Arc<DemandCell>`] the caller caches next to the access decision, so a
//! warm hit is exactly one relaxed `fetch_add` through
//! [`DemandLedger::bump`]. The aggregate `demands.recorded` instrument is
//! *derived* from the cells at export time
//! ([`DemandLedger::sync_instruments`]) rather than bumped per observation,
//! and the row timestamps have full-walk resolution: `last_ms` is the last
//! time the decision was re-derived, not the last cache hit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::metrics::Counter;

/// Default bound on distinct ledger rows. Past it, *new* tuples are dropped
/// (and counted); existing rows keep counting.
pub const DEFAULT_CAPACITY: usize = 8192;

/// The live accumulator behind one ledger row. Handed to the VM so a warm
/// cache hit bumps counts without re-deriving the string key.
#[derive(Debug)]
pub struct DemandCell {
    granted: AtomicU64,
    denied: AtomicU64,
    // Set once true: some walk granted this demand via the running user's
    // grants rather than the domain's own (paper §5.3 rule 1). Inference
    // uses it to route the permission into a `grant user` block.
    via_user: AtomicBool,
    first_ms: u64,
    last_ms: AtomicU64,
}

impl DemandCell {
    fn new(at_ms: u64) -> DemandCell {
        DemandCell {
            granted: AtomicU64::new(0),
            denied: AtomicU64::new(0),
            via_user: AtomicBool::new(false),
            first_ms: at_ms,
            last_ms: AtomicU64::new(at_ms),
        }
    }
}

/// One exported ledger row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandRow {
    /// The demanding application, when attributable.
    pub app: Option<u64>,
    /// Code-source URL of the domain the demand is charged to.
    pub source: String,
    /// The effective user at check time.
    pub user: Option<String>,
    /// Display form of the demanded permission (policy-entry syntax).
    pub permission: String,
    /// Times the demand was granted.
    pub granted: u64,
    /// Times the demand was denied (this domain refused it).
    pub denied: u64,
    /// Whether any grant went via the running user's permissions rather
    /// than the domain's own.
    pub via_user: bool,
    /// First full-walk observation, milliseconds on the hub clock.
    pub first_ms: u64,
    /// Latest full-walk observation (cache re-derivation), milliseconds on
    /// the hub clock. Warm cache hits bump counts only.
    pub last_ms: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    app: Option<u64>,
    source: Box<str>,
    user: Option<Box<str>>,
    permission: Box<str>,
}

struct LedgerInner {
    enabled: AtomicBool,
    // Bumped by reset so cached `Arc<DemandCell>` handles (e.g. inside the
    // VM's decision cache) can be detected as stale by epoch-tagging.
    epoch: AtomicU64,
    capacity: usize,
    map: RwLock<HashMap<Key, Arc<DemandCell>>>,
    // Observation totals of rows cleared by `reset`, so `recorded` stays
    // monotone across resets.
    recorded_base: AtomicU64,
    // Last total published into the `recorded` instrument.
    published: AtomicU64,
    recorded: Arc<Counter>,
    dropped: Arc<Counter>,
    unique: Arc<Counter>,
}

/// The bounded demand ledger. Cheap handle; clones share state.
#[derive(Clone)]
pub struct DemandLedger {
    inner: Arc<LedgerInner>,
}

impl DemandLedger {
    /// Creates a ledger bounded at `capacity` distinct rows, reporting into
    /// the given `demands.recorded` / `demands.dropped` / `demands.unique`
    /// counter instruments.
    pub fn with_instruments(
        capacity: usize,
        recorded: Arc<Counter>,
        dropped: Arc<Counter>,
        unique: Arc<Counter>,
    ) -> DemandLedger {
        DemandLedger {
            inner: Arc::new(LedgerInner {
                enabled: AtomicBool::new(true),
                epoch: AtomicU64::new(0),
                capacity: capacity.max(1),
                map: RwLock::new(HashMap::new()),
                recorded_base: AtomicU64::new(0),
                published: AtomicU64::new(0),
                recorded,
                dropped,
                unique,
            }),
        }
    }

    /// A standalone ledger with private instruments (tests, benchmarks).
    pub fn new(capacity: usize) -> DemandLedger {
        DemandLedger::with_instruments(
            capacity,
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
        )
    }

    /// Whether demands are being recorded. One relaxed load — the VM checks
    /// this before touching the ledger at all.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (it is on by default).
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The reset epoch. A cached [`DemandCell`] handle tagged with an older
    /// epoch belongs to a cleared ledger and must be re-recorded.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Records one demand observation, creating the row if it is new.
    /// Returns the row's live cell for the caller to cache; `None` when the
    /// ledger is full (the observation is counted as dropped) or disabled.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        app: Option<u64>,
        source: &str,
        user: Option<&str>,
        permission: &str,
        granted: bool,
        via_user: bool,
        at_ms: u64,
    ) -> Option<Arc<DemandCell>> {
        if !self.enabled() {
            return None;
        }
        let key = Key {
            app,
            source: source.into(),
            user: user.map(Into::into),
            permission: permission.into(),
        };
        // The read guard must be released as a statement of its own before
        // the write path runs — holding it across `map.write()` on the same
        // thread deadlocks.
        let existing = self.inner.map.read().get(&key).map(Arc::clone);
        let cell = match existing {
            Some(cell) => cell,
            None => {
                let mut map = self.inner.map.write();
                if map.len() >= self.inner.capacity && !map.contains_key(&key) {
                    drop(map);
                    self.inner.dropped.inc();
                    return None;
                }
                Arc::clone(map.entry(key).or_insert_with(|| {
                    self.inner.unique.inc();
                    Arc::new(DemandCell::new(at_ms))
                }))
            }
        };
        self.bump(&cell, granted);
        if via_user {
            cell.via_user.store(true, Ordering::Relaxed);
        }
        cell.last_ms.store(at_ms, Ordering::Relaxed);
        Some(cell)
    }

    /// Bumps a previously returned cell: the warm-hit fast path. Exactly
    /// one relaxed `fetch_add` — no clock, no strings, no shared counters.
    /// The `via_user` flag and timestamps are full-walk facts recorded by
    /// [`DemandLedger::record`]; the aggregate `demands.recorded`
    /// instrument is derived from the cells at export time.
    pub fn bump(&self, cell: &DemandCell, granted: bool) {
        if granted {
            cell.granted.fetch_add(1, Ordering::Relaxed);
        } else {
            cell.denied.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Exports every row, sorted by (source, user, permission, app) so
    /// reports and inference are deterministic.
    pub fn rows(&self) -> Vec<DemandRow> {
        let mut rows: Vec<DemandRow> = self
            .inner
            .map
            .read()
            .iter()
            .map(|(key, cell)| DemandRow {
                app: key.app,
                source: key.source.to_string(),
                user: key.user.as_deref().map(str::to_owned),
                permission: key.permission.to_string(),
                granted: cell.granted.load(Ordering::Relaxed),
                denied: cell.denied.load(Ordering::Relaxed),
                via_user: cell.via_user.load(Ordering::Relaxed),
                first_ms: cell.first_ms,
                last_ms: cell.last_ms.load(Ordering::Relaxed),
            })
            .collect();
        rows.sort_by(|a, b| {
            (&a.source, &a.user, &a.permission, a.app).cmp(&(
                &b.source,
                &b.user,
                &b.permission,
                b.app,
            ))
        });
        rows
    }

    /// Number of distinct rows currently held.
    pub fn unique_live(&self) -> usize {
        self.inner.map.read().len()
    }

    /// Total observations recorded (including warm bumps), derived from the
    /// live cells plus the totals of rows cleared by earlier resets.
    pub fn recorded(&self) -> u64 {
        let live: u64 = self
            .inner
            .map
            .read()
            .values()
            .map(|cell| cell.granted.load(Ordering::Relaxed) + cell.denied.load(Ordering::Relaxed))
            .sum();
        self.inner.recorded_base.load(Ordering::Relaxed) + live
    }

    /// Publishes the derived observation total into the `demands.recorded`
    /// instrument. The warm bump path never touches shared counters, so the
    /// hub calls this when it exports a snapshot or rollup.
    pub fn sync_instruments(&self) {
        let total = self.recorded();
        let previous = self.inner.published.swap(total, Ordering::Relaxed);
        self.inner.recorded.add(total.saturating_sub(previous));
    }

    /// Observations refused because the ledger was at capacity.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// Clears every row and bumps the epoch so cached cells are re-derived.
    /// The cleared rows' observation totals fold into `recorded`'s base so
    /// the aggregate stays monotone.
    pub fn reset(&self) {
        let mut map = self.inner.map.write();
        let cleared: u64 = map
            .values()
            .map(|cell| cell.granted.load(Ordering::Relaxed) + cell.denied.load(Ordering::Relaxed))
            .sum();
        self.inner
            .recorded_base
            .fetch_add(cleared, Ordering::Relaxed);
        map.clear();
        self.inner.epoch.fetch_add(1, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for DemandLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DemandLedger")
            .field("capacity", &self.inner.capacity)
            .field("unique_live", &self.unique_live())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_exports_rows() {
        let ledger = DemandLedger::new(16);
        ledger.record(
            Some(1),
            "file:/apps/cat",
            Some("alice"),
            "permission file \"/home/alice/a\" \"read\"",
            true,
            true,
            5,
        );
        ledger.record(
            Some(1),
            "file:/apps/cat",
            Some("alice"),
            "permission file \"/home/alice/a\" \"read\"",
            true,
            true,
            9,
        );
        ledger.record(
            Some(2),
            "file:/apps/cat",
            Some("bob"),
            "permission file \"/home/alice/a\" \"read\"",
            false,
            false,
            11,
        );
        let rows = ledger.rows();
        assert_eq!(rows.len(), 2);
        let alice = rows
            .iter()
            .find(|r| r.user.as_deref() == Some("alice"))
            .unwrap();
        assert_eq!(alice.granted, 2);
        assert_eq!(alice.denied, 0);
        assert!(alice.via_user);
        assert_eq!(alice.first_ms, 5);
        assert_eq!(alice.last_ms, 9);
        let bob = rows
            .iter()
            .find(|r| r.user.as_deref() == Some("bob"))
            .unwrap();
        assert_eq!(bob.denied, 1);
        assert!(!bob.via_user);
        assert_eq!(ledger.recorded(), 3);
        assert_eq!(ledger.unique_live(), 2);
    }

    #[test]
    fn warm_bump_path_counts_without_rekeying() {
        let ledger = DemandLedger::new(16);
        let cell = ledger
            .record(
                None,
                "file:/apps/sh",
                None,
                "permission runtime \"x\"",
                true,
                false,
                1,
            )
            .unwrap();
        for _ in 0..8 {
            ledger.bump(&cell, true);
        }
        let rows = ledger.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].granted, 9);
        // Timestamps have full-walk resolution: warm bumps leave last_ms at
        // the last `record` call.
        assert_eq!(rows[0].last_ms, 1);
        assert_eq!(ledger.recorded(), 9);
    }

    #[test]
    fn recorded_survives_reset_and_syncs_instruments() {
        let recorded = Arc::new(Counter::new());
        let ledger = DemandLedger::with_instruments(
            8,
            Arc::clone(&recorded),
            Arc::new(Counter::new()),
            Arc::new(Counter::new()),
        );
        let cell = ledger.record(None, "s", None, "p", true, false, 1).unwrap();
        ledger.bump(&cell, true);
        ledger.bump(&cell, false);
        assert_eq!(ledger.recorded(), 3);
        // The instrument lags until a sync.
        assert_eq!(recorded.get(), 0);
        ledger.sync_instruments();
        assert_eq!(recorded.get(), 3);
        // Reset folds the cleared totals into the base: still monotone.
        ledger.reset();
        assert_eq!(ledger.recorded(), 3);
        ledger.record(None, "s", None, "p", true, false, 2);
        assert_eq!(ledger.recorded(), 4);
        ledger.sync_instruments();
        assert_eq!(recorded.get(), 4);
    }

    #[test]
    fn capacity_bounds_unique_rows_and_counts_drops() {
        let ledger = DemandLedger::new(2);
        for i in 0..5 {
            ledger.record(
                None,
                "file:/apps/sh",
                None,
                &format!("permission runtime \"t{i}\""),
                true,
                false,
                1,
            );
        }
        assert_eq!(ledger.unique_live(), 2);
        assert_eq!(ledger.dropped(), 3);
        // Known rows keep counting at capacity.
        ledger.record(
            None,
            "file:/apps/sh",
            None,
            "permission runtime \"t0\"",
            true,
            false,
            2,
        );
        assert_eq!(ledger.rows().iter().map(|r| r.granted).sum::<u64>(), 3);
    }

    #[test]
    fn reset_clears_rows_and_bumps_epoch() {
        let ledger = DemandLedger::new(8);
        ledger.record(None, "s", None, "p", true, false, 1);
        let before = ledger.epoch();
        ledger.reset();
        assert!(ledger.rows().is_empty());
        assert_eq!(ledger.epoch(), before + 1);
    }

    #[test]
    fn disabled_ledger_records_nothing() {
        let ledger = DemandLedger::new(8);
        ledger.set_enabled(false);
        assert!(ledger
            .record(None, "s", None, "p", true, false, 1)
            .is_none());
        assert_eq!(ledger.recorded(), 0);
        assert!(ledger.rows().is_empty());
        ledger.set_enabled(true);
        assert!(ledger
            .record(None, "s", None, "p", true, false, 1)
            .is_some());
    }

    #[test]
    fn rows_roundtrip_through_json() {
        let ledger = DemandLedger::new(8);
        ledger.record(
            Some(3),
            "file:/apps/edit",
            Some("alice"),
            "permission awt \"showWindow\"",
            true,
            false,
            7,
        );
        let rows = ledger.rows();
        let json = serde_json::to_string(&rows[0]).unwrap();
        let back: DemandRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rows[0]);
    }
}
