//! Dispatcher watchdogs: per-thread heartbeats with stall detection.
//!
//! The paper's per-application event queues (§5.4 / F7) mean a stuck
//! listener freezes *one* application's dispatcher — by design the other
//! applications keep running, which also means nobody notices the freeze.
//! The watchdog makes it visible: every dispatcher (and system helper like
//! the reaper) registers a [`Heartbeat`] and beats it on every loop
//! iteration. A dispatcher with no work does **not** poll-beat — it
//! [parks](Heartbeat::park) the heartbeat before blocking for real on its
//! queue, and unparks when work (or teardown) wakes it. A checker scans the
//! registry and flags entries whose last beat is older than the configurable
//! threshold, *exempting parked entries*: idle is not stalled. Only a thread
//! that went quiet while claiming to be busy trips the watchdog.
//!
//! Beating is two relaxed atomic stores — cheap enough for hot loops.
//! Raising the stall event, bumping the metric, and surfacing the rows in
//! `vmstat` is the hub's and runtime layer's job; this module only keeps
//! the clocks.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::hub::ObsClock;

/// Default stall threshold. Generous on purpose: legitimate pauses (the
/// reaper joining a dying application's threads for up to 2s) must not
/// trip it; tests that inject stalls lower it.
pub const DEFAULT_STALL_THRESHOLD: Duration = Duration::from_secs(5);

struct HeartbeatInner {
    name: String,
    app: Option<u64>,
    clock: ObsClock,
    last_ms: AtomicU64,
    beats: AtomicU64,
    stalled: AtomicBool,
    /// Deliberately idle: blocked on an empty queue, not stuck in work.
    parked: AtomicBool,
}

/// A registered thread's heartbeat handle. Cheap to clone; beat it from
/// the watched loop.
#[derive(Clone)]
pub struct Heartbeat {
    inner: Arc<HeartbeatInner>,
}

impl Heartbeat {
    /// Records a beat: the thread is alive and making progress.
    pub fn beat(&self) {
        self.inner
            .last_ms
            .store(self.inner.clock.now_ms(), Ordering::Relaxed);
        self.inner.beats.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks the thread deliberately idle (about to block on an empty
    /// queue). A parked heartbeat is exempt from stall detection until it
    /// [unparks](Heartbeat::unpark) — a dispatcher with nothing to dispatch
    /// is healthy, not hung, and must not need periodic wakeups to prove it.
    pub fn park(&self) {
        self.beat();
        self.inner.parked.store(true, Ordering::Relaxed);
    }

    /// Clears the parked state: the thread woke to work (or to exit) and is
    /// accountable to the stall threshold again.
    pub fn unpark(&self) {
        self.inner.parked.store(false, Ordering::Relaxed);
        self.beat();
    }

    /// Returns `true` while parked.
    pub fn is_parked(&self) -> bool {
        self.inner.parked.load(Ordering::Relaxed)
    }

    /// The registered name (e.g. `awt-dispatch-3`).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The application the watched thread serves, if any.
    pub fn app(&self) -> Option<u64> {
        self.inner.app
    }
}

impl std::fmt::Debug for Heartbeat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Heartbeat")
            .field("name", &self.inner.name)
            .field("beats", &self.inner.beats.load(Ordering::Relaxed))
            .finish()
    }
}

/// One row of watchdog state, as shown by `vmstat`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchdogRow {
    /// The registered thread name.
    pub name: String,
    /// The application it serves, if any.
    pub app: Option<u64>,
    /// Milliseconds since the last beat.
    pub age_ms: u64,
    /// Total beats recorded.
    pub beats: u64,
    /// Whether the entry is currently past the stall threshold.
    pub stalled: bool,
    /// Whether the thread is deliberately idle (blocked on an empty queue).
    /// Parked entries are exempt from stall detection.
    pub parked: bool,
}

struct RegistryInner {
    clock: ObsClock,
    threshold: Mutex<Duration>,
    entries: Mutex<BTreeMap<String, Arc<HeartbeatInner>>>,
}

/// The heartbeat registry. Cheap handle; clones share the registry.
#[derive(Clone)]
pub struct WatchdogRegistry {
    inner: Arc<RegistryInner>,
}

impl WatchdogRegistry {
    /// Creates a registry stamping beats with `clock` (the hub's shared
    /// clock) and the default stall threshold.
    pub fn with_clock(clock: ObsClock) -> WatchdogRegistry {
        WatchdogRegistry {
            inner: Arc::new(RegistryInner {
                clock,
                threshold: Mutex::new(DEFAULT_STALL_THRESHOLD),
                entries: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Registers (or replaces) the heartbeat named `name`. Registration
    /// counts as a first beat, so a fresh entry is never already stalled.
    pub fn register(&self, name: impl Into<String>, app: Option<u64>) -> Heartbeat {
        let name = name.into();
        let inner = Arc::new(HeartbeatInner {
            name: name.clone(),
            app,
            clock: self.inner.clock,
            last_ms: AtomicU64::new(self.inner.clock.now_ms()),
            beats: AtomicU64::new(0),
            stalled: AtomicBool::new(false),
            parked: AtomicBool::new(false),
        });
        self.inner.entries.lock().insert(name, Arc::clone(&inner));
        Heartbeat { inner }
    }

    /// Removes the heartbeat named `name` (the watched thread exited
    /// cleanly — a retired dispatcher is not a stalled one).
    pub fn deregister(&self, name: &str) {
        self.inner.entries.lock().remove(name);
    }

    /// The current stall threshold.
    pub fn threshold(&self) -> Duration {
        *self.inner.threshold.lock()
    }

    /// Sets the stall threshold.
    pub fn set_threshold(&self, threshold: Duration) {
        *self.inner.threshold.lock() = threshold;
    }

    fn row(&self, entry: &HeartbeatInner, now_ms: u64) -> WatchdogRow {
        WatchdogRow {
            name: entry.name.clone(),
            app: entry.app,
            age_ms: now_ms.saturating_sub(entry.last_ms.load(Ordering::Relaxed)),
            beats: entry.beats.load(Ordering::Relaxed),
            stalled: entry.stalled.load(Ordering::Relaxed),
            parked: entry.parked.load(Ordering::Relaxed),
        }
    }

    /// Every registered heartbeat's current state, in name order.
    pub fn rows(&self) -> Vec<WatchdogRow> {
        let now_ms = self.inner.clock.now_ms();
        self.inner
            .entries
            .lock()
            .values()
            .map(|entry| self.row(entry, now_ms))
            .collect()
    }

    /// One checker pass: returns the entries that crossed the stall
    /// threshold *since the last pass* (each stall is reported once; a
    /// beat clears the latch so a later stall fires again). The caller —
    /// [`ObsHub::check_watchdogs`](crate::ObsHub::check_watchdogs) — turns
    /// the returned rows into events and metrics.
    pub fn check(&self) -> Vec<WatchdogRow> {
        let threshold_ms = self.threshold().as_millis() as u64;
        let now_ms = self.inner.clock.now_ms();
        let mut newly_stalled = Vec::new();
        for entry in self.inner.entries.lock().values() {
            if entry.parked.load(Ordering::Relaxed) {
                // Idle ≠ stalled: a parked thread blocks indefinitely on
                // purpose and beats again the moment it unparks.
                entry.stalled.store(false, Ordering::Relaxed);
                continue;
            }
            let age = now_ms.saturating_sub(entry.last_ms.load(Ordering::Relaxed));
            if age > threshold_ms {
                if !entry.stalled.swap(true, Ordering::Relaxed) {
                    newly_stalled.push(self.row(entry, now_ms));
                }
            } else {
                entry.stalled.store(false, Ordering::Relaxed);
            }
        }
        newly_stalled
    }
}

impl std::fmt::Debug for WatchdogRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatchdogRegistry")
            .field("entries", &self.inner.entries.lock().len())
            .field("threshold", &self.threshold())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_registration_is_not_stalled() {
        let registry = WatchdogRegistry::with_clock(ObsClock::new());
        registry.set_threshold(Duration::from_millis(50));
        registry.register("awt-dispatch-1", Some(1));
        assert!(registry.check().is_empty());
        let rows = registry.rows();
        assert_eq!(rows.len(), 1);
        assert!(!rows[0].stalled);
        assert_eq!(rows[0].app, Some(1));
    }

    #[test]
    fn silence_past_threshold_stalls_once_and_beat_recovers() {
        let registry = WatchdogRegistry::with_clock(ObsClock::new());
        registry.set_threshold(Duration::from_millis(20));
        let hb = registry.register("app-reaper", None);
        std::thread::sleep(Duration::from_millis(60));
        let stalled = registry.check();
        assert_eq!(stalled.len(), 1, "the silent thread is flagged");
        assert_eq!(stalled[0].name, "app-reaper");
        assert!(stalled[0].age_ms >= 20);
        assert!(registry.check().is_empty(), "a stall is reported once");
        assert!(registry.rows()[0].stalled, "but stays visible in rows");
        hb.beat();
        assert!(registry.check().is_empty());
        assert!(!registry.rows()[0].stalled, "a beat clears the latch");
        // Going quiet again re-fires.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(registry.check().len(), 1);
    }

    #[test]
    fn deregister_removes_the_entry() {
        let registry = WatchdogRegistry::with_clock(ObsClock::new());
        registry.register("awt-dispatch-2", Some(2));
        registry.deregister("awt-dispatch-2");
        assert!(registry.rows().is_empty());
        registry.set_threshold(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(10));
        assert!(registry.check().is_empty(), "gone means never stalled");
    }

    #[test]
    fn parked_entries_never_stall() {
        let registry = WatchdogRegistry::with_clock(ObsClock::new());
        registry.set_threshold(Duration::from_millis(20));
        let hb = registry.register("awt-dispatch-1", Some(1));
        hb.park();
        assert!(hb.is_parked());
        std::thread::sleep(Duration::from_millis(60));
        assert!(registry.check().is_empty(), "idle is not stalled");
        let row = &registry.rows()[0];
        assert!(row.parked && !row.stalled);
        // Unpark re-arms stall detection — and counts as a fresh beat, so
        // the thread gets a full threshold before it can stall.
        hb.unpark();
        assert!(!hb.is_parked());
        assert!(registry.check().is_empty());
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(registry.check().len(), 1, "quiet while unparked stalls");
    }

    #[test]
    fn park_clears_an_existing_stall_latch() {
        let registry = WatchdogRegistry::with_clock(ObsClock::new());
        registry.set_threshold(Duration::from_millis(10));
        let hb = registry.register("awt-dispatch-2", None);
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(registry.check().len(), 1);
        hb.park();
        registry.check();
        assert!(!registry.rows()[0].stalled, "parking resolves the stall");
    }

    #[test]
    fn beats_are_counted() {
        let registry = WatchdogRegistry::with_clock(ObsClock::new());
        let hb = registry.register("awt-input", None);
        for _ in 0..3 {
            hb.beat();
        }
        assert_eq!(registry.rows()[0].beats, 3);
    }
}
