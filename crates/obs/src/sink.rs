//! The VM-wide event stream: a bounded ring of structured events with
//! subscriber fan-out, built so publishing never blocks the code being
//! observed.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::hub::ObsClock;

/// Default ring capacity.
pub const DEFAULT_CAPACITY: usize = 1024;

/// What an [`Event`] records. Lifecycle and security events only — per-byte
/// or per-dispatch activity is far too hot for an event stream and is
/// counted in [`MetricsRegistry`](crate::MetricsRegistry) instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// An application was exec'd (paper §5.1).
    AppExec,
    /// An application requested exit (code in `detail`).
    AppExit,
    /// The reaper finished tearing an application down.
    AppReap,
    /// A permission check was denied (the demand in `detail`); the same
    /// denial is recorded in the [`AuditLog`](crate::AuditLog).
    AccessDenied,
    /// A class was defined by a loader (name in `detail`).
    ClassDefined,
    /// A class was *re*-defined locally from the re-load list — the paper's
    /// per-application `System` mechanism (§5.5) firing.
    ClassReloaded,
    /// A watchdog found a dispatcher or helper thread past its stall
    /// threshold (name and last-beat age in `detail`).
    Watchdog,
    /// An allocation was refused because the owning application's resource
    /// quota was exhausted (resource and limit in `detail`); the same
    /// denial is recorded in the [`AuditLog`](crate::AuditLog).
    QuotaDenied,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventKind::AppExec => "app-exec",
            EventKind::AppExit => "app-exit",
            EventKind::AppReap => "app-reap",
            EventKind::AccessDenied => "access-denied",
            EventKind::ClassDefined => "class-defined",
            EventKind::ClassReloaded => "class-reloaded",
            EventKind::Watchdog => "watchdog-stall",
            EventKind::QuotaDenied => "quota-denied",
        };
        f.write_str(s)
    }
}

/// One record in the VM's event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Publication order (per sink, starting at 0).
    pub seq: u64,
    /// Milliseconds on the sink's clock (the hub's shared clock, so
    /// directly comparable with audit and span timestamps).
    pub at_ms: u64,
    /// What happened.
    pub kind: EventKind,
    /// The application involved, when attributable.
    pub app: Option<u64>,
    /// The effective user, when attributable.
    pub user: Option<String>,
    /// Kind-specific payload (class name, permission text, exit code).
    pub detail: String,
}

struct SinkInner {
    enabled: AtomicBool,
    capacity: usize,
    clock: ObsClock,
    next_seq: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<Event>>,
    subscribers: Mutex<Vec<Sender<Event>>>,
}

/// The bounded event sink. Cheap handle; clones share the sink.
///
/// The hot-path contract: [`EventSink::publish`] on a disabled sink is one
/// relaxed atomic load and returns; on an enabled sink it takes one short
/// mutex to rotate the ring and never blocks on subscribers (fan-out uses
/// unbounded channels, and a subscriber that went away is dropped).
#[derive(Clone)]
pub struct EventSink {
    inner: Arc<SinkInner>,
}

impl EventSink {
    /// Creates an enabled sink holding up to `capacity` recent events, on
    /// its own fresh clock (the hub adopts it as the shared clock).
    pub fn new(capacity: usize) -> EventSink {
        EventSink::build(capacity.max(1), ObsClock::new(), true)
    }

    /// Creates a disabled sink: [`EventSink::publish`] is a no-op costing
    /// one atomic load. Can be enabled later with [`EventSink::set_enabled`].
    pub fn disabled() -> EventSink {
        EventSink::build(DEFAULT_CAPACITY, ObsClock::new(), false)
    }

    /// Creates an enabled sink stamping events against an explicit clock.
    pub fn with_clock(capacity: usize, clock: ObsClock) -> EventSink {
        EventSink::build(capacity.max(1), clock, true)
    }

    fn build(capacity: usize, clock: ObsClock, enabled: bool) -> EventSink {
        EventSink {
            inner: Arc::new(SinkInner {
                enabled: AtomicBool::new(enabled),
                capacity,
                clock,
                next_seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                ring: Mutex::new(VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY))),
                subscribers: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The clock events are stamped with.
    pub fn clock(&self) -> ObsClock {
        self.inner.clock
    }

    /// Whether publishing currently records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables the sink.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Publishes an event. When the ring is full the *oldest* event is
    /// dropped (and counted) — the observed code never waits for readers.
    pub fn publish(
        &self,
        kind: EventKind,
        app: Option<u64>,
        user: Option<String>,
        detail: impl Into<String>,
    ) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let event = Event {
            seq: self.inner.next_seq.fetch_add(1, Ordering::Relaxed),
            at_ms: self.inner.clock.now_ms(),
            kind,
            app,
            user,
            detail: detail.into(),
        };
        {
            let mut ring = self.inner.ring.lock();
            if ring.len() >= self.inner.capacity {
                ring.pop_front();
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(event.clone());
        }
        let mut subscribers = self.inner.subscribers.lock();
        // send() fails only when the receiver is gone; prune as we go.
        subscribers.retain(|tx| tx.send(event.clone()).is_ok());
    }

    /// Registers a subscriber fed every event published from now on, over an
    /// unbounded channel (slow subscribers accumulate backlog in their own
    /// channel, not in the publisher).
    pub fn subscribe(&self) -> Receiver<Event> {
        let (tx, rx) = unbounded();
        self.inner.subscribers.lock().push(tx);
        rx
    }

    /// The retained ring of recent events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.inner.ring.lock().iter().cloned().collect()
    }

    /// Total events ever published (including since-rotated ones).
    pub fn published(&self) -> u64 {
        self.inner.next_seq.load(Ordering::Relaxed)
    }

    /// Events rotated out of a full ring.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for EventSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventSink")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.inner.capacity)
            .field("published", &self.published())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_in_order_with_seq() {
        let sink = EventSink::new(8);
        sink.publish(EventKind::AppExec, Some(1), Some("alice".into()), "shell");
        sink.publish(EventKind::AppExit, Some(1), None, "0");
        let events = sink.recent();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].kind, EventKind::AppExec);
        assert_eq!(events[0].user.as_deref(), Some("alice"));
        assert_eq!(events[1].seq, 1);
        assert_eq!(sink.published(), 2);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn overflow_rotates_oldest_and_counts() {
        let sink = EventSink::new(3);
        for i in 0..10 {
            sink.publish(EventKind::ClassDefined, None, None, format!("C{i}"));
        }
        let events = sink.recent();
        assert_eq!(events.len(), 3, "ring stays bounded");
        assert_eq!(events[0].detail, "C7", "oldest events rotated out");
        assert_eq!(events[2].detail, "C9");
        assert_eq!(sink.published(), 10);
        assert_eq!(sink.dropped(), 7, "every rotation is accounted for");
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = EventSink::disabled();
        assert!(!sink.is_enabled());
        sink.publish(EventKind::AppExec, None, None, "x");
        assert_eq!(sink.published(), 0);
        assert!(sink.recent().is_empty());
        sink.set_enabled(true);
        sink.publish(EventKind::AppExec, None, None, "y");
        assert_eq!(sink.published(), 1);
    }

    #[test]
    fn subscribers_receive_fanout_and_prune_on_drop() {
        let sink = EventSink::new(8);
        let rx1 = sink.subscribe();
        let rx2 = sink.subscribe();
        sink.publish(EventKind::AccessDenied, Some(2), Some("bob".into()), "file");
        assert_eq!(rx1.recv().unwrap().kind, EventKind::AccessDenied);
        assert_eq!(rx2.recv().unwrap().detail, "file");
        drop(rx2);
        // Publishing past a dropped subscriber neither blocks nor errors.
        sink.publish(EventKind::AppReap, Some(2), None, "");
        assert_eq!(rx1.recv().unwrap().kind, EventKind::AppReap);
    }

    #[test]
    fn events_roundtrip_through_json() {
        let event = Event {
            seq: 9,
            at_ms: 120,
            kind: EventKind::ClassReloaded,
            app: Some(3),
            user: None,
            detail: "java.lang.System".into(),
        };
        let json = serde_json::to_string(&event).unwrap();
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);
    }
}
