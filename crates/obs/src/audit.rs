//! The security audit trail: a bounded log of *denied* permission checks.
//!
//! The paper's multi-user model (§5.3) makes "who was denied what" the
//! question an administrator actually asks; grants are policy, denials are
//! incidents. The log therefore records denials only — a successful check
//! leaves a histogram sample, not an audit record.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::hub::ObsClock;
use crate::recorder::Span;

/// Default number of denial records retained.
pub const DEFAULT_CAPACITY: usize = 512;

/// One audited incident: a denied permission check, or an application
/// fault recorded through the same trail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Denial order (per log, starting at 0).
    pub seq: u64,
    /// Milliseconds on the log's clock (the hub's shared clock, so
    /// directly comparable with event and span timestamps).
    pub at_ms: u64,
    /// The effective user at check time, when known.
    pub user: Option<String>,
    /// The application whose stack failed the check, when attributable.
    pub app: Option<u64>,
    /// Display form of the demanded permission.
    pub permission: String,
    /// Why it was refused — the protection domain (or message) that did not
    /// imply the demand.
    pub context: String,
    /// The flight recorder's span ring at incident time — the causal
    /// history that led to the denial or fault. Empty when nothing was
    /// traced.
    pub trace: Vec<Span>,
}

struct LogInner {
    capacity: usize,
    clock: ObsClock,
    total: AtomicU64,
    ring: Mutex<VecDeque<AuditRecord>>,
}

/// The bounded denial log. Cheap handle; clones share the log.
#[derive(Clone)]
pub struct AuditLog {
    inner: Arc<LogInner>,
}

impl AuditLog {
    /// Creates a log retaining the most recent `capacity` denials, on its
    /// own fresh clock.
    pub fn new(capacity: usize) -> AuditLog {
        AuditLog::with_clock(capacity, ObsClock::new())
    }

    /// Creates a log stamping records against an explicit clock (the hub's
    /// shared clock).
    pub fn with_clock(capacity: usize, clock: ObsClock) -> AuditLog {
        AuditLog {
            inner: Arc::new(LogInner {
                capacity: capacity.max(1),
                clock,
                total: AtomicU64::new(0),
                ring: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// The clock records are stamped with.
    pub fn clock(&self) -> ObsClock {
        self.inner.clock
    }

    /// Records a denial. Oldest records rotate out when full; `total`
    /// keeps counting regardless.
    pub fn record(
        &self,
        user: Option<String>,
        app: Option<u64>,
        permission: impl Into<String>,
        context: impl Into<String>,
    ) {
        self.record_with_dump(user, app, permission, context, Vec::new());
    }

    /// Records a denial carrying a flight-recorder dump — the span ring
    /// snapshotted at incident time.
    pub fn record_with_dump(
        &self,
        user: Option<String>,
        app: Option<u64>,
        permission: impl Into<String>,
        context: impl Into<String>,
        trace: Vec<Span>,
    ) {
        let record = AuditRecord {
            seq: self.inner.total.fetch_add(1, Ordering::Relaxed),
            at_ms: self.inner.clock.now_ms(),
            user,
            app,
            permission: permission.into(),
            context: context.into(),
            trace,
        };
        let mut ring = self.inner.ring.lock();
        if ring.len() >= self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Total denials ever recorded, including since-rotated ones.
    pub fn total(&self) -> u64 {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// The retained denials, oldest first.
    pub fn recent(&self) -> Vec<AuditRecord> {
        self.inner.ring.lock().iter().cloned().collect()
    }

    /// Retained denials filtered by user and/or application; `None` matches
    /// everything on that axis.
    pub fn query(&self, user: Option<&str>, app: Option<u64>) -> Vec<AuditRecord> {
        self.inner
            .ring
            .lock()
            .iter()
            .filter(|r| user.is_none_or(|u| r.user.as_deref() == Some(u)))
            .filter(|r| app.is_none_or(|a| r.app == Some(a)))
            .cloned()
            .collect()
    }
}

impl std::fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditLog")
            .field("capacity", &self.inner.capacity)
            .field("total", &self.total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries_by_user_and_app() {
        let log = AuditLog::new(16);
        log.record(
            Some("bob".into()),
            Some(2),
            "(file /home/alice/- read)",
            "d1",
        );
        log.record(Some("alice".into()), Some(1), "(runtime setUser)", "d2");
        log.record(Some("bob".into()), Some(3), "(runtime readMetrics)", "d3");
        assert_eq!(log.total(), 3);
        let bobs = log.query(Some("bob"), None);
        assert_eq!(bobs.len(), 2);
        assert!(bobs.iter().all(|r| r.user.as_deref() == Some("bob")));
        let app3 = log.query(None, Some(3));
        assert_eq!(app3.len(), 1);
        assert_eq!(app3[0].permission, "(runtime readMetrics)");
        assert_eq!(log.query(Some("bob"), Some(2)).len(), 1);
        assert_eq!(log.query(Some("carol"), None).len(), 0);
    }

    #[test]
    fn rotation_keeps_total_counting() {
        let log = AuditLog::new(2);
        for i in 0..5 {
            log.record(None, None, format!("p{i}"), "");
        }
        assert_eq!(log.total(), 5);
        let recent = log.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].permission, "p3");
        assert_eq!(recent[1].seq, 4);
    }

    #[test]
    fn dump_rides_the_record() {
        let log = AuditLog::new(4);
        let span = Span {
            id: 11,
            trace_id: 3,
            parent: 0,
            category: crate::SpanCategory::Exec,
            name: "exec:snoop".into(),
            app: Some(2),
            thread: 1,
            start_us: 500,
            dur_us: 80,
        };
        log.record_with_dump(
            Some("bob".into()),
            Some(2),
            "(file /home/alice/x read)",
            "file:/apps/snoop",
            vec![span.clone()],
        );
        let record = log.recent().remove(0);
        assert_eq!(record.trace, vec![span]);
        // Plain records carry an empty dump.
        log.record(None, None, "(runtime x)", "");
        assert!(log.recent()[1].trace.is_empty());
    }

    #[test]
    fn records_roundtrip_through_json() {
        let log = AuditLog::new(4);
        log.record(
            Some("bob".into()),
            Some(7),
            "(awt showWindow)",
            "file:/apps/ps",
        );
        let record = log.recent().remove(0);
        let json = serde_json::to_string(&record).unwrap();
        let back: AuditRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }
}
