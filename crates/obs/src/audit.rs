//! The security audit trail: a bounded log of *denied* permission checks.
//!
//! The paper's multi-user model (§5.3) makes "who was denied what" the
//! question an administrator actually asks; grants are policy, denials are
//! incidents. The log therefore records denials only — a successful check
//! leaves a histogram sample, not an audit record.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Default number of denial records retained.
pub const DEFAULT_CAPACITY: usize = 512;

/// One denied permission check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Denial order (per log, starting at 0).
    pub seq: u64,
    /// Milliseconds since the log was created.
    pub at_ms: u64,
    /// The effective user at check time, when known.
    pub user: Option<String>,
    /// The application whose stack failed the check, when attributable.
    pub app: Option<u64>,
    /// Display form of the demanded permission.
    pub permission: String,
    /// Why it was refused — the protection domain (or message) that did not
    /// imply the demand.
    pub context: String,
}

struct LogInner {
    capacity: usize,
    start: Instant,
    total: AtomicU64,
    ring: Mutex<VecDeque<AuditRecord>>,
}

/// The bounded denial log. Cheap handle; clones share the log.
#[derive(Clone)]
pub struct AuditLog {
    inner: Arc<LogInner>,
}

impl AuditLog {
    /// Creates a log retaining the most recent `capacity` denials.
    pub fn new(capacity: usize) -> AuditLog {
        AuditLog {
            inner: Arc::new(LogInner {
                capacity: capacity.max(1),
                start: Instant::now(),
                total: AtomicU64::new(0),
                ring: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Records a denial. Oldest records rotate out when full; `total`
    /// keeps counting regardless.
    pub fn record(
        &self,
        user: Option<String>,
        app: Option<u64>,
        permission: impl Into<String>,
        context: impl Into<String>,
    ) {
        let record = AuditRecord {
            seq: self.inner.total.fetch_add(1, Ordering::Relaxed),
            at_ms: self.inner.start.elapsed().as_millis() as u64,
            user,
            app,
            permission: permission.into(),
            context: context.into(),
        };
        let mut ring = self.inner.ring.lock();
        if ring.len() >= self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Total denials ever recorded, including since-rotated ones.
    pub fn total(&self) -> u64 {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// The retained denials, oldest first.
    pub fn recent(&self) -> Vec<AuditRecord> {
        self.inner.ring.lock().iter().cloned().collect()
    }

    /// Retained denials filtered by user and/or application; `None` matches
    /// everything on that axis.
    pub fn query(&self, user: Option<&str>, app: Option<u64>) -> Vec<AuditRecord> {
        self.inner
            .ring
            .lock()
            .iter()
            .filter(|r| user.is_none_or(|u| r.user.as_deref() == Some(u)))
            .filter(|r| app.is_none_or(|a| r.app == Some(a)))
            .cloned()
            .collect()
    }
}

impl std::fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuditLog")
            .field("capacity", &self.inner.capacity)
            .field("total", &self.total())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries_by_user_and_app() {
        let log = AuditLog::new(16);
        log.record(
            Some("bob".into()),
            Some(2),
            "(file /home/alice/- read)",
            "d1",
        );
        log.record(Some("alice".into()), Some(1), "(runtime setUser)", "d2");
        log.record(Some("bob".into()), Some(3), "(runtime readMetrics)", "d3");
        assert_eq!(log.total(), 3);
        let bobs = log.query(Some("bob"), None);
        assert_eq!(bobs.len(), 2);
        assert!(bobs.iter().all(|r| r.user.as_deref() == Some("bob")));
        let app3 = log.query(None, Some(3));
        assert_eq!(app3.len(), 1);
        assert_eq!(app3[0].permission, "(runtime readMetrics)");
        assert_eq!(log.query(Some("bob"), Some(2)).len(), 1);
        assert_eq!(log.query(Some("carol"), None).len(), 0);
    }

    #[test]
    fn rotation_keeps_total_counting() {
        let log = AuditLog::new(2);
        for i in 0..5 {
            log.record(None, None, format!("p{i}"), "");
        }
        assert_eq!(log.total(), 5);
        let recent = log.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].permission, "p3");
        assert_eq!(recent[1].seq, 4);
    }

    #[test]
    fn records_roundtrip_through_json() {
        let log = AuditLog::new(4);
        log.record(
            Some("bob".into()),
            Some(7),
            "(awt showWindow)",
            "file:/apps/ps",
        );
        let record = log.recent().remove(0);
        let json = serde_json::to_string(&record).unwrap();
        let back: AuditRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }
}
