//! The flight recorder: an always-on bounded ring of completed [`Span`]s.
//!
//! Spans are the "what happened, when, caused by what" counterpart to the
//! event sink's lifecycle stream. The recorder is written on the hot path,
//! so it follows the sink's discipline: recording into a *disabled*
//! recorder is one relaxed atomic load and returns; an enabled recorder
//! takes one short mutex to rotate the ring. Nothing here blocks on
//! readers, and nothing is gated — permission gating (the
//! `RuntimePermission("traceVm")` read-out) lives in the runtime layer,
//! because writing a span must stay free for the code being observed.
//!
//! The ring doubles as the *flight record*: when a permission check is
//! denied or an application faults, the hub snapshots the ring and attaches
//! it to the audit entry, so the incident arrives with the causal history
//! that led to it. An incident dump also includes spans still *open* at
//! that moment (with their duration so far) — the exec span that spawned
//! the offending thread may not have completed yet, and "how we got here"
//! must include it. The same ring exports as Chrome `trace_event` JSON for
//! `chrome://tracing` / Perfetto.

use std::collections::{HashMap, VecDeque};
use std::mem;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use crate::hub::{AppResolver, ObsClock};
use crate::trace::{self, TraceCtx};

/// Default number of completed spans retained.
pub const DEFAULT_CAPACITY: usize = 2048;

/// Which boundary a span covers. These are the chrome export's `cat`
/// values; the acceptance bar for the export is that at least the
/// exec/dispatch/pipe categories appear in a traced session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanCategory {
    /// A shell command line, root of everything the line causes.
    Command,
    /// `Application.exec` — spawning the new thread-group subtree.
    Exec,
    /// One AWT event's dispatch on a dispatcher thread.
    Dispatch,
    /// A pipe write or read crossing an application boundary.
    Pipe,
    /// One security access check inside a traced request.
    Check,
}

impl SpanCategory {
    /// The kebab-case name used in the chrome export's `cat` field.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanCategory::Command => "command",
            SpanCategory::Exec => "exec",
            SpanCategory::Dispatch => "dispatch",
            SpanCategory::Pipe => "pipe",
            SpanCategory::Check => "check",
        }
    }
}

impl std::fmt::Display for SpanCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One completed span in the flight record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// VM-unique span id.
    pub id: u64,
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// The parent span id; `0` marks a trace root.
    pub parent: u64,
    /// The boundary this span covers.
    pub category: SpanCategory,
    /// Human-readable label (`exec:shell`, `pipe.read`, ...).
    pub name: String,
    /// The application charged with the work, when attributable.
    pub app: Option<u64>,
    /// Stable ordinal of the recording thread.
    pub thread: u64,
    /// Microseconds since the hub clock's origin.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

struct RecorderInner {
    enabled: AtomicBool,
    capacity: usize,
    clock: ObsClock,
    recorded: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<VecDeque<Span>>,
    /// Spans begun but not yet completed, keyed by span id; bounded by the
    /// number of live [`SpanGuard`]s. Incident dumps snapshot these too.
    open: Mutex<HashMap<u64, Span>>,
    resolver: RwLock<Option<AppResolver>>,
}

/// The bounded span ring. Cheap handle; clones share the recorder.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Creates an enabled recorder retaining `capacity` completed spans,
    /// on its own clock (the hub re-bases recorders onto its shared clock).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder::with_clock(capacity, ObsClock::new(), true)
    }

    /// Creates a recorder on an explicit clock and enablement state.
    pub fn with_clock(capacity: usize, clock: ObsClock, enabled: bool) -> FlightRecorder {
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                enabled: AtomicBool::new(enabled),
                capacity: capacity.max(1),
                clock,
                recorded: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                ring: Mutex::new(VecDeque::new()),
                open: Mutex::new(HashMap::new()),
                resolver: RwLock::new(None),
            }),
        }
    }

    /// Whether span recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turns span recording on or off. The retained ring is kept either
    /// way, so an incident dump still shows the history from before a
    /// `trace off`.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The clock spans are stamped with.
    pub fn clock(&self) -> ObsClock {
        self.inner.clock
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Total spans ever recorded (including since-rotated ones).
    pub fn recorded(&self) -> u64 {
        self.inner.recorded.load(Ordering::Relaxed)
    }

    /// Spans rotated out of a full ring.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Installs the thread→application resolver used to attribute scoped
    /// spans (shared with the hub's resolver).
    pub fn set_app_resolver(&self, resolver: AppResolver) {
        *self.inner.resolver.write() = Some(resolver);
    }

    fn resolve_app(&self) -> Option<u64> {
        let resolver = self.inner.resolver.read().clone();
        resolver.and_then(|r| r())
    }

    /// Opens a scoped span. Returns `None` when recording is off. While the
    /// guard lives, the calling thread's [`TraceCtx`] points at the new
    /// span, so children (spawned threads, posted events, nested checks)
    /// attach under it; dropping the guard records the completed span and
    /// restores the previous context. A thread with no current context
    /// roots a fresh trace — this is how a shell command or an `exec` from
    /// an untraced caller starts one.
    pub fn begin(&self, category: SpanCategory, name: impl Into<String>) -> Option<SpanGuard> {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let prev = trace::current();
        let (trace_id, parent) = match prev {
            Some(ctx) => (ctx.trace_id, ctx.parent_span),
            None => (trace::next_id(), 0),
        };
        let id = trace::next_id();
        trace::install(Some(TraceCtx {
            trace_id,
            parent_span: id,
        }));
        let name = name.into();
        let app = self.resolve_app();
        let start_us = self.inner.clock.now_us();
        self.inner.open.lock().insert(
            id,
            Span {
                id,
                trace_id,
                parent,
                category,
                name: name.clone(),
                app,
                thread: trace::thread_ordinal(),
                start_us,
                dur_us: 0,
            },
        );
        Some(SpanGuard {
            recorder: self.clone(),
            prev,
            id,
            trace_id,
            parent,
            category,
            name,
            app,
            start_us,
        })
    }

    /// A start timestamp for a span measured by the caller — microseconds
    /// on the shared hub clock, so caller-measured spans sort on the same
    /// timeline as every other span, sample, and audit record — or `None`
    /// when recording is off (so the disabled path never reads the clock).
    pub fn timer(&self) -> Option<u64> {
        if self.inner.enabled.load(Ordering::Relaxed) {
            Some(self.inner.clock.now_us())
        } else {
            None
        }
    }

    /// Nanoseconds elapsed since a [`FlightRecorder::timer`] start, read on
    /// the same clock (µs resolution).
    pub fn elapsed_ns(&self, start_us: u64) -> u64 {
        self.inner.clock.now_us().saturating_sub(start_us) * 1_000
    }

    /// Records an already-finished span of `latency_ns` ending now, under
    /// the calling thread's context. A thread outside any trace records
    /// nothing — per-check spans exist to explain traced requests, not to
    /// re-count every check the metrics already count.
    pub fn record_latency(
        &self,
        category: SpanCategory,
        name: &str,
        app: Option<u64>,
        latency_ns: u64,
    ) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let Some(ctx) = trace::current() else {
            return;
        };
        self.record_with_ctx(category, name, ctx, app, latency_ns);
    }

    /// Records an already-finished span under an explicit context — the
    /// cross-boundary half of a handoff (a pipe read runs under the
    /// *writer's* context, carried by the pipe).
    pub fn record_with_ctx(
        &self,
        category: SpanCategory,
        name: &str,
        ctx: TraceCtx,
        app: Option<u64>,
        latency_ns: u64,
    ) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        let dur_us = latency_ns / 1_000;
        let now = self.inner.clock.now_us();
        self.push(Span {
            id: trace::next_id(),
            trace_id: ctx.trace_id,
            parent: ctx.parent_span,
            category,
            name: name.to_owned(),
            app,
            thread: trace::thread_ordinal(),
            start_us: now.saturating_sub(dur_us),
            dur_us,
        });
    }

    fn push(&self, span: Span) {
        self.inner.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.inner.ring.lock();
        if ring.len() >= self.inner.capacity {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(span);
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.ring.lock().iter().cloned().collect()
    }

    /// Snapshots the flight record for an incident (audit denial,
    /// application fault): every completed span in the ring *plus* every
    /// span still open at this moment, stamped with its duration so far.
    /// Open ancestors matter — a denial early in an application's `main`
    /// can race the spawner still inside its `exec` span, and the record
    /// must show that exec regardless of which side wins.
    pub fn dump(&self) -> Vec<Span> {
        let mut spans = self.spans();
        let now = self.inner.clock.now_us();
        spans.extend(self.inner.open.lock().values().map(|open| {
            let mut span = open.clone();
            span.dur_us = now.saturating_sub(span.start_us);
            span
        }));
        spans.sort_by_key(|span| (span.start_us, span.id));
        spans
    }

    /// Empties the ring (keeps totals). Used by experiments that want the
    /// export of one isolated scenario.
    pub fn clear(&self) {
        self.inner.ring.lock().clear();
    }

    /// Exports the retained spans as Chrome `trace_event` JSON — load the
    /// string as a file in `chrome://tracing` or <https://ui.perfetto.dev>.
    /// Spans become complete (`"ph":"X"`) events; `pid` is the owning
    /// application (0 = system), `tid` the recording thread's ordinal.
    pub fn export_chrome_trace(&self) -> String {
        crate::profile::chrome_trace_doc(self.chrome_events())
    }

    /// The retained spans as individual Chrome `trace_event` values, for
    /// callers that merge them with other event sources (the hub's combined
    /// export interleaves these with profiler samples).
    pub fn chrome_events(&self) -> Vec<serde_json::Value> {
        let entry = |key: &str, value: serde_json::Value| (key.to_owned(), value);
        self.spans()
            .into_iter()
            .map(|span| {
                serde_json::Value::Map(vec![
                    entry("name", span.name.serialize_value()),
                    entry("cat", span.category.as_str().serialize_value()),
                    entry("ph", "X".serialize_value()),
                    entry("ts", span.start_us.serialize_value()),
                    entry("dur", span.dur_us.serialize_value()),
                    entry("pid", span.app.unwrap_or(0).serialize_value()),
                    entry("tid", span.thread.serialize_value()),
                    entry(
                        "args",
                        serde_json::Value::Map(vec![
                            entry("trace_id", span.trace_id.serialize_value()),
                            entry("span_id", span.id.serialize_value()),
                            entry("parent_span", span.parent.serialize_value()),
                        ]),
                    ),
                ])
            })
            .collect()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.inner.capacity)
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// An open span: completes (records itself) on drop and restores the
/// thread's previous trace context.
pub struct SpanGuard {
    recorder: FlightRecorder,
    prev: Option<TraceCtx>,
    id: u64,
    trace_id: u64,
    parent: u64,
    category: SpanCategory,
    name: String,
    app: Option<u64>,
    start_us: u64,
}

impl SpanGuard {
    /// The trace this span roots or extends.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// This span's id (children name it as their parent).
    pub fn span_id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let start_us = self.start_us;
        let end_us = self.recorder.inner.clock.now_us();
        self.recorder.inner.open.lock().remove(&self.id);
        self.recorder.push(Span {
            id: self.id,
            trace_id: self.trace_id,
            parent: self.parent,
            category: self.category,
            name: mem::take(&mut self.name),
            app: self.app,
            thread: trace::thread_ordinal(),
            start_us,
            dur_us: end_us.saturating_sub(start_us),
        });
        trace::install(self.prev);
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("trace_id", &self.trace_id)
            .field("span_id", &self.id)
            .field("category", &self.category)
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let recorder = FlightRecorder::with_clock(8, ObsClock::new(), false);
        trace::install(Some(TraceCtx {
            trace_id: 1,
            parent_span: 0,
        }));
        recorder.record_latency(SpanCategory::Check, "access-check", None, 500);
        assert!(recorder.begin(SpanCategory::Exec, "exec:x").is_none());
        assert_eq!(recorder.recorded(), 0);
        assert!(recorder.spans().is_empty());
        trace::clear();
    }

    #[test]
    fn begin_nests_children_and_restores_context() {
        let recorder = FlightRecorder::new(16);
        trace::clear();
        let outer = recorder.begin(SpanCategory::Exec, "exec:sh").unwrap();
        let trace_id = outer.trace_id();
        let outer_span = outer.span_id();
        assert_eq!(
            trace::current(),
            Some(TraceCtx {
                trace_id,
                parent_span: outer_span
            })
        );
        let inner = recorder
            .begin(SpanCategory::Dispatch, "dispatch:w1")
            .unwrap();
        assert_eq!(inner.trace_id(), trace_id, "children share the trace");
        drop(inner);
        drop(outer);
        assert_eq!(trace::current(), None, "root restores to untraced");
        let spans = recorder.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].category, SpanCategory::Dispatch);
        assert_eq!(spans[0].parent, outer_span, "child points at its parent");
        assert_eq!(spans[1].parent, 0, "the root has no parent");
        assert!(spans.iter().all(|s| s.trace_id == trace_id));
    }

    #[test]
    fn untraced_latency_records_are_skipped() {
        let recorder = FlightRecorder::new(8);
        trace::clear();
        recorder.record_latency(SpanCategory::Check, "access-check", None, 100);
        assert_eq!(recorder.recorded(), 0, "no context, no span");
    }

    #[test]
    fn ring_rotates_and_counts_drops() {
        let recorder = FlightRecorder::new(2);
        let ctx = TraceCtx {
            trace_id: trace::next_id(),
            parent_span: 0,
        };
        for i in 0..5 {
            recorder.record_with_ctx(SpanCategory::Pipe, &format!("w{i}"), ctx, None, 1_000);
        }
        assert_eq!(recorder.recorded(), 5);
        assert_eq!(recorder.dropped(), 3);
        let spans = recorder.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].name, "w4");
    }

    #[test]
    fn chrome_export_is_valid_json_with_categories() {
        let recorder = FlightRecorder::new(16);
        trace::clear();
        {
            let _exec = recorder.begin(SpanCategory::Exec, "exec:sh");
            let ctx = trace::current().unwrap();
            recorder.record_with_ctx(SpanCategory::Pipe, "pipe.read", ctx, Some(2), 2_000);
            recorder.record_latency(SpanCategory::Dispatch, "dispatch:w", Some(2), 1_000);
        }
        trace::clear();
        let json = recorder.export_chrome_trace();
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_seq().unwrap().to_vec();
        assert_eq!(events.len(), 3);
        let cats: std::collections::BTreeSet<String> = events
            .iter()
            .map(|e| e.get("cat").unwrap().as_str().unwrap().to_owned())
            .collect();
        assert!(
            cats.contains("exec") && cats.contains("pipe") && cats.contains("dispatch"),
            "all three boundary categories appear: {cats:?}"
        );
        assert!(events
            .iter()
            .all(|e| e.get("ph").unwrap().as_str() == Some("X")));
    }

    #[test]
    fn dump_includes_open_spans_exactly_once() {
        let recorder = FlightRecorder::new(16);
        trace::clear();
        let exec = recorder.begin(SpanCategory::Exec, "exec:app").unwrap();
        recorder.record_latency(SpanCategory::Check, "access-check:bypass", None, 1_000);
        // The incident dump sees the still-open exec span...
        let dump = recorder.dump();
        assert_eq!(dump.len(), 2, "{dump:?}");
        assert!(dump
            .iter()
            .any(|s| s.category == SpanCategory::Exec && s.name == "exec:app"));
        // ...but the completed-span ring does not.
        assert_eq!(recorder.spans().len(), 1);
        drop(exec);
        trace::clear();
        // Once completed, the span appears once, not twice.
        let dump = recorder.dump();
        assert_eq!(dump.len(), 2, "{dump:?}");
        assert_eq!(
            dump.iter()
                .filter(|s| s.category == SpanCategory::Exec)
                .count(),
            1
        );
    }

    #[test]
    fn spans_roundtrip_through_json() {
        let span = Span {
            id: 7,
            trace_id: 3,
            parent: 5,
            category: SpanCategory::Pipe,
            name: "pipe.write".into(),
            app: Some(4),
            thread: 2,
            start_us: 1_000,
            dur_us: 40,
        };
        let json = serde_json::to_string(&span).unwrap();
        let back: Span = serde_json::from_str(&json).unwrap();
        assert_eq!(back, span);
    }
}
