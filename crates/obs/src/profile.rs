//! `jmp-prof`: the always-on VM profiler.
//!
//! Two collection modes share one report model:
//!
//! * **Exact per-opcode accounting.** The interpreter keeps a thread-local
//!   tally (one array increment per dispatched instruction) and flushes it
//!   here at safepoints as a *block*: per-opcode execution counts plus the
//!   wall time the whole batch took. The profiler apportions the batch's
//!   time across its opcodes by the installed weight model (see
//!   [`Profiler::install_model`]) and feeds the per-execution estimate into
//!   a per-opcode [`Histogram`], so reports carry p50/p95/p99 cost alongside
//!   exact counts. Each block is attributed to the owning application (the
//!   `AppContext` the executing thread carries) and to the VM-wide view.
//!
//! * **Sampled stacks.** Each interpreter thread publishes its current
//!   method/frame stack into a [`ThreadLoc`] slot. Publication never blocks:
//!   the publisher replaces the slot's contents under a `try_lock`, so a
//!   collision with the sampler drops one update and the next frame
//!   transition re-publishes the full stack. A VM profiler thread calls
//!   [`Profiler::sample_once`] periodically, folding every live slot into
//!   weighted collapsed stacks (flamegraph.pl's `a;b;c weight` form) and a
//!   bounded ring of Chrome trace instant events.
//!
//!   The tick is **two-tier** so its cost tracks *activity*, not fleet
//!   size. A slot that republished since the last tick is scanned and
//!   sampled normally. A slot whose stack has not moved is sampled one
//!   last time and then *demoted*: it leaves the scan set and joins a
//!   settled population counted per `(app, collapsed stack)`. Settled
//!   threads keep accruing weight — in tick units, materialised into the
//!   view tables lazily on report or when the slot republishes — but cost
//!   the tick nothing. Ten thousand parked service mains blocked in the
//!   same frame are one settled entry, not ten thousand scans every 10 ms;
//!   re-sampling an unchanged stack adds no information, so none is lost.
//!
//! Writing into the profiler is free of permission checks, like the rest of
//! the hub; reading a [`ProfileReport`] back out is gated behind
//! `RuntimePermission("readProfile")` in the runtime layer, because one
//! application's opcode mix is another's side channel.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use crate::hub::ObsClock;
use crate::metrics::Histogram;
use crate::trace;

/// How often the VM profiler thread samples published stacks.
pub const DEFAULT_SAMPLE_INTERVAL_MS: u64 = 10;

/// Recent samples retained for the Chrome trace export.
const MAX_SAMPLE_EVENTS: usize = 2048;

/// Stack-buffer size for the per-flush weighted-share apportionment in
/// [`Profiler::record_block`] — comfortably above any opcode-set size.
const MAX_OPCODE_SHARES: usize = 64;

/// Distinct collapsed stacks retained per view; the tail folds into
/// `"(overflow)"` so a stack-key explosion cannot grow without bound.
const MAX_STACKS: usize = 512;

/// One thread's published "current location": the frame stack the sampler
/// reads. Created by [`Profiler::register_thread`]; the owning thread keeps
/// the only strong reference besides the registry, so slot lifetime follows
/// thread lifetime.
pub struct ThreadLoc {
    thread: u64,
    app: Option<u64>,
    frames: Mutex<Vec<Arc<str>>>,
    /// Whether the slot is currently in the sampler's scan set. Entered on
    /// the first non-empty publication — a thread that never interprets
    /// never enrolls — and left again when the stack settles.
    enrolled: AtomicBool,
    /// Set by every publication, cleared by the sampler tick. Still clear
    /// at the next tick means the stack has not moved: the slot is demoted
    /// from per-tick scanning into the settled population.
    dirty: AtomicBool,
    /// The collapsed stack key this slot is settled under, if demoted.
    settled: Mutex<Option<String>>,
    registry: Weak<ProfilerInner>,
    me: Weak<ThreadLoc>,
}

impl ThreadLoc {
    /// The registering thread's stable trace ordinal.
    pub fn thread(&self) -> u64 {
        self.thread
    }

    /// The application the thread's work bills to (`None` = VM bucket).
    pub fn app(&self) -> Option<u64> {
        self.app
    }

    /// Replaces the published stack wholesale. Publisher-side wait-free: a
    /// `try_lock` miss (the sampler is mid-read) drops this update, and the
    /// next frame transition publishes the then-current stack. The first
    /// non-empty publication enrolls the slot in the sampler's scan set —
    /// until then the sampler does not know the thread exists, which is
    /// what keeps the per-tick cost proportional to interpreting threads
    /// rather than to the whole fleet.
    pub fn publish(&self, frames: &[Arc<str>]) {
        let published = if let Some(mut slot) = self.frames.try_lock() {
            slot.clear();
            slot.extend(frames.iter().cloned());
            !slot.is_empty()
        } else {
            return;
        };
        self.dirty.store(true, Ordering::Relaxed);
        // A settled slot that moves rejoins the scan set; its owed idle
        // weight is materialised under the *old* key first. The settled
        // guard is released before touching the scan list — the sampler
        // takes those locks in the opposite order.
        if let Some(key) = self.settled.lock().take() {
            if let Some(registry) = self.registry.upgrade() {
                unsettle(&registry, self.app, key);
            }
        }
        if published && !self.enrolled.swap(true, Ordering::Relaxed) {
            if let Some(registry) = self.registry.upgrade() {
                registry.threads.lock().push(self.me.clone());
            }
        }
    }
}

impl Drop for ThreadLoc {
    fn drop(&mut self) {
        // A settled thread that exits takes its count out of the settled
        // population (after materialising what it is owed).
        if let Some(key) = self.settled.get_mut().take() {
            if let Some(registry) = self.registry.upgrade() {
                unsettle(&registry, self.app, key);
            }
        }
    }
}

impl std::fmt::Debug for ThreadLoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadLoc")
            .field("thread", &self.thread)
            .field("app", &self.app)
            .finish()
    }
}

/// The opcode name/weight model, installed once by the interpreter layer.
#[derive(Default)]
struct OpcodeModel {
    names: Vec<String>,
    weights: Vec<u64>,
}

/// One view's accumulation: per-opcode tallies plus collapsed stacks.
#[derive(Default)]
struct ViewTable {
    counts: Vec<u64>,
    cost_ns: Vec<u64>,
    hists: Vec<Histogram>,
    stacks: BTreeMap<String, u64>,
}

impl ViewTable {
    fn ensure(&mut self, len: usize) {
        if self.counts.len() < len {
            self.counts.resize(len, 0);
            self.cost_ns.resize(len, 0);
            self.hists.resize_with(len, Histogram::new);
        }
    }

    fn add_block(&mut self, counts: &[u64], shares: &[u64]) {
        self.ensure(counts.len());
        for (i, (&count, &share)) in counts.iter().zip(shares.iter()).enumerate() {
            if count == 0 {
                continue;
            }
            self.counts[i] += count;
            self.cost_ns[i] += share;
            self.hists[i].record(share / count);
        }
    }

    fn add_sample(&mut self, key: &str, weight_us: u64) {
        if self.stacks.len() >= MAX_STACKS && !self.stacks.contains_key(key) {
            *self.stacks.entry("(overflow)".to_string()).or_insert(0) += weight_us;
            return;
        }
        *self.stacks.entry(key.to_string()).or_insert(0) += weight_us;
    }
}

/// One retained sample, for the Chrome trace export.
struct SampleEvent {
    ts_us: u64,
    thread: u64,
    app: Option<u64>,
    stack: String,
    top: String,
}

/// One settled population: `count` demoted threads share this exact
/// collapsed stack and have accrued nothing since `settle_tick`. Their
/// owed weight (`count × elapsed ticks × tick interval`) is materialised
/// into the view tables lazily — on report, or when a member republishes
/// or exits — so the population costs the sampler tick nothing.
struct SettledEntry {
    count: u64,
    settle_tick: u64,
}

struct ProfilerInner {
    accounting: AtomicBool,
    sampling: AtomicBool,
    clock: ObsClock,
    model: RwLock<OpcodeModel>,
    vm: Mutex<ViewTable>,
    apps: RwLock<BTreeMap<u64, Arc<Mutex<ViewTable>>>>,
    threads: Mutex<Vec<Weak<ThreadLoc>>>,
    settled: Mutex<BTreeMap<(Option<u64>, String), SettledEntry>>,
    tick: AtomicU64,
    last_interval: AtomicU64,
    flushes: AtomicU64,
    samples: AtomicU64,
    events: Mutex<VecDeque<SampleEvent>>,
}

/// Brings `entry` up to the current tick: adds its owed weight to the VM
/// and per-app view tables and rebases `settle_tick`. Takes table locks
/// only — never `threads` or `settled` (the caller may hold either).
fn materialize(inner: &ProfilerInner, app: Option<u64>, key: &str, entry: &mut SettledEntry) {
    let tick = inner.tick.load(Ordering::Relaxed);
    let owed_ticks = tick.saturating_sub(entry.settle_tick);
    entry.settle_tick = tick;
    if owed_ticks == 0 || entry.count == 0 {
        return;
    }
    let weight = owed_ticks * entry.count * inner.last_interval.load(Ordering::Relaxed);
    inner.vm.lock().add_sample(key, weight);
    if let Some(app) = app {
        inner_app_table(inner, app).lock().add_sample(key, weight);
    }
    inner
        .samples
        .fetch_add(owed_ticks * entry.count, Ordering::Relaxed);
}

/// Removes one thread from the settled population under `key`, first
/// materialising what the entry is owed.
fn unsettle(inner: &ProfilerInner, app: Option<u64>, key: String) {
    let mut settled = inner.settled.lock();
    let map_key = (app, key);
    if let Some(entry) = settled.get_mut(&map_key) {
        materialize(inner, map_key.0, &map_key.1, entry);
        entry.count -= 1;
        if entry.count == 0 {
            settled.remove(&map_key);
        }
    }
}

fn inner_app_table(inner: &ProfilerInner, app: u64) -> Arc<Mutex<ViewTable>> {
    if let Some(table) = inner.apps.read().get(&app) {
        return Arc::clone(table);
    }
    Arc::clone(
        inner
            .apps
            .write()
            .entry(app)
            .or_insert_with(|| Arc::new(Mutex::new(ViewTable::default()))),
    )
}

/// The profiler. Cheap handle; clones share state. Both collection modes
/// are on by default — "always-on" is the point, and the accounting path is
/// budgeted at ≤5% interpreter overhead (bench A8 gates it).
#[derive(Clone)]
pub struct Profiler {
    inner: Arc<ProfilerInner>,
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new()
    }
}

impl Profiler {
    /// Creates a profiler on its own clock (the hub re-bases profilers onto
    /// its shared clock).
    pub fn new() -> Profiler {
        Profiler::with_clock(ObsClock::new())
    }

    /// Creates a profiler stamping samples with `clock`.
    pub fn with_clock(clock: ObsClock) -> Profiler {
        Profiler {
            inner: Arc::new(ProfilerInner {
                accounting: AtomicBool::new(true),
                sampling: AtomicBool::new(true),
                clock,
                model: RwLock::new(OpcodeModel::default()),
                vm: Mutex::new(ViewTable::default()),
                apps: RwLock::new(BTreeMap::new()),
                threads: Mutex::new(Vec::new()),
                settled: Mutex::new(BTreeMap::new()),
                tick: AtomicU64::new(0),
                last_interval: AtomicU64::new(DEFAULT_SAMPLE_INTERVAL_MS * 1_000),
                flushes: AtomicU64::new(0),
                samples: AtomicU64::new(0),
                events: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Whether per-opcode accounting is on (one relaxed load — the
    /// interpreter re-reads this at safepoints, not per instruction).
    pub fn accounting_enabled(&self) -> bool {
        self.inner.accounting.load(Ordering::Relaxed)
    }

    /// Turns per-opcode accounting on or off.
    pub fn set_accounting(&self, enabled: bool) {
        self.inner.accounting.store(enabled, Ordering::Relaxed);
    }

    /// Whether stack sampling is on.
    pub fn sampling_enabled(&self) -> bool {
        self.inner.sampling.load(Ordering::Relaxed)
    }

    /// Turns stack sampling on or off (the sampler thread keeps running and
    /// re-checks per tick; publishers stop publishing).
    pub fn set_sampling(&self, enabled: bool) {
        self.inner.sampling.store(enabled, Ordering::Relaxed);
    }

    /// Turns both collection modes on or off — the shell's
    /// `profile on|off`.
    pub fn set_enabled(&self, enabled: bool) {
        self.set_accounting(enabled);
        self.set_sampling(enabled);
    }

    /// Whether either collection mode is on.
    pub fn is_enabled(&self) -> bool {
        self.accounting_enabled() || self.sampling_enabled()
    }

    /// Installs the opcode name/weight model reports resolve indices
    /// against. Idempotent: the first non-empty installation wins, so the
    /// interpreter can call this on every run cheaply.
    pub fn install_model(&self, names: &[&str], weights: &[u64]) {
        if !self.inner.model.read().names.is_empty() {
            return;
        }
        let mut model = self.inner.model.write();
        if model.names.is_empty() {
            model.names = names.iter().map(|n| n.to_string()).collect();
            model.weights = weights.to_vec();
        }
    }

    /// Accepts one flushed accounting block: per-opcode execution counts
    /// (index = opcode) and the wall time the batch took. The batch's time
    /// is apportioned across its opcodes by the installed weights; the
    /// per-execution estimate feeds each opcode's cost histogram. Billed to
    /// `app`'s view when given, and always to the VM-wide view.
    pub fn record_block(&self, app: Option<u64>, counts: &[u64], elapsed_ns: u64) {
        if !self.accounting_enabled() {
            return;
        }
        let model = self.inner.model.read();
        let weight = |i: usize| model.weights.get(i).copied().unwrap_or(1).max(1);
        let total_weight: u128 = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| u128::from(c) * u128::from(weight(i)))
            .sum();
        if total_weight == 0 {
            return;
        }
        // Apportion into a stack buffer: this runs on every interpreter
        // flush, so it must not allocate or divide per opcode. Opcode sets
        // larger than the buffer (none today) fall back to the unweighted
        // tail; f64 rounding loses at most a few ns per batch.
        let scale = elapsed_ns as f64 / total_weight as f64;
        let mut shares = [0u64; MAX_OPCODE_SHARES];
        let n = counts.len().min(MAX_OPCODE_SHARES);
        for (i, share) in shares.iter_mut().enumerate().take(n) {
            if counts[i] > 0 {
                *share = (counts[i] as f64 * weight(i) as f64 * scale) as u64;
            }
        }
        drop(model);
        self.inner.vm.lock().add_block(&counts[..n], &shares[..n]);
        if let Some(app) = app {
            self.app_table(app)
                .lock()
                .add_block(&counts[..n], &shares[..n]);
        }
        self.inner.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers the calling thread's location slot, billed to `app`
    /// (`None` = the VM bucket, e.g. detached threads). The returned slot
    /// is what the thread publishes its frame stack into; dropping it
    /// (thread exit) retires the slot at the next sampler tick. The slot
    /// only enters the sampler's scan set on its first non-empty
    /// [`ThreadLoc::publish`]: threads that never run interpreted code —
    /// e.g. ten thousand parked service mains — add nothing to the tick.
    pub fn register_thread(&self, app: Option<u64>) -> Arc<ThreadLoc> {
        Arc::new_cyclic(|me| ThreadLoc {
            thread: trace::thread_ordinal(),
            app,
            frames: Mutex::new(Vec::new()),
            enrolled: AtomicBool::new(false),
            dirty: AtomicBool::new(false),
            settled: Mutex::new(None),
            registry: Arc::downgrade(&self.inner),
            me: me.clone(),
        })
    }

    /// Takes one sampling pass over the *active* scan set, weighting each
    /// observed stack by `interval_us` (the time since the previous pass).
    /// A slot that did not republish since the last tick is sampled one
    /// final time and demoted to the settled population; it rejoins the
    /// scan on its next publication. Returns how many threads were scanned
    /// on-stack this tick (settled threads accrue out of band). Called by
    /// the VM profiler thread; a no-op while sampling is off.
    pub fn sample_once(&self, interval_us: u64) -> usize {
        if !self.sampling_enabled() {
            return 0;
        }
        let inner = &*self.inner;
        inner.last_interval.store(interval_us, Ordering::Relaxed);
        let tick = inner.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut sampled = 0;
        // The scan set holds only recently-active threads, so the table
        // work can stay under the scan lock; publishers touch it solely on
        // enrollment, after releasing every other profiler lock.
        let mut threads = inner.threads.lock();
        let mut keep = Vec::with_capacity(threads.len());
        for weak in threads.drain(..) {
            let Some(loc) = weak.upgrade() else { continue };
            let frames = loc.frames.lock().clone();
            let dirty = loc.dirty.swap(false, Ordering::Relaxed);
            if frames.is_empty() {
                // A cleared stack costs nothing to keep for one quiet
                // tick; after that the slot leaves the scan until it
                // publishes again.
                if dirty {
                    keep.push(weak);
                } else {
                    loc.enrolled.store(false, Ordering::Relaxed);
                }
                continue;
            }
            let key = frames
                .iter()
                .map(|f| f.as_ref())
                .collect::<Vec<&str>>()
                .join(";");
            inner.vm.lock().add_sample(&key, interval_us);
            if let Some(app) = loc.app {
                inner_app_table(inner, app)
                    .lock()
                    .add_sample(&key, interval_us);
            }
            let top = frames.last().map_or(String::new(), |f| f.to_string());
            let mut events = inner.events.lock();
            if events.len() >= MAX_SAMPLE_EVENTS {
                events.pop_front();
            }
            events.push_back(SampleEvent {
                ts_us: inner.clock.now_us(),
                thread: loc.thread,
                app: loc.app,
                stack: key.clone(),
                top,
            });
            drop(events);
            inner.samples.fetch_add(1, Ordering::Relaxed);
            sampled += 1;
            if dirty {
                keep.push(weak);
                continue;
            }
            // Unchanged since the last tick: demote. Accrual starts at the
            // *next* tick — this one was just sampled directly.
            {
                let mut settled = inner.settled.lock();
                let entry = settled
                    .entry((loc.app, key.clone()))
                    .or_insert(SettledEntry {
                        count: 0,
                        settle_tick: tick,
                    });
                materialize(inner, loc.app, &key, entry);
                entry.count += 1;
                *loc.settled.lock() = Some(key);
            }
            loc.enrolled.store(false, Ordering::Relaxed);
            // Close the demotion race: a publication that slipped in after
            // the dirty check would otherwise strand a moving thread in
            // the settled population.
            if loc.dirty.load(Ordering::Relaxed) {
                if let Some(key) = loc.settled.lock().take() {
                    unsettle(inner, loc.app, key);
                }
                loc.enrolled.store(true, Ordering::Relaxed);
                keep.push(weak);
            }
        }
        *threads = keep;
        sampled
    }

    /// Brings every settled population up to the current tick so reports
    /// see the full accrued weight.
    fn materialize_settled(&self) {
        let inner = &*self.inner;
        let mut settled = inner.settled.lock();
        for ((app, key), entry) in settled.iter_mut() {
            materialize(inner, *app, key, entry);
        }
    }

    /// Accounting blocks flushed so far.
    pub fn flushes(&self) -> u64 {
        self.inner.flushes.load(Ordering::Relaxed)
    }

    /// Stack samples taken so far.
    pub fn samples_taken(&self) -> u64 {
        self.inner.samples.load(Ordering::Relaxed)
    }

    /// Snapshots everything collected so far into a [`ProfileReport`].
    pub fn report(&self) -> ProfileReport {
        self.materialize_settled();
        let model = self.inner.model.read();
        let vm = render_view(None, &self.inner.vm.lock(), &model);
        let apps: Vec<ProfileView> = self
            .inner
            .apps
            .read()
            .iter()
            .map(|(&id, table)| render_view(Some(id), &table.lock(), &model))
            .collect();
        ProfileReport {
            at_ms: self.inner.clock.now_ms(),
            accounting_enabled: self.accounting_enabled(),
            sampling_enabled: self.sampling_enabled(),
            flushes: self.flushes(),
            samples_taken: self.samples_taken(),
            vm,
            apps,
        }
    }

    /// The retained samples as Chrome `trace_event` instant events, for the
    /// hub's combined export: each sample lands on the owning application's
    /// `pid` row next to the flight recorder's spans.
    pub fn chrome_events(&self) -> Vec<serde_json::Value> {
        let entry = |key: &str, value: serde_json::Value| (key.to_owned(), value);
        self.inner
            .events
            .lock()
            .iter()
            .map(|event| {
                serde_json::Value::Map(vec![
                    entry("name", event.top.serialize_value()),
                    entry("cat", "profile".serialize_value()),
                    entry("ph", "i".serialize_value()),
                    entry("ts", event.ts_us.serialize_value()),
                    entry("pid", event.app.unwrap_or(0).serialize_value()),
                    entry("tid", event.thread.serialize_value()),
                    entry("s", "t".serialize_value()),
                    entry(
                        "args",
                        serde_json::Value::Map(vec![entry("stack", event.stack.serialize_value())]),
                    ),
                ])
            })
            .collect()
    }

    /// Drops everything collected (tallies, stacks, retained samples, the
    /// flush/sample totals). Enablement, the opcode model, and registered
    /// thread slots survive — `profile reset` starts a fresh window, it
    /// does not tear the profiler down.
    pub fn reset(&self) {
        // The settled *population* survives a reset (it is who exists, not
        // what was collected), but its accrual rebases onto the new window.
        let tick = self.inner.tick.load(Ordering::Relaxed);
        for entry in self.inner.settled.lock().values_mut() {
            entry.settle_tick = tick;
        }
        *self.inner.vm.lock() = ViewTable::default();
        self.inner.apps.write().clear();
        self.inner.events.lock().clear();
        self.inner.flushes.store(0, Ordering::Relaxed);
        self.inner.samples.store(0, Ordering::Relaxed);
    }

    fn app_table(&self, app: u64) -> Arc<Mutex<ViewTable>> {
        inner_app_table(&self.inner, app)
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("accounting", &self.accounting_enabled())
            .field("sampling", &self.sampling_enabled())
            .field("flushes", &self.flushes())
            .field("samples", &self.samples_taken())
            .finish()
    }
}

fn render_view(app: Option<u64>, table: &ViewTable, model: &OpcodeModel) -> ProfileView {
    let mut opcodes: Vec<OpcodeProfile> = table
        .counts
        .iter()
        .enumerate()
        .filter(|(_, &count)| count > 0)
        .map(|(i, &count)| {
            let snap = table.hists[i].snapshot();
            let qs = snap.quantiles(&[0.5, 0.95, 0.99]);
            OpcodeProfile {
                opcode: model
                    .names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("op{i}")),
                count,
                cost_ns: table.cost_ns[i],
                p50_ns: qs[0],
                p95_ns: qs[1],
                p99_ns: qs[2],
            }
        })
        .collect();
    opcodes.sort_by(|a, b| b.count.cmp(&a.count).then(a.opcode.cmp(&b.opcode)));
    ProfileView {
        label: app.map_or_else(|| "vm".to_string(), |id| format!("app-{id}")),
        app,
        instructions: table.counts.iter().sum(),
        cost_ns: table.cost_ns.iter().sum(),
        opcodes,
        stacks: table.stacks.clone(),
    }
}

/// Wraps Chrome `trace_event` values into the standard document form.
pub(crate) fn chrome_trace_doc(events: Vec<serde_json::Value>) -> String {
    let entry = |key: &str, value: serde_json::Value| (key.to_owned(), value);
    let doc = serde_json::Value::Map(vec![
        entry("traceEvents", serde_json::Value::Seq(events)),
        entry("displayTimeUnit", "ms".serialize_value()),
    ]);
    serde_json::to_string_pretty(&doc).expect("chrome trace serializes")
}

/// One opcode's row in a [`ProfileView`]: exact count, apportioned
/// cumulative cost, and the per-execution cost distribution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpcodeProfile {
    /// Opcode mnemonic (`add`, `native`, ...).
    pub opcode: String,
    /// Exact execution count.
    pub count: u64,
    /// Cumulative apportioned cost in nanoseconds.
    pub cost_ns: u64,
    /// Median per-execution cost estimate (ns).
    pub p50_ns: u64,
    /// 95th-percentile per-execution cost estimate (ns).
    pub p95_ns: u64,
    /// 99th-percentile per-execution cost estimate (ns).
    pub p99_ns: u64,
}

/// One attribution scope's profile: the VM-wide view or one application's.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileView {
    /// `"vm"` or `"app-<id>"`.
    pub label: String,
    /// The application this view bills to; `None` for the VM-wide view.
    pub app: Option<u64>,
    /// Total instructions accounted to this view.
    pub instructions: u64,
    /// Total apportioned cost in nanoseconds.
    pub cost_ns: u64,
    /// Per-opcode rows, busiest first (zero-count opcodes omitted).
    pub opcodes: Vec<OpcodeProfile>,
    /// Weighted collapsed stacks: `frame;frame;frame` → sampled µs.
    pub stacks: BTreeMap<String, u64>,
}

impl ProfileView {
    /// The `n` busiest opcode rows.
    pub fn top_opcodes(&self, n: usize) -> &[OpcodeProfile] {
        &self.opcodes[..self.opcodes.len().min(n)]
    }
}

/// A point-in-time snapshot of everything both collection modes gathered:
/// the VM-wide view plus one view per application that executed interpreted
/// code. Serializable — `experiments --profile-json` writes one of these.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Capture time, ms on the hub clock.
    pub at_ms: u64,
    /// Whether per-opcode accounting was on at capture.
    pub accounting_enabled: bool,
    /// Whether stack sampling was on at capture.
    pub sampling_enabled: bool,
    /// Accounting blocks flushed since start/reset.
    pub flushes: u64,
    /// Stack samples taken since start/reset.
    pub samples_taken: u64,
    /// The VM-wide view (every thread, detached work included).
    pub vm: ProfileView,
    /// Per-application views, in application-id order.
    pub apps: Vec<ProfileView>,
}

impl ProfileReport {
    /// The view for `app`, or the VM-wide view when `None`.
    pub fn view(&self, app: Option<u64>) -> Option<&ProfileView> {
        match app {
            Some(id) => self.apps.iter().find(|v| v.app == Some(id)),
            None => Some(&self.vm),
        }
    }

    /// Renders a view's collapsed stacks as flamegraph.pl-compatible text:
    /// one `frame;frame;frame weight` line per distinct stack. An unknown
    /// app id (or one with no samples) renders as the empty string.
    pub fn flamegraph(&self, app: Option<u64>) -> String {
        let Some(view) = self.view(app) else {
            return String::new();
        };
        let mut out = String::new();
        for (stack, weight) in &view.stacks {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(p: &Profiler) {
        p.install_model(&["alpha", "beta", "gamma"], &[1, 1, 10]);
    }

    #[test]
    fn blocks_bill_the_app_and_the_vm() {
        let p = Profiler::new();
        model(&p);
        p.record_block(Some(7), &[10, 0, 10], 1_100);
        p.record_block(None, &[5, 5, 0], 100);
        let report = p.report();
        assert_eq!(report.vm.instructions, 30);
        let app7 = report.view(Some(7)).unwrap();
        assert_eq!(app7.instructions, 20);
        assert_eq!(app7.label, "app-7");
        assert_eq!(report.flushes, 2);
        // The weighted apportionment gives gamma (weight 10) the lion's
        // share of app 7's 1.1µs batch.
        let gamma = app7.opcodes.iter().find(|o| o.opcode == "gamma").unwrap();
        let alpha = app7.opcodes.iter().find(|o| o.opcode == "alpha").unwrap();
        assert_eq!(gamma.count, 10);
        assert_eq!(gamma.cost_ns, 1_000);
        assert_eq!(alpha.cost_ns, 100);
        assert!(gamma.p50_ns >= alpha.p50_ns);
        // Rows come busiest-first and totals add up.
        assert!(report.vm.opcodes[0].count >= report.vm.opcodes[1].count);
        assert_eq!(report.vm.cost_ns, 1_200);
    }

    #[test]
    fn disabled_accounting_drops_blocks() {
        let p = Profiler::new();
        model(&p);
        p.set_accounting(false);
        p.record_block(Some(1), &[100, 0, 0], 500);
        assert_eq!(p.report().vm.instructions, 0);
        assert!(p.report().apps.is_empty());
    }

    #[test]
    fn sampler_collects_weighted_collapsed_stacks() {
        let p = Profiler::new();
        let loc = p.register_thread(Some(3));
        loc.publish(&[Arc::from("Applet.main"), Arc::from("Applet.tick")]);
        assert_eq!(p.sample_once(10_000), 1);
        assert_eq!(p.sample_once(10_000), 1);
        loc.publish(&[Arc::from("Applet.main")]);
        assert_eq!(p.sample_once(10_000), 1);
        let report = p.report();
        assert_eq!(report.samples_taken, 3);
        assert_eq!(report.vm.stacks["Applet.main;Applet.tick"], 20_000);
        assert_eq!(report.view(Some(3)).unwrap().stacks["Applet.main"], 10_000);
        let flame = report.flamegraph(Some(3));
        assert!(flame.contains("Applet.main;Applet.tick 20000\n"), "{flame}");
        assert_eq!(report.flamegraph(Some(99)), "");
        // Empty stacks are not sampled; a dropped slot retires.
        loc.publish(&[]);
        assert_eq!(p.sample_once(10_000), 0);
        drop(loc);
        assert_eq!(p.sample_once(10_000), 0);
    }

    #[test]
    fn settled_threads_leave_the_scan_but_keep_accruing() {
        let p = Profiler::new();
        let locs: Vec<_> = (0..100)
            .map(|i| {
                let loc = p.register_thread(Some(i));
                loc.publish(&[Arc::from("Svc.main")]);
                loc
            })
            .collect();
        assert_eq!(p.sample_once(10_000), 100); // freshly published: scanned
        assert_eq!(p.sample_once(10_000), 100); // unchanged: sampled once more, demoted
        assert_eq!(p.sample_once(10_000), 0); // the parked fleet is out of the scan
        assert_eq!(p.sample_once(10_000), 0);
        // Report materialises the settled accrual: 2 scanned + 2 settled
        // ticks per thread, identical totals to scanning every tick.
        let report = p.report();
        assert_eq!(report.vm.stacks["Svc.main"], 100 * 4 * 10_000);
        assert_eq!(report.view(Some(7)).unwrap().stacks["Svc.main"], 4 * 10_000);
        // Republication re-enters the scan under the new key.
        locs[0].publish(&[Arc::from("Svc.main"), Arc::from("Svc.work")]);
        assert_eq!(p.sample_once(10_000), 1);
        // Exiting settled threads drain the population cleanly.
        drop(locs);
        assert_eq!(p.sample_once(10_000), 0);
    }

    #[test]
    fn sampling_off_is_a_no_op() {
        let p = Profiler::new();
        let loc = p.register_thread(None);
        loc.publish(&[Arc::from("X.m")]);
        p.set_sampling(false);
        assert_eq!(p.sample_once(10_000), 0);
        assert_eq!(p.samples_taken(), 0);
    }

    #[test]
    fn chrome_events_are_instant_profile_events() {
        let p = Profiler::new();
        let loc = p.register_thread(Some(4));
        loc.publish(&[Arc::from("A.main"), Arc::from("A.work")]);
        p.sample_once(5_000);
        let json = chrome_trace_doc(p.chrome_events());
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_seq().unwrap().to_vec();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(events[0].get("cat").unwrap().as_str(), Some("profile"));
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("A.work"));
    }

    #[test]
    fn reset_starts_a_fresh_window() {
        let p = Profiler::new();
        model(&p);
        p.record_block(Some(1), &[3, 0, 0], 100);
        let loc = p.register_thread(Some(1));
        loc.publish(&[Arc::from("A.main")]);
        p.sample_once(1_000);
        p.reset();
        let report = p.report();
        assert_eq!(report.vm.instructions, 0);
        assert!(report.apps.is_empty());
        assert_eq!(report.flushes, 0);
        assert_eq!(report.samples_taken, 0);
        assert!(p.chrome_events().is_empty());
        // The slot survives a reset: sampling keeps working.
        assert_eq!(p.sample_once(1_000), 1);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let p = Profiler::new();
        model(&p);
        p.record_block(Some(2), &[1, 2, 3], 600);
        let loc = p.register_thread(Some(2));
        loc.publish(&[Arc::from("B.main")]);
        p.sample_once(10_000);
        let report = p.report();
        let json = serde_json::to_string(&report).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn model_installation_is_first_wins() {
        let p = Profiler::new();
        p.install_model(&["a"], &[1]);
        p.install_model(&["b", "c"], &[2, 2]);
        p.record_block(None, &[1], 10);
        assert_eq!(p.report().vm.opcodes[0].opcode, "a");
    }
}
