//! [`ObsHub`]: the single observability object the VM owns.
//!
//! The hub composes the three substrate pieces — event sink, metrics
//! registries, audit log — and adds the attribution glue: a pluggable
//! [`AppResolver`] that maps *the current thread* to its owning application,
//! so instrumentation points deep in the VM can charge work to the right
//! per-application registry without knowing anything about the runtime's
//! application table.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::audit::{self, AuditLog, AuditRecord};
use crate::demand::{self, DemandLedger};
use crate::metrics::{Counter, Histogram, MetricsRegistry, RegistrySnapshot};
use crate::profile::{self, Profiler};
use crate::recorder::{self, FlightRecorder};
use crate::sink::{self, EventKind, EventSink};
use crate::watchdog::WatchdogRegistry;

/// Maps the calling thread to the application it belongs to, if any.
/// Installed by the runtime layer (which owns the thread→application table).
pub type AppResolver = Arc<dyn Fn() -> Option<u64> + Send + Sync>;

/// The hub's shared monotonic clock. Every timestamped substrate piece —
/// event sink, audit log, flight recorder, watchdogs — is stamped against
/// one origin, so an event's `at_ms`, a denial's `at_ms`, and a span's
/// `start_us` are directly comparable. (Before this existed, the sink and
/// the audit log each took their own `Instant::now()` at construction and
/// drifted by the construction skew.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsClock {
    origin: Instant,
}

impl ObsClock {
    /// A clock whose origin is now.
    pub fn new() -> ObsClock {
        ObsClock {
            origin: Instant::now(),
        }
    }

    /// Milliseconds since the clock's origin.
    pub fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    /// Microseconds since the clock's origin.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Milliseconds between the clock's origin and an [`Instant`] the caller
    /// already holds — pure arithmetic, no clock read, so hot paths that
    /// took a timestamp anyway (the access-check chokepoint) can stamp
    /// records for free. An instant before the origin clamps to zero.
    pub fn millis_of(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.origin).as_millis() as u64
    }
}

impl Default for ObsClock {
    fn default() -> ObsClock {
        ObsClock::new()
    }
}

/// How the VM's permission decision cache participated in one access check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the decision cache without walking the stack's domains.
    Hit,
    /// Looked up, absent — the full walk ran and (if granted) seeded the
    /// cache.
    Miss,
    /// The cache was not consulted: an empty (fully-trusted) stack, a
    /// denial re-derivation, or a caller outside the cached fast path.
    Bypass,
}

impl CacheOutcome {
    /// The span name recorded for a check with this outcome, e.g.
    /// `access-check:hit`. The suffix doubles as a span attribute so trace
    /// consumers (E11/E12, `vmstat`) can split warm from cold checks.
    pub fn span_name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "access-check:hit",
            CacheOutcome::Miss => "access-check:miss",
            CacheOutcome::Bypass => "access-check:bypass",
        }
    }
}

/// Number of shards in the per-application registry table. Application ids
/// are sequential, so `id % APP_SHARDS` spreads them uniformly; a power of
/// two keeps the fold to a mask.
const APP_SHARDS: usize = 16;

/// One shard of the per-application registry table: the live registries
/// whose ids hash here, plus the retired totals of reaped applications from
/// the same shard. Both live under ONE lock so [`ObsHub::remove_app`]
/// retires a registry atomically — a concurrent [`ObsHub::rollup`] reading
/// this shard sees each application exactly once, live *xor* retired, never
/// both and never neither.
struct AppShard {
    live: BTreeMap<u64, Arc<MetricsRegistry>>,
    retired: RegistrySnapshot,
}

struct HubInner {
    clock: ObsClock,
    sink: EventSink,
    audit: AuditLog,
    recorder: FlightRecorder,
    profiler: Profiler,
    watchdogs: WatchdogRegistry,
    vm: Arc<MetricsRegistry>,
    // The per-application registries, sharded by id so reaps, lookups and
    // attribution on different applications never queue on one table lock
    // (the control-plane scale-out mirror of the runtime's sharded app
    // registry).
    apps: [RwLock<AppShard>; APP_SHARDS],
    resolver: RwLock<Option<AppResolver>>,
    // The security chokepoint runs on every permission check; its VM-wide
    // instruments are resolved once here so the hot path never touches the
    // registry's name map.
    checks: Arc<Counter>,
    denied: Arc<Counter>,
    check_ns: Arc<Histogram>,
    check_depth: Arc<Histogram>,
    // Decision-cache accounting for the access-check fast path: hits serve
    // from the VM-wide cache, misses fall through to the full walk, bypasses
    // never consult the cache (empty stack or a denial re-derivation), and
    // invalidations count epoch bumps (policy/security-manager/user-resolver
    // changes).
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_bypass: Arc<Counter>,
    cache_invalidations: Arc<Counter>,
    // Watchdog stalls are rare; the counter is still resolved once because
    // the checker thread runs every poll interval.
    stalls: Arc<Counter>,
    // The permission-demand ledger: every access-check outcome lands here,
    // keyed by (app, code source, user, permission). Always on; the VM
    // caches its cells next to access decisions so warm checks only bump
    // atomics.
    demands: DemandLedger,
}

/// The composed observability hub. Cheap handle; clones share state.
#[derive(Clone)]
pub struct ObsHub {
    inner: Arc<HubInner>,
}

impl Default for ObsHub {
    fn default() -> ObsHub {
        ObsHub::new()
    }
}

impl ObsHub {
    /// Creates a hub with an enabled event sink and default capacities.
    pub fn new() -> ObsHub {
        ObsHub::with_sink(EventSink::new(sink::DEFAULT_CAPACITY))
    }

    /// Creates a hub around a caller-supplied sink — pass
    /// [`EventSink::disabled`] to measure the instrumented-but-off baseline.
    /// The sink's clock becomes the hub's shared clock: the audit log, the
    /// flight recorder, and the watchdogs are all stamped against it.
    pub fn with_sink(sink: EventSink) -> ObsHub {
        let clock = sink.clock();
        let vm = Arc::new(MetricsRegistry::new("vm"));
        ObsHub {
            inner: Arc::new(HubInner {
                clock,
                audit: AuditLog::with_clock(audit::DEFAULT_CAPACITY, clock),
                recorder: FlightRecorder::with_clock(recorder::DEFAULT_CAPACITY, clock, true),
                profiler: Profiler::with_clock(clock),
                watchdogs: WatchdogRegistry::with_clock(clock),
                sink,
                checks: vm.counter("security.checks"),
                denied: vm.counter("security.denied"),
                check_ns: vm.histogram("security.check_ns"),
                check_depth: vm.histogram("security.check_depth"),
                cache_hits: vm.counter("access.cache.hits"),
                cache_misses: vm.counter("access.cache.misses"),
                cache_bypass: vm.counter("access.cache.bypass"),
                cache_invalidations: vm.counter("access.cache.invalidations"),
                stalls: vm.counter("watchdog.stalls"),
                demands: DemandLedger::with_instruments(
                    demand::DEFAULT_CAPACITY,
                    vm.counter("demands.recorded"),
                    vm.counter("demands.dropped"),
                    vm.counter("demands.unique"),
                ),
                vm,
                apps: std::array::from_fn(|_| {
                    RwLock::new(AppShard {
                        live: BTreeMap::new(),
                        retired: RegistrySnapshot::empty("retired"),
                    })
                }),
                resolver: RwLock::new(None),
            }),
        }
    }

    /// The shared monotonic clock every hub timestamp is measured against.
    pub fn clock(&self) -> ObsClock {
        self.inner.clock
    }

    /// The event stream.
    pub fn sink(&self) -> &EventSink {
        &self.inner.sink
    }

    /// The denial log.
    pub fn audit(&self) -> &AuditLog {
        &self.inner.audit
    }

    /// The span flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// The always-on VM profiler (per-opcode accounting + stack sampling).
    pub fn profiler(&self) -> &Profiler {
        &self.inner.profiler
    }

    /// The dispatcher/helper heartbeat registry.
    pub fn watchdogs(&self) -> &WatchdogRegistry {
        &self.inner.watchdogs
    }

    /// The permission-demand ledger.
    pub fn demands(&self) -> &DemandLedger {
        &self.inner.demands
    }

    /// Exports the flight recorder's spans *and* the profiler's retained
    /// samples as one Chrome `trace_event` document — the samples land as
    /// instant events on the same per-application `pid` rows as the spans.
    pub fn export_chrome_trace(&self) -> String {
        let mut events = self.inner.recorder.chrome_events();
        events.extend(self.inner.profiler.chrome_events());
        profile::chrome_trace_doc(events)
    }

    /// The VM-wide registry (metrics not attributable to one application).
    pub fn vm_metrics(&self) -> &Arc<MetricsRegistry> {
        &self.inner.vm
    }

    /// Installs the thread→application resolver. The runtime layer calls
    /// this once during bootstrap; until then attribution yields `None`.
    /// The flight recorder shares the resolver so scoped spans carry the
    /// same attribution as metrics and audit records.
    pub fn set_app_resolver(&self, resolver: AppResolver) {
        self.inner.recorder.set_app_resolver(Arc::clone(&resolver));
        *self.inner.resolver.write() = Some(resolver);
    }

    /// The application owning the calling thread, per the installed resolver.
    pub fn current_app(&self) -> Option<u64> {
        let resolver = self.inner.resolver.read().clone();
        resolver.and_then(|r| r())
    }

    /// The shard holding application `id`'s registry.
    fn app_shard(&self, id: u64) -> &RwLock<AppShard> {
        &self.inner.apps[(id as usize) % APP_SHARDS]
    }

    /// Gets or creates the metrics registry for application `id`; `label`
    /// names the registry on first creation (e.g. the program name).
    pub fn app_registry(&self, id: u64, label: &str) -> Arc<MetricsRegistry> {
        let shard = self.app_shard(id);
        if let Some(registry) = shard.read().live.get(&id) {
            return Arc::clone(registry);
        }
        Arc::clone(
            shard
                .write()
                .live
                .entry(id)
                .or_insert_with(|| Arc::new(MetricsRegistry::new(format!("{id}:{label}")))),
        )
    }

    /// The registry for application `id`, if it exists.
    pub fn existing_app_registry(&self, id: u64) -> Option<Arc<MetricsRegistry>> {
        self.app_shard(id).read().live.get(&id).map(Arc::clone)
    }

    /// Drops application `id`'s registry (called after reap). Its counters
    /// stop appearing in snapshots; its per-application-only totals are
    /// folded into the retired pool so the [`ObsHub::rollup`] never shrinks.
    /// The removal and the fold happen under ONE shard write lock, so a
    /// rollup racing the reap counts the application exactly once — it can
    /// never observe the registry gone from the live table but not yet
    /// merged into the retired pool.
    pub fn remove_app(&self, id: u64) {
        let mut shard = self.app_shard(id).write();
        if let Some(registry) = shard.live.remove(&id) {
            let snapshot = registry.snapshot();
            shard.retired.merge(&snapshot);
        }
    }

    /// Live per-application registries, in application-id order. Collected
    /// shard by shard — no lock spans the whole table.
    pub fn app_registries(&self) -> Vec<(u64, Arc<MetricsRegistry>)> {
        let mut out = Vec::new();
        for shard in &self.inner.apps {
            let guard = shard.read();
            out.extend(
                guard
                    .live
                    .iter()
                    .map(|(id, registry)| (*id, Arc::clone(registry))),
            );
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// The chokepoint instrumentation record for one permission check.
    /// Counts and times it VM-wide and against the calling application.
    /// `denied_context` is `None` for a granted check; a denial passes the
    /// refusing-domain message, which additionally lands in the audit log
    /// and the event stream. `cache` says how the decision cache
    /// participated — it feeds the `access.cache.*` counters and suffixes
    /// the span name so traces show which checks ran the slow path.
    pub fn record_access_check(
        &self,
        permission: &str,
        denied_context: Option<&str>,
        depth: usize,
        user: Option<&str>,
        latency_ns: u64,
        cache: CacheOutcome,
    ) {
        let app = self.current_app();
        self.inner.checks.inc();
        self.inner.check_ns.record(latency_ns);
        self.inner.check_depth.record(depth as u64);
        match cache {
            CacheOutcome::Hit => self.inner.cache_hits.inc(),
            CacheOutcome::Miss => self.inner.cache_misses.inc(),
            CacheOutcome::Bypass => self.inner.cache_bypass.inc(),
        }
        if let Some(registry) = app.and_then(|id| self.existing_app_registry(id)) {
            registry.counter("security.checks").inc();
            if denied_context.is_some() {
                registry.counter("security.denied").inc();
            }
        }
        // Inside a traced request, the check also leaves a span (the
        // recorder skips untraced threads itself). The cache outcome rides
        // in the span name as a poor man's attribute.
        self.inner.recorder.record_latency(
            recorder::SpanCategory::Check,
            cache.span_name(),
            app,
            latency_ns,
        );
        if let Some(context) = denied_context {
            self.inner.denied.inc();
            // A denial is an incident: the audit record carries the flight
            // recorder's span ring, i.e. the causal history that led here.
            self.inner.audit.record_with_dump(
                user.map(str::to_owned),
                app,
                permission,
                context,
                self.inner.recorder.dump(),
            );
            self.inner.sink.publish(
                EventKind::AccessDenied,
                app,
                user.map(str::to_owned),
                permission,
            );
        }
    }

    /// Records one decision-cache invalidation (an epoch bump: `set_policy`,
    /// `set_security_manager`, or a user-resolver change killed every cached
    /// decision at once).
    pub fn record_access_cache_invalidation(&self) {
        self.inner.cache_invalidations.inc();
    }

    /// Records a refused allocation — a resource-quota denial — as an
    /// audited incident, mirroring how permission denials are treated: a
    /// VM-wide and per-app `quota.denied` counter bump, an audit record,
    /// and a [`EventKind::QuotaDenied`] event on the sink.
    ///
    /// Only when `dump` is set does the record carry a flight-recorder
    /// snapshot. Cloning the span ring is the expensive part of incident
    /// capture, and an application storming its own quota generates
    /// thousands of denials a second — attaching a dump to each would turn
    /// the app's *denial accounting* into the very VM-wide stall the quota
    /// exists to prevent. Callers sample instead (the ledger dumps on
    /// power-of-two breach counts).
    pub fn record_quota_denial(
        &self,
        app: u64,
        user: Option<&str>,
        resource: &str,
        limit: u64,
        dump: bool,
    ) {
        self.inner.vm.counter("quota.denied").inc();
        if let Some(registry) = self.existing_app_registry(app) {
            registry.counter("quota.denied").inc();
        }
        let detail = format!("{resource} limit {limit}");
        self.inner.audit.record_with_dump(
            user.map(str::to_owned),
            Some(app),
            format!("resource \"{resource}\""),
            format!("quota exceeded: {detail}"),
            if dump {
                self.inner.recorder.dump()
            } else {
                Vec::new()
            },
        );
        self.inner.sink.publish(
            EventKind::QuotaDenied,
            Some(app),
            user.map(str::to_owned),
            detail,
        );
    }

    /// Records an application fault (its main thread returned an error) as
    /// an audited incident carrying the flight record, mirroring how
    /// denials are treated.
    pub fn record_app_fault(&self, app: Option<u64>, user: Option<&str>, error: &str) {
        self.inner.vm.counter("apps.faulted").inc();
        self.inner.audit.record_with_dump(
            user.map(str::to_owned),
            app,
            "(application fault)",
            error,
            self.inner.recorder.dump(),
        );
    }

    /// One watchdog checker pass: any heartbeat newly past the stall
    /// threshold raises a [`EventKind::Watchdog`] event, bumps the VM-wide
    /// `watchdog.stalls` counter, and is charged to the stalled
    /// dispatcher's application when it has one. Returns how many new
    /// stalls fired.
    pub fn check_watchdogs(&self) -> usize {
        let stalled = self.inner.watchdogs.check();
        for row in &stalled {
            self.inner.stalls.inc();
            if let Some(registry) = row.app.and_then(|id| self.existing_app_registry(id)) {
                registry.counter("watchdog.stalls").inc();
            }
            self.inner.sink.publish(
                EventKind::Watchdog,
                row.app,
                None,
                format!("{} stalled, last beat {}ms ago", row.name, row.age_ms),
            );
        }
        stalled.len()
    }

    /// The VM-wide rollup. For any metric the VM registry maintains itself
    /// (`security.checks`, `gui.dispatched`, ...) the VM value is
    /// authoritative — it already includes every application's activity, so
    /// summing the per-application copies in would double-count. Metrics
    /// kept *only* per application (e.g. `pipe.bytes`) are summed across
    /// live registries and the retired pool of reaped applications. Gauges,
    /// being point-in-time, are not rolled up.
    pub fn rollup(&self) -> RegistrySnapshot {
        // The warm demand-bump path never touches the shared instrument;
        // derive `demands.recorded` from the cells at export time.
        self.inner.demands.sync_instruments();
        let mut rolled = self.inner.vm.snapshot();
        let vm_counters: Vec<String> = rolled.counters.keys().cloned().collect();
        let vm_histograms: Vec<String> = rolled.histograms.keys().cloned().collect();
        let fold = |snap: &RegistrySnapshot, rolled: &mut RegistrySnapshot| {
            for (name, value) in &snap.counters {
                if !vm_counters.contains(name) {
                    *rolled.counters.entry(name.clone()).or_insert(0) += value;
                }
            }
            for (name, hist) in &snap.histograms {
                if !vm_histograms.contains(name) {
                    rolled
                        .histograms
                        .entry(name.clone())
                        .and_modify(|h| h.merge(hist))
                        .or_insert_with(|| hist.clone());
                }
            }
        };
        // Fold each shard under its own read lock: the reap path retires a
        // registry under the same lock, so within a shard every application
        // contributes exactly once — live xor retired.
        for shard in &self.inner.apps {
            let guard = shard.read();
            fold(&guard.retired, &mut rolled);
            for registry in guard.live.values() {
                fold(&registry.snapshot(), &mut rolled);
            }
        }
        rolled
    }

    /// A serializable point-in-time snapshot of everything the hub holds.
    pub fn snapshot(&self) -> HubSnapshot {
        self.inner.demands.sync_instruments();
        let apps = self
            .app_registries()
            .into_iter()
            .map(|(_, registry)| {
                let snap = registry.snapshot();
                (snap.name.clone(), snap)
            })
            .collect();
        HubSnapshot {
            vm: self.inner.vm.snapshot(),
            apps,
            events_published: self.inner.sink.published(),
            events_dropped: self.inner.sink.dropped(),
            audit_total: self.inner.audit.total(),
            spans_recorded: self.inner.recorder.recorded(),
            spans_dropped: self.inner.recorder.dropped(),
        }
    }

    /// Recent audit records filtered by user and/or app — see
    /// [`AuditLog::query`].
    pub fn audit_query(&self, user: Option<&str>, app: Option<u64>) -> Vec<AuditRecord> {
        self.inner.audit.query(user, app)
    }
}

impl std::fmt::Debug for ObsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsHub")
            .field("sink", &self.inner.sink)
            .field("audit", &self.inner.audit)
            .field(
                "apps",
                &self
                    .inner
                    .apps
                    .iter()
                    .map(|shard| shard.read().live.len())
                    .sum::<usize>(),
            )
            .finish()
    }
}

/// Point-in-time export of the hub: the VM registry, every per-application
/// registry (keyed by registry name, `"<id>:<label>"`), and the stream and
/// audit totals. This is what `experiments --json` embeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HubSnapshot {
    /// The VM-wide registry.
    pub vm: RegistrySnapshot,
    /// Per-application registries keyed by name.
    pub apps: BTreeMap<String, RegistrySnapshot>,
    /// Total events published to the sink.
    pub events_published: u64,
    /// Events rotated out of the full ring.
    pub events_dropped: u64,
    /// Total permission denials audited.
    pub audit_total: u64,
    /// Total spans recorded by the flight recorder.
    pub spans_recorded: u64,
    /// Spans rotated out of the full recorder ring.
    pub spans_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_check_attributes_to_current_app() {
        let hub = ObsHub::new();
        hub.app_registry(3, "ps");
        hub.set_app_resolver(Arc::new(|| Some(3)));
        hub.record_access_check(
            "(file /etc/passwd read)",
            None,
            4,
            Some("alice"),
            250,
            CacheOutcome::Hit,
        );
        hub.record_access_check(
            "(file /home/alice/notes read)",
            Some("file:/apps/cat"),
            6,
            Some("bob"),
            900,
            CacheOutcome::Bypass,
        );
        assert_eq!(hub.vm_metrics().counter("security.checks").get(), 2);
        assert_eq!(hub.vm_metrics().counter("security.denied").get(), 1);
        assert_eq!(hub.vm_metrics().counter("access.cache.hits").get(), 1);
        assert_eq!(hub.vm_metrics().counter("access.cache.bypass").get(), 1);
        assert_eq!(hub.vm_metrics().counter("access.cache.misses").get(), 0);
        let app = hub.existing_app_registry(3).unwrap();
        assert_eq!(app.counter("security.checks").get(), 2);
        assert_eq!(app.counter("security.denied").get(), 1);
        let denials = hub.audit_query(Some("bob"), Some(3));
        assert_eq!(denials.len(), 1);
        assert_eq!(denials[0].permission, "(file /home/alice/notes read)");
        assert_eq!(denials[0].context, "file:/apps/cat");
        let events = hub.sink().recent();
        assert_eq!(events.len(), 1, "only the denial hits the event stream");
        assert_eq!(events[0].kind, EventKind::AccessDenied);
    }

    #[test]
    fn rollup_sums_vm_and_app_counters() {
        let hub = ObsHub::new();
        hub.vm_metrics().counter("classes.defined").add(5);
        hub.app_registry(1, "sh").counter("pipe.bytes").add(7);
        hub.app_registry(2, "ps").counter("pipe.bytes").add(3);
        let rolled = hub.rollup();
        assert_eq!(rolled.counters["classes.defined"], 5);
        assert_eq!(rolled.counters["pipe.bytes"], 10);
    }

    #[test]
    fn rollup_never_double_counts_vm_maintained_metrics() {
        // The chokepoint bumps both the VM counter and the per-app copy;
        // the rollup must report the VM total, not the sum of both.
        let hub = ObsHub::new();
        hub.app_registry(1, "cat");
        hub.set_app_resolver(Arc::new(|| Some(1)));
        hub.record_access_check("", None, 2, None, 100, CacheOutcome::Miss);
        hub.record_access_check(
            "(runtime x)",
            Some("ctx"),
            2,
            Some("bob"),
            100,
            CacheOutcome::Bypass,
        );
        let rolled = hub.rollup();
        assert_eq!(rolled.counters["security.checks"], 2);
        assert_eq!(rolled.counters["security.denied"], 1);
    }

    #[test]
    fn reaped_app_totals_are_retained_in_the_rollup() {
        let hub = ObsHub::new();
        hub.app_registry(1, "sh").counter("pipe.bytes").add(40);
        hub.remove_app(1);
        assert!(hub.snapshot().apps.is_empty());
        assert_eq!(hub.rollup().counters["pipe.bytes"], 40);
    }

    #[test]
    fn rollup_racing_reaps_counts_each_app_exactly_once() {
        // The reap path retires a registry under the same shard lock that
        // removes it from the live table, so a rollup running concurrently
        // with reaps must see every application exactly once: with one unit
        // of `pipe.bytes` per app, every intermediate rollup sums to the
        // full total — never less (app vanished mid-retire), never more
        // (app counted live *and* retired).
        let hub = ObsHub::new();
        const APPS: u64 = 200;
        for id in 0..APPS {
            hub.app_registry(id, "storm").counter("pipe.bytes").inc();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = {
            let hub = hub.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observed = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    observed.push(hub.rollup().counters["pipe.bytes"]);
                }
                observed
            })
        };
        for id in 0..APPS {
            hub.remove_app(id);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let observed = reader.join().unwrap();
        assert!(
            observed.iter().all(|&total| total == APPS),
            "a rollup lost or duplicated an app mid-reap: {observed:?}"
        );
        assert_eq!(hub.rollup().counters["pipe.bytes"], APPS);
    }

    #[test]
    fn remove_app_drops_it_from_snapshots() {
        let hub = ObsHub::new();
        hub.app_registry(1, "sh").counter("x").inc();
        hub.app_registry(2, "ps").counter("x").inc();
        assert_eq!(hub.snapshot().apps.len(), 2);
        hub.remove_app(1);
        let snap = hub.snapshot();
        assert_eq!(snap.apps.len(), 1);
        assert!(snap.apps.contains_key("2:ps"));
    }

    #[test]
    fn sink_audit_recorder_and_watchdogs_share_one_clock() {
        // The satellite fix: one epoch, not one per substrate piece.
        let hub = ObsHub::new();
        assert_eq!(hub.sink().clock(), hub.clock());
        assert_eq!(hub.audit().clock(), hub.clock());
        assert_eq!(hub.recorder().clock(), hub.clock());
    }

    #[test]
    fn denial_inside_a_trace_carries_the_flight_record() {
        let hub = ObsHub::new();
        let span = hub
            .recorder()
            .begin(crate::SpanCategory::Exec, "exec:snoop")
            .unwrap();
        let trace_id = span.trace_id();
        hub.record_access_check(
            "(file /home/alice/x read)",
            Some("file:/apps/snoop"),
            5,
            Some("bob"),
            700,
            CacheOutcome::Bypass,
        );
        drop(span);
        crate::trace::clear();
        let denials = hub.audit_query(Some("bob"), None);
        assert_eq!(denials.len(), 1);
        let dump = &denials[0].trace;
        assert!(!dump.is_empty(), "the denial carries the span ring");
        assert!(
            dump.iter()
                .any(|s| s.category == crate::SpanCategory::Check && s.trace_id == trace_id),
            "the refused check itself is in the dump: {dump:?}"
        );
    }

    #[test]
    fn app_fault_is_audited_with_the_flight_record() {
        let hub = ObsHub::new();
        hub.record_app_fault(Some(9), Some("alice"), "I/O error: pipe closed");
        assert_eq!(hub.vm_metrics().counter("apps.faulted").get(), 1);
        let records = hub.audit_query(None, Some(9));
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].permission, "(application fault)");
        assert_eq!(records[0].context, "I/O error: pipe closed");
    }

    #[test]
    fn watchdog_stall_raises_event_and_metric() {
        let hub = ObsHub::new();
        hub.app_registry(4, "gui");
        hub.watchdogs()
            .set_threshold(std::time::Duration::from_millis(10));
        hub.watchdogs().register("awt-dispatch-4", Some(4));
        std::thread::sleep(std::time::Duration::from_millis(40));
        assert_eq!(hub.check_watchdogs(), 1);
        assert_eq!(hub.vm_metrics().counter("watchdog.stalls").get(), 1);
        assert_eq!(
            hub.existing_app_registry(4)
                .unwrap()
                .counter("watchdog.stalls")
                .get(),
            1
        );
        let events = hub.sink().recent();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Watchdog);
        assert_eq!(events[0].app, Some(4));
        assert!(events[0].detail.contains("awt-dispatch-4"));
        // The latch: no second event until it beats and stalls again.
        assert_eq!(hub.check_watchdogs(), 0);
    }

    #[test]
    fn combined_chrome_export_interleaves_spans_and_samples() {
        let hub = ObsHub::new();
        crate::trace::clear();
        {
            let _span = hub.recorder().begin(crate::SpanCategory::Exec, "exec:sh");
        }
        crate::trace::clear();
        let loc = hub.profiler().register_thread(Some(2));
        loc.publish(&[Arc::from("Applet.main")]);
        hub.profiler().sample_once(10_000);
        let json = hub.export_chrome_trace();
        let doc: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = doc.get("traceEvents").unwrap().as_seq().unwrap().to_vec();
        let cats: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("cat").and_then(|c| c.as_str()))
            .collect();
        assert!(cats.contains(&"exec"), "{cats:?}");
        assert!(cats.contains(&"profile"), "{cats:?}");
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let hub = ObsHub::new();
        hub.vm_metrics().histogram("security.check_ns").record(300);
        hub.app_registry(4, "mc").gauge("threads.live").set(2);
        hub.sink().publish(EventKind::AppExec, Some(4), None, "mc");
        let snap = hub.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: HubSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.events_published, 1);
    }
}
