//! O1: observability overhead — what instrumenting the §5 security
//! chokepoint costs, and what an application pays when the event sink is
//! disabled (the answer must be "one relaxed atomic load").

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use jmp_obs::{CacheOutcome, EventKind, EventSink, ObsHub};
use jmp_security::{AccessController, CodeSource, Permission, ProtectionDomain};
use jmp_vm::{stack, Vm};

/// Publishing into a live ring vs the disabled fast path.
fn bench_event_publish(c: &mut Criterion) {
    let enabled = EventSink::new(1024);
    let disabled = EventSink::disabled();
    let mut group = c.benchmark_group("O1/event_publish");
    group.bench_function("enabled", |b| {
        b.iter(|| enabled.publish(EventKind::ClassDefined, Some(1), None, "Bench"));
    });
    group.bench_function("disabled", |b| {
        b.iter(|| disabled.publish(EventKind::ClassDefined, Some(1), None, "Bench"));
    });
    group.finish();
}

/// The hub's granted-path accounting (counters + two histograms), with the
/// event sink enabled and disabled. Granted checks never publish events, so
/// the two should be indistinguishable — this is the regression canary.
fn bench_record_access_check(c: &mut Criterion) {
    let live = ObsHub::new();
    let off = ObsHub::with_sink(EventSink::disabled());
    let mut group = c.benchmark_group("O1/record_access_check");
    group.bench_function("sink_enabled", |b| {
        b.iter(|| live.record_access_check("", None, 8, Some("alice"), 250, CacheOutcome::Hit));
    });
    group.bench_function("sink_disabled", |b| {
        b.iter(|| off.record_access_check("", None, 8, Some("alice"), 250, CacheOutcome::Hit));
    });
    group.finish();
}

/// The full chokepoint: `Vm::check_permission` (controller walk + hub
/// accounting) against the bare controller walk it wraps. The difference is
/// the observability tax on every granted check; the acceptance bar is
/// ~10% of the instrumented path.
fn bench_instrumented_check(c: &mut Criterion) {
    let vm = Vm::new();
    let demand = Permission::runtime("benchPermission");
    let trusted = Arc::new(ProtectionDomain::new(
        CodeSource::local("file:/sys/bench"),
        jmp_security::PermissionCollection::all_permissions(),
    ));
    let mut group = c.benchmark_group("O1/granted_check");
    group.bench_function("instrumented_vm", |b| {
        stack::call_as("Bench", Arc::clone(&trusted), || {
            b.iter(|| vm.check_permission(&demand).is_ok());
        });
    });
    group.bench_function("bare_controller", |b| {
        stack::call_as("Bench", Arc::clone(&trusted), || {
            b.iter(|| {
                let ctx = stack::current_access_context();
                AccessController::check(&ctx, &demand).is_ok()
            });
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_publish,
    bench_record_access_check,
    bench_instrumented_check
);
criterion_main!(benches);
