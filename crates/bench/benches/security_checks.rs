//! A2: access-control overhead — permission checks vs stack depth, with and
//! without the paper's user-based combination (§5.3), and the effect of
//! `doPrivileged`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jmp_security::{
    AccessContext, AccessController, CodeSource, FileActions, Permission, PermissionCollection,
    Policy, ProtectionDomain,
};

fn trusted_domain() -> Arc<ProtectionDomain> {
    Arc::new(ProtectionDomain::new(
        CodeSource::local("file:/sys/bench"),
        PermissionCollection::all_permissions(),
    ))
}

fn exercising_domain() -> Arc<ProtectionDomain> {
    Arc::new(ProtectionDomain::new(
        CodeSource::local("file:/apps/bench"),
        [Permission::exercise_user_permissions()]
            .into_iter()
            .collect(),
    ))
}

fn ctx_of_depth(domain: &Arc<ProtectionDomain>, depth: usize) -> AccessContext {
    AccessContext::from_domains(vec![Arc::clone(domain); depth])
}

fn bench_depth(c: &mut Criterion) {
    let demand = Permission::file("/tmp/bench.txt", FileActions::READ);
    let domain = trusted_domain();
    let mut group = c.benchmark_group("A2/check_vs_stack_depth");
    for depth in [1usize, 4, 16, 64] {
        let ctx = ctx_of_depth(&domain, depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &ctx, |b, ctx| {
            b.iter(|| AccessController::check(ctx, &demand).is_ok());
        });
    }
    group.finish();
}

fn bench_user_combination(c: &mut Criterion) {
    let demand = Permission::file("/home/alice/bench.txt", FileActions::READ);
    let mut policy = Policy::new();
    policy.grant_user(
        "alice",
        vec![Permission::file("/home/alice/-", FileActions::ALL)],
    );
    let code_only_ctx = ctx_of_depth(&trusted_domain(), 8);
    let user_ctx = ctx_of_depth(&exercising_domain(), 8);

    let mut group = c.benchmark_group("A2/user_based_combination");
    group.bench_function("code_source_only", |b| {
        b.iter(|| AccessController::check_with(&code_only_ctx, &demand, None, &policy).is_ok());
    });
    group.bench_function("code_plus_user_grant", |b| {
        b.iter(|| AccessController::check_with(&user_ctx, &demand, Some("alice"), &policy).is_ok());
    });
    group.finish();
}

fn bench_do_privileged(c: &mut Criterion) {
    let demand = Permission::file("/tmp/bench.txt", FileActions::READ);
    let trusted = trusted_domain();
    let mut group = c.benchmark_group("A2/do_privileged");
    // Deep trusted stack: the walk visits every frame...
    group.bench_function("deep_walk_64", |b| {
        b.iter_batched(
            || ctx_of_depth(&trusted, 64),
            |ctx| AccessController::check(&ctx, &demand).is_ok(),
            criterion::BatchSize::SmallInput,
        );
    });
    // ...unless a privileged frame near the top stops it.
    group.bench_function("privileged_stops_walk_64", |b| {
        b.iter_batched(
            || ctx_of_depth(&trusted, 63).with_frame(Arc::clone(&trusted), true),
            |ctx| AccessController::check(&ctx, &demand).is_ok(),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_frame_push(c: &mut Criterion) {
    let trusted = trusted_domain();
    c.bench_function("A2/frame_push_pop", |b| {
        b.iter(|| jmp_vm::stack::call_as("Bench", Arc::clone(&trusted), || 1u32));
    });
}

criterion_group!(
    benches,
    bench_depth,
    bench_user_combination,
    bench_do_privileged,
    bench_frame_push
);
criterion_main!(benches);
