//! E2's measured side as a microbenchmark: display-to-listener dispatch
//! latency through the per-application pipeline (Fig 4), no contention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use jmp_awt::{DispatchMode, DisplayServer, Toolkit};
use jmp_vm::Vm;

fn bench_dispatch(c: &mut Criterion) {
    let vm = Vm::new();
    let display = DisplayServer::new();
    let toolkit = Toolkit::connect(vm.clone(), display.clone(), DispatchMode::PerApplication);
    let window = toolkit.create_window("bench").unwrap();
    let button = window.add_button("go");
    let delivered = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&delivered);
    window.on_action(button, move |_| {
        counter.fetch_add(1, Ordering::SeqCst);
    });

    let mut group = c.benchmark_group("E2/per_app_dispatch");
    group.sample_size(30);
    group.bench_function("inject_to_delivery", |b| {
        b.iter(|| {
            let before = delivered.load(Ordering::SeqCst);
            display.inject_action(window.id(), button).unwrap();
            while delivered.load(Ordering::SeqCst) == before {
                std::hint::spin_loop();
            }
        });
    });
    group.finish();
    vm.exit_unchecked(0);
}

fn bench_queue_only(c: &mut Criterion) {
    // The queue data structure itself, without threads.
    let queue = jmp_awt::EventQueue::new();
    c.bench_function("E2/event_queue_push_pop", |b| {
        b.iter(|| {
            queue.push(jmp_awt::Event::new(
                jmp_awt::WindowId(1),
                Some(jmp_awt::ComponentId(1)),
                jmp_awt::EventKind::Action,
            ));
            queue.pop().unwrap().unwrap()
        });
    });
}

criterion_group!(benches, bench_dispatch, bench_queue_only);
criterion_main!(benches);
