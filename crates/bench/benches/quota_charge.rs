//! A7: the resource-ledger charge path in isolation — what every
//! allocation (thread spawn, pipe write, event push, handle open) now pays.
//! Three shapes: a granted charge/uncharge pair, a charge racing three
//! sibling threads on the same ledger, and a denied charge (rollback +
//! breach accounting + audit record).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use jmp_vm::{AppContext, GroupId, ResourceKind};

fn context() -> Arc<AppContext> {
    AppContext::new(1, "Bench", "alice", GroupId(1), jmp_obs::ObsHub::new())
}

fn bench_quota_charge(c: &mut Criterion) {
    // The uncontended hot path: fetch_add, compare, done.
    let ctx = context();
    c.bench_function("ledger_charge_uncharge", |b| {
        b.iter(|| {
            ctx.try_charge(ResourceKind::PipeBytes, 64).unwrap();
            ctx.uncharge(ResourceKind::PipeBytes, 64);
        })
    });

    // The same pair with three sibling threads hammering the same slot —
    // the lock-free ledger's whole reason to exist.
    let shared = context();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let siblings: Vec<_> = (0..3)
        .map(|_| {
            let ctx = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    ctx.try_charge(ResourceKind::PipeBytes, 64).unwrap();
                    ctx.uncharge(ResourceKind::PipeBytes, 64);
                }
            })
        })
        .collect();
    c.bench_function("ledger_charge_uncharge_contended", |b| {
        b.iter(|| {
            shared.try_charge(ResourceKind::PipeBytes, 64).unwrap();
            shared.uncharge(ResourceKind::PipeBytes, 64);
        })
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for sibling in siblings {
        sibling.join().unwrap();
    }

    // The denial path: rollback, breach counter, audit record with dump —
    // deliberately heavier, and only ever paid by the app over its limit.
    let capped = context();
    capped.limits().set(ResourceKind::Threads, 0);
    c.bench_function("ledger_denied_charge", |b| {
        b.iter(|| {
            let _ = std::hint::black_box(capped.try_charge(ResourceKind::Threads, 1));
        })
    });
}

criterion_group!(benches, bench_quota_charge);
criterion_main!(benches);
