//! A10: the control-plane read paths in isolation — what E19 measures under
//! a fleet, taken one operation at a time.
//!
//! * `registry_lookup` — a point lookup in the sharded app registry with a
//!   thousand live applications resident.
//! * `policy_root_read` — a policy-root read through the striped epoch
//!   cells, uncontended and beside three reader threads (the case the old
//!   `RwLock<Arc<Policy>>` root serialized).
//! * `lazy_grant_load` — the lazy store: a warm per-user check, and the
//!   cold load (parse + index + intern) a first demand pays.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use jmp_security::{FileActions, LazyUserStore, Permission, TemplateGrantSource};

/// Live applications resident during the registry benchmark.
const RESIDENT_APPS: usize = 1_000;

fn bench_registry_lookup(c: &mut Criterion) {
    let rt = jmp_bench::harness::standard_runtime(None);
    jmp_bench::harness::register_app(&rt, "parker", |_| {
        while jmp_vm::thread::sleep(Duration::from_secs(3600)).is_ok() {}
        Ok(())
    });
    let fleet: Vec<_> = (0..RESIDENT_APPS)
        .map(|_| rt.launch_as("alice", "parker", &[]).expect("parker"))
        .collect();
    let probe = fleet[RESIDENT_APPS / 2].id();
    c.bench_function("registry_lookup", |b| {
        b.iter(|| std::hint::black_box(rt.application(probe)))
    });
    for app in &fleet {
        app.stop(0).expect("parker stops");
    }
    assert!(rt.await_idle(Duration::from_secs(60)), "fleet drains");
    rt.shutdown();
}

fn bench_policy_root_read(c: &mut Criterion) {
    let rt = jmp_bench::harness::standard_runtime(None);
    let vm = rt.vm().clone();
    c.bench_function("policy_root_read", |b| {
        b.iter(|| std::hint::black_box(vm.policy()))
    });

    // The same read beside three threads doing nothing but policy reads —
    // the striped cells keep them off each other's cache lines and locks.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let vm = vm.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    std::hint::black_box(vm.policy());
                }
            })
        })
        .collect();
    c.bench_function("policy_root_read_contended", |b| {
        b.iter(|| std::hint::black_box(vm.policy()))
    });
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for reader in readers {
        reader.join().unwrap();
    }
    rt.shutdown();
}

fn bench_lazy_grant_load(c: &mut Criterion) {
    let store = LazyUserStore::new(Arc::new(TemplateGrantSource::new(
        "u",
        1_000_000,
        r#"grant user "${user}" { permission file "/srv/${user}/-" "read,write"; };"#,
    )));
    let demand = Permission::file("/srv/u500000/data", FileActions::READ);
    assert!(store.lookup("u500000").implies(&demand));
    c.bench_function("lazy_grant_check_warm", |b| {
        b.iter(|| std::hint::black_box(store.lookup("u500000").implies(&demand)))
    });

    // The cold path: every iteration is a different user's first demand, so
    // each pays the source read + parse + index.
    let mut next = 0u64;
    c.bench_function("lazy_grant_load_cold", |b| {
        b.iter(|| {
            let user = format!("u{next}");
            next = (next + 1) % 1_000_000;
            std::hint::black_box(store.lookup(&user))
        })
    });
}

criterion_group!(
    benches,
    bench_registry_lookup,
    bench_policy_root_read,
    bench_lazy_grant_load
);
criterion_main!(benches);
