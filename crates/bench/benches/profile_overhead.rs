//! A8: profiler overhead — the interpreter's per-opcode accounting on vs
//! off (and vs no profiler attached at all) on the hot dispatch loop. The
//! budget CI gates on is ≤5% slowdown with accounting enabled; with it
//! disabled the cost is a safepoint-cadence atomic load (~0%).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use jmp_obs::Profiler;
use jmp_vm::interp::{assemble, Interpreter, NoNatives, Value};

const SUM_LOOP: &str = r#"
    class Sum
    method main/1 locals=2
        push_int 0
        store 1
    loop:
        load 0
        push_int 0
        gt
        jump_if_false done
        load 1
        load 0
        add
        store 1
        load 0
        push_int 1
        sub
        store 0
        jump loop
    done:
        load 1
        return_value
"#;

const N: i64 = 10_000;

fn bench_profile_overhead(c: &mut Criterion) {
    let image = Arc::new(assemble(SUM_LOOP).unwrap());
    let mut group = c.benchmark_group("A8/profile_overhead");

    let bare = Interpreter::new(Arc::clone(&image), Arc::new(NoNatives)).unwrap();
    group.bench_function("no_profiler", |b| {
        b.iter(|| bare.run("main", vec![Value::Int(N)]).unwrap());
    });

    let off_profiler = Profiler::new();
    off_profiler.set_enabled(false);
    let off = Interpreter::new(Arc::clone(&image), Arc::new(NoNatives))
        .unwrap()
        .with_profiler(off_profiler);
    group.bench_function("accounting_off", |b| {
        b.iter(|| off.run("main", vec![Value::Int(N)]).unwrap());
    });

    // Sampling off isolates the accounting cost: the tally increment per
    // instruction plus one flush per 1024-instruction safepoint.
    let on_profiler = Profiler::new();
    on_profiler.set_sampling(false);
    let on = Interpreter::new(Arc::clone(&image), Arc::new(NoNatives))
        .unwrap()
        .with_profiler(on_profiler);
    group.bench_function("accounting_on", |b| {
        b.iter(|| on.run("main", vec![Value::Int(N)]).unwrap());
    });

    group.finish();
}

criterion_group!(benches, bench_profile_overhead);
criterion_main!(benches);
