//! A4: flight-recorder overhead — what a span site costs with the recorder
//! disabled (the answer must be "one relaxed atomic load"), what a live
//! ring push costs, and what tracing adds to the instrumented
//! `Vm::check_permission` chokepoint on top of the PR 1 baseline.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use jmp_obs::{trace, FlightRecorder, SpanCategory, TraceCtx};
use jmp_security::{CodeSource, Permission, ProtectionDomain};
use jmp_vm::{stack, Vm};

/// A span site with the recorder disabled vs enabled: `record_latency`
/// under an installed trace context, and the disabled `begin` fast path.
fn bench_span_site(c: &mut Criterion) {
    let enabled = FlightRecorder::new(2048);
    let disabled = FlightRecorder::new(2048);
    disabled.set_enabled(false);
    trace::install(Some(TraceCtx {
        trace_id: 1,
        parent_span: 1,
    }));
    let mut group = c.benchmark_group("A4/span_site");
    group.bench_function("record_latency_enabled", |b| {
        b.iter(|| enabled.record_latency(SpanCategory::Check, "bench", Some(1), 250));
    });
    group.bench_function("record_latency_disabled", |b| {
        b.iter(|| disabled.record_latency(SpanCategory::Check, "bench", Some(1), 250));
    });
    group.bench_function("begin_disabled", |b| {
        b.iter(|| {
            disabled
                .begin(SpanCategory::Exec, "bench".to_string())
                .is_none()
        });
    });
    group.finish();
    trace::clear();
}

/// The full §5 chokepoint with the recorder on vs off. The off-path must
/// stay within ~10% of the PR 1 baseline (`O1/granted_check` in
/// `obs_overhead.rs`): an untraced granted check pays one extra relaxed
/// atomic load.
fn bench_traced_check(c: &mut Criterion) {
    let vm = Vm::new();
    let demand = Permission::runtime("benchPermission");
    let trusted = Arc::new(ProtectionDomain::new(
        CodeSource::local("file:/sys/bench"),
        jmp_security::PermissionCollection::all_permissions(),
    ));
    let mut group = c.benchmark_group("A4/granted_check");
    trace::install(Some(TraceCtx {
        trace_id: 1,
        parent_span: 1,
    }));
    vm.obs().recorder().set_enabled(true);
    group.bench_function("recorder_on", |b| {
        stack::call_as("Bench", Arc::clone(&trusted), || {
            b.iter(|| vm.check_permission(&demand).is_ok());
        });
    });
    vm.obs().recorder().set_enabled(false);
    group.bench_function("recorder_off", |b| {
        stack::call_as("Bench", Arc::clone(&trusted), || {
            b.iter(|| vm.check_permission(&demand).is_ok());
        });
    });
    group.finish();
    trace::clear();
}

criterion_group!(benches, bench_span_site, bench_traced_check);
criterion_main!(benches);
