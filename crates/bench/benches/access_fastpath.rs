//! A5: the access-control fast path in isolation — the fingerprint probe,
//! a warm cached check, a cold (flushed-every-iteration) check, and the
//! indexed-vs-linear policy question embedded in the cold number.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use jmp_security::{CodeSource, FileActions, Permission, Policy, ProtectionDomain};
use jmp_vm::{stack, Vm};

fn bench_policy() -> Policy {
    let mut policy = Policy::new();
    policy.grant_code(
        CodeSource::local("file:/apps/-"),
        vec![
            Permission::file("/data/-", FileActions::READ),
            Permission::file("/tmp/-", FileActions::ALL),
            Permission::file("/etc/app.conf", FileActions::READ),
            Permission::runtime("queuePrintJob"),
        ],
    );
    policy
}

fn with_frames<R>(domains: &[Arc<ProtectionDomain>], f: impl FnOnce() -> R) -> R {
    match domains.split_first() {
        None => f(),
        Some((domain, rest)) => {
            stack::call_as("Bench", Arc::clone(domain), || with_frames(rest, f))
        }
    }
}

fn domains(vm: &Vm, n: usize) -> Vec<Arc<ProtectionDomain>> {
    (0..n)
        .map(|i| {
            let source = CodeSource::local(format!("file:/apps/bench{i}"));
            let permissions = vm.policy().permissions_for(&source);
            Arc::new(ProtectionDomain::new(source, permissions))
        })
        .collect()
}

/// The no-alloc fingerprint probe against the full context snapshot it
/// replaces on the warm path.
fn bench_probe(c: &mut Criterion) {
    let vm = Vm::builder().policy(bench_policy()).build();
    let stack_domains = domains(&vm, 8);
    let mut group = c.benchmark_group("A5/probe");
    with_frames(&stack_domains, || {
        group.bench_function("probe_fingerprint", |b| {
            b.iter(|| stack::probe_fingerprint().0.hash);
        });
        group.bench_function("snapshot_and_fingerprint", |b| {
            b.iter(|| stack::current_access_context().fingerprint().hash);
        });
    });
    group.finish();
}

/// Warm (cached) vs cold (flushed) full checks through the VM chokepoint.
fn bench_check(c: &mut Criterion) {
    let vm = Vm::builder().policy(bench_policy()).build();
    let stack_domains = domains(&vm, 8);
    let demand = Permission::file("/data/report.txt", FileActions::READ);
    let mut group = c.benchmark_group("A5/check");
    with_frames(&stack_domains, || {
        vm.access_check(&demand).expect("granted");
        group.bench_function("warm_cached", |b| {
            b.iter(|| vm.access_check(&demand).is_ok());
        });
        group.bench_function("cold_flushed", |b| {
            b.iter(|| {
                vm.flush_access_cache();
                vm.access_check(&demand).is_ok()
            });
        });
    });
    group.finish();
}

criterion_group!(benches, bench_probe, bench_check);
criterion_main!(benches);
