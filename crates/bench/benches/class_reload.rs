//! A1 (§5.5 ablation): the cost of re-loading the `System` class per
//! application — definition through a fresh loader with new statics —
//! against plain delegated lookup, and the full application-setup path.

use criterion::{criterion_group, criterion_main, Criterion};
use jmp_bench::harness::{register_app, standard_runtime};
use jmp_core::SYSTEM_CLASS;

fn bench_define_vs_delegate(c: &mut Criterion) {
    let rt = standard_runtime(None);
    let system_loader = rt.vm().system_loader().clone();
    // Warm: the parent has the class defined.
    system_loader.load_class(SYSTEM_CLASS).unwrap();

    let mut group = c.benchmark_group("A1/class_resolution");
    group.bench_function("delegated_lookup(shared_class)", |b| {
        let child = system_loader.new_child("delegating");
        b.iter(|| child.load_class(SYSTEM_CLASS).unwrap());
    });
    group.bench_function("reload(define_fresh_class_with_statics)", |b| {
        b.iter_batched(
            || {
                let loader = system_loader.new_child("reloading");
                loader.add_reload(SYSTEM_CLASS);
                loader
            },
            |loader| loader.load_class(SYSTEM_CLASS).unwrap(),
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
    rt.shutdown();
}

fn bench_full_app_setup(c: &mut Criterion) {
    let rt = standard_runtime(None);
    register_app(&rt, "noop_bench", |_| Ok(()));
    let mut group = c.benchmark_group("A1/application_setup");
    group.sample_size(20);
    group.bench_function("exec_and_wait(noop_app)", |b| {
        b.iter(|| {
            let app = rt.launch_as("alice", "noop_bench", &[]).unwrap();
            app.wait_for().unwrap()
        });
    });
    group.finish();
    rt.shutdown();
}

criterion_group!(benches, bench_define_vs_delegate, bench_full_app_setup);
criterion_main!(benches);
