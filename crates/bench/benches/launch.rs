//! E5a's measured side and E1's machinery as microbenchmarks: application
//! launch, bare thread spawn, and thread-group bookkeeping.

use criterion::{criterion_group, criterion_main, Criterion};
use jmp_bench::harness::{register_app, standard_runtime};
use jmp_vm::Vm;

fn bench_thread_spawn(c: &mut Criterion) {
    let vm = Vm::new();
    let mut group = c.benchmark_group("E5a/vm_thread");
    group.sample_size(30);
    group.bench_function("spawn_join", |b| {
        b.iter(|| {
            let t = vm.thread_builder().name("bench").spawn(|_| {}).unwrap();
            t.join().unwrap();
        });
    });
    group.finish();
    vm.exit_unchecked(0);
}

fn bench_group_tree(c: &mut Criterion) {
    let vm = Vm::new();
    c.bench_function("E1/group_create_destroy", |b| {
        b.iter(|| {
            let g = vm.main_group().new_child("bench-group").unwrap();
            g.destroy();
            g.is_destroyed()
        });
    });
    vm.exit_unchecked(0);
}

fn bench_app_launch(c: &mut Criterion) {
    let rt = standard_runtime(None);
    register_app(&rt, "noop_launch", |_| Ok(()));
    let mut group = c.benchmark_group("E5a/application");
    group.sample_size(20);
    group.bench_function("exec_wait_reap", |b| {
        b.iter(|| {
            let app = rt.launch_as("alice", "noop_launch", &[]).unwrap();
            app.wait_for().unwrap()
        });
    });
    group.finish();
    rt.shutdown();
}

fn bench_vm_lifecycle(c: &mut Criterion) {
    // Fig 1 end to end: boot a VM, run a trivial main, await termination.
    let mut group = c.benchmark_group("E1/vm_run_to_exit");
    group.sample_size(20);
    group.bench_function("run_trivial_main", |b| {
        b.iter(|| {
            let vm = Vm::new();
            vm.material()
                .register(
                    jmp_vm::ClassDef::builder("Trivial")
                        .main(|_| Ok(()))
                        .build(),
                    jmp_security::CodeSource::local("file:/sys/classes"),
                )
                .unwrap();
            vm.run("Trivial", vec![]).unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_thread_spawn,
    bench_group_tree,
    bench_app_launch,
    bench_vm_lifecycle
);
criterion_main!(benches);
