//! A6: the data-plane primitives in isolation — ring-pipe copies (aligned
//! and seam-straddling), and the event queue's batched+coalescing path
//! against the one-lock-per-event path it replaced.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use jmp_awt::{Event, EventKind, EventQueue, WindowId};
use jmp_vm::io::pipe;

const CHUNK: usize = 4 * 1024;
const BATCH: usize = 64;

/// One 4 KiB chunk through the ring per iteration, drained immediately so
/// the writer never blocks. The aligned capacity never straddles the seam;
/// the odd capacity straddles it on most iterations, exercising the
/// two-`copy_from_slice` path.
fn bench_pipe(c: &mut Criterion) {
    let chunk = vec![0x5au8; CHUNK];
    let mut buf = vec![0u8; CHUNK];
    let mut group = c.benchmark_group("A6/pipe");
    group.throughput(Throughput::Bytes(CHUNK as u64));

    let (writer, reader) = pipe(4 * CHUNK);
    group.bench_function("write_read_4k_aligned", |b| {
        b.iter(|| {
            writer.write(&chunk).expect("write");
            reader.read(&mut buf).expect("read")
        });
    });

    let (writer, reader) = pipe(CHUNK + 512);
    group.bench_function("write_read_4k_seam", |b| {
        b.iter(|| {
            writer.write(&chunk).expect("write");
            reader.read(&mut buf).expect("read")
        });
    });
    group.finish();
}

fn paints(n: usize) -> Vec<Event> {
    (0..n)
        .map(|_| Event::new(WindowId(1), None, EventKind::Paint))
        .collect()
}

fn actions(n: usize) -> Vec<Event> {
    (0..n)
        .map(|_| Event::new(WindowId(1), None, EventKind::Action))
        .collect()
}

/// A 64-event burst through the queue per iteration: batched coalescible
/// paints (collapse to one delivery), batched non-coalescible actions (the
/// pure lock-amortisation win), and the one-lock-per-event path.
fn bench_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("A6/events");
    group.throughput(Throughput::Elements(BATCH as u64));

    let queue = EventQueue::new();
    let q = queue.clone();
    group.bench_function("push_batch_64_paints_coalesced", |b| {
        b.iter_batched(
            || paints(BATCH),
            |events| {
                q.push_batch(events);
                q.drain(BATCH).expect("drain")
            },
            BatchSize::SmallInput,
        );
    });

    let queue = EventQueue::new();
    let q = queue.clone();
    group.bench_function("push_batch_64_actions", |b| {
        b.iter_batched(
            || actions(BATCH),
            |events| {
                q.push_batch(events);
                q.drain(BATCH).expect("drain")
            },
            BatchSize::SmallInput,
        );
    });

    let queue = EventQueue::new();
    let q = queue.clone();
    group.bench_function("per_event_64_actions", |b| {
        b.iter_batched(
            || actions(BATCH),
            |events| {
                for event in events {
                    q.push(event);
                }
                for _ in 0..BATCH {
                    q.try_pop();
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_pipe, bench_events);
criterion_main!(benches);
