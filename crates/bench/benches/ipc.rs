//! E5b's measured side as a microbenchmark: the in-VM pipe (the
//! single-address-space IPC primitive) — throughput per chunk size and
//! one-byte round-trip latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use jmp_vm::io::pipe;

fn bench_throughput(c: &mut Criterion) {
    const TOTAL: u64 = 1 << 20; // 1 MiB per iteration
    let mut group = c.benchmark_group("E5b/in_vm_pipe_throughput");
    group.throughput(Throughput::Bytes(TOTAL));
    group.sample_size(20);
    for chunk in [256usize, 4096, 65536] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                let (writer, reader) = pipe(65536);
                let payload = vec![0u8; chunk];
                let producer = std::thread::spawn(move || {
                    let mut sent = 0u64;
                    while sent < TOTAL {
                        writer.write_all(&payload).unwrap();
                        sent += payload.len() as u64;
                    }
                    writer.close();
                });
                let mut buf = vec![0u8; chunk];
                let mut received = 0u64;
                loop {
                    let n = reader.read(&mut buf).unwrap();
                    if n == 0 {
                        break;
                    }
                    received += n as u64;
                }
                producer.join().unwrap();
                received
            });
        });
    }
    group.finish();
}

fn bench_round_trip(c: &mut Criterion) {
    // Persistent echo thread; measure one-byte ping-pong latency.
    let (w_ab, r_ab) = pipe(16);
    let (w_ba, r_ba) = pipe(16);
    let echo = std::thread::spawn(move || {
        let mut buf = [0u8; 1];
        loop {
            match r_ab.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(_) => {
                    if w_ba.write(&buf).is_err() {
                        return;
                    }
                }
            }
        }
    });
    c.bench_function("E5b/in_vm_pipe_round_trip_1B", |b| {
        let mut buf = [0u8; 1];
        b.iter(|| {
            w_ab.write(&[1]).unwrap();
            while r_ba.read(&mut buf).unwrap() == 0 {}
        });
    });
    w_ab.close();
    let _ = echo.join();
}

criterion_group!(benches, bench_throughput, bench_round_trip);
criterion_main!(benches);
