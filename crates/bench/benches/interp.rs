//! A3: `jbc` interpreter throughput and the cost of security-checked
//! natives — the price of keeping mobile code interpreted (DESIGN.md
//! substitution for Java bytecode).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jmp_vm::interp::{assemble, Interpreter, NativeHost, NoNatives, Value};

const SUM_LOOP: &str = r#"
    class Sum
    method main/1 locals=2
        push_int 0
        store 1
    loop:
        load 0
        push_int 0
        gt
        jump_if_false done
        load 1
        load 0
        add
        store 1
        load 0
        push_int 1
        sub
        store 0
        jump loop
    done:
        load 1
        return_value
"#;

const NATIVE_LOOP: &str = r#"
    class Pinger
    method main/1 locals=1
    loop:
        load 0
        push_int 0
        gt
        jump_if_false done
        push_int 1
        native ping/1
        pop
        load 0
        push_int 1
        sub
        store 0
        jump loop
    done:
        return
"#;

struct Ping;
impl NativeHost for Ping {
    fn invoke(&self, _name: &str, _args: Vec<Value>) -> jmp_vm::Result<Value> {
        Ok(Value::Int(1))
    }
}

fn bench_loop_throughput(c: &mut Criterion) {
    let image = Arc::new(assemble(SUM_LOOP).unwrap());
    let mut group = c.benchmark_group("A3/interpreted_sum_loop");
    for n in [100i64, 10_000] {
        let interpreter = Interpreter::new(Arc::clone(&image), Arc::new(NoNatives)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| interpreter.run("main", vec![Value::Int(n)]).unwrap());
        });
    }
    group.finish();
}

fn bench_native_overhead(c: &mut Criterion) {
    let image = Arc::new(assemble(NATIVE_LOOP).unwrap());
    let interpreter = Interpreter::new(image, Arc::new(Ping)).unwrap();
    c.bench_function("A3/native_call_x1000", |b| {
        b.iter(|| interpreter.run("main", vec![Value::Int(1000)]).unwrap());
    });
}

fn bench_verify(c: &mut Criterion) {
    let image = assemble(SUM_LOOP).unwrap();
    c.bench_function("A3/verify_image", |b| {
        b.iter(|| jmp_vm::interp::verify(&image).unwrap());
    });
}

criterion_group!(
    benches,
    bench_loop_throughput,
    bench_native_overhead,
    bench_verify
);
criterion_main!(benches);
