//! A3: `jbc` interpreter throughput and the cost of security-checked
//! natives — the price of keeping mobile code interpreted (DESIGN.md
//! substitution for Java bytecode).
//!
//! A9: the same workloads on both engines in one binary — the seed
//! tree-walking loop (`run_seed`, the executable specification) vs the
//! pre-decoded direct-threaded engine (`run`) — isolating what
//! pre-decoding, superinstruction fusion, and frame reuse buy.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jmp_vm::interp::{assemble, Interpreter, NativeHost, NoNatives, Value};

const SUM_LOOP: &str = r#"
    class Sum
    method main/1 locals=2
        push_int 0
        store 1
    loop:
        load 0
        push_int 0
        gt
        jump_if_false done
        load 1
        load 0
        add
        store 1
        load 0
        push_int 1
        sub
        store 0
        jump loop
    done:
        load 1
        return_value
"#;

const NATIVE_LOOP: &str = r#"
    class Pinger
    method main/1 locals=1
    loop:
        load 0
        push_int 0
        gt
        jump_if_false done
        push_int 1
        native ping/1
        pop
        load 0
        push_int 1
        sub
        store 0
        jump loop
    done:
        return
"#;

struct Ping;
impl NativeHost for Ping {
    fn invoke(&self, _name: &str, _args: Vec<Value>) -> jmp_vm::Result<Value> {
        Ok(Value::Int(1))
    }
}

fn bench_loop_throughput(c: &mut Criterion) {
    let image = Arc::new(assemble(SUM_LOOP).unwrap());
    let mut group = c.benchmark_group("A3/interpreted_sum_loop");
    for n in [100i64, 10_000] {
        let interpreter = Interpreter::new(Arc::clone(&image), Arc::new(NoNatives)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| interpreter.run("main", vec![Value::Int(n)]).unwrap());
        });
    }
    group.finish();
}

fn bench_native_overhead(c: &mut Criterion) {
    let image = Arc::new(assemble(NATIVE_LOOP).unwrap());
    let interpreter = Interpreter::new(image, Arc::new(Ping)).unwrap();
    c.bench_function("A3/native_call_x1000", |b| {
        b.iter(|| interpreter.run("main", vec![Value::Int(1000)]).unwrap());
    });
}

const FIB: &str = r#"
    class Fib
    method main/1 locals=1
        load 0
        call fib/1
        return_value
    method fib/1 locals=1
        load 0
        push_int 2
        lt
        jump_if_false rec
        load 0
        return_value
    rec:
        load 0
        push_int 1
        sub
        call fib/1
        load 0
        push_int 2
        sub
        call fib/1
        add
        return_value
"#;

fn bench_seed_vs_predecoded(c: &mut Criterion) {
    let image = Arc::new(assemble(SUM_LOOP).unwrap());
    let interpreter = Interpreter::new(image, Arc::new(NoNatives)).unwrap();
    let mut group = c.benchmark_group("A9/sum_loop_10k");
    group.bench_function("seed", |b| {
        b.iter(|| {
            interpreter
                .run_seed("main", vec![Value::Int(10_000)])
                .unwrap()
        });
    });
    group.bench_function("predecoded", |b| {
        b.iter(|| interpreter.run("main", vec![Value::Int(10_000)]).unwrap());
    });
    group.finish();

    let image = Arc::new(assemble(FIB).unwrap());
    let interpreter = Interpreter::new(image, Arc::new(NoNatives)).unwrap();
    let mut group = c.benchmark_group("A9/fib_16");
    group.bench_function("seed", |b| {
        b.iter(|| interpreter.run_seed("main", vec![Value::Int(16)]).unwrap());
    });
    group.bench_function("predecoded", |b| {
        b.iter(|| interpreter.run("main", vec![Value::Int(16)]).unwrap());
    });
    group.finish();
}

fn bench_predecode(c: &mut Criterion) {
    let image = Arc::new(assemble(SUM_LOOP).unwrap());
    c.bench_function("A9/predecode_image", |b| {
        b.iter(|| jmp_vm::interp::CompiledImage::compile(Arc::clone(&image)).unwrap());
    });
}

fn bench_verify(c: &mut Criterion) {
    let image = assemble(SUM_LOOP).unwrap();
    c.bench_function("A3/verify_image", |b| {
        b.iter(|| jmp_vm::interp::verify(&image).unwrap());
    });
}

criterion_group!(
    benches,
    bench_loop_throughput,
    bench_native_overhead,
    bench_seed_vs_predecoded,
    bench_predecode,
    bench_verify
);
criterion_main!(benches);
