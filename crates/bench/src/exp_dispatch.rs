//! E2 (Fig 2 vs Fig 4): event dispatching. One application's slow callback
//! must not delay another application's events — and callbacks must run on
//! a thread belonging to the right application.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use jmp_awt::{ComponentId, DispatchMode, Toolkit};
use parking_lot::Mutex;

use crate::harness::{register_app, standard_runtime};
use crate::table::{fmt_ns, percentile, Table};

/// How long the "slow" application's callback stalls per event.
const STALL: Duration = Duration::from_millis(15);
/// Events injected per application.
const EVENTS: usize = 12;

struct ModeRun {
    /// window-tag → latencies (ns).
    latencies: HashMap<u64, Vec<f64>>,
    /// app-tag → name of the thread-group executing its callbacks.
    callback_groups: HashMap<u64, String>,
    dispatcher_group: String,
}

fn run_mode(mode: DispatchMode) -> ModeRun {
    let rt = standard_runtime(Some(mode));
    let toolkit = rt.toolkit().unwrap().clone();
    let display = rt.display().unwrap().clone();

    // Record queue→delivery latency per application tag.
    let latencies: Arc<Mutex<HashMap<u64, Vec<f64>>>> = Arc::new(Mutex::new(HashMap::new()));
    let callback_groups: Arc<Mutex<HashMap<u64, String>>> = Arc::new(Mutex::new(HashMap::new()));

    // The GUI app: opens a window with one button; the listener optionally
    // stalls. The callback also records which thread group executed it.
    let groups_for_app = Arc::clone(&callback_groups);
    register_app(&rt, "guiapp", move |args| {
        let slow = args.first().is_some_and(|a| a == "slow");
        let app = jmp_core::Application::current().unwrap();
        let tag = app.id().0;
        let window = jmp_core::gui::create_window(&format!("app-{tag}"))?;
        let button = window.add_button("go");
        let groups = Arc::clone(&groups_for_app);
        window.on_action(button, move |_event| {
            if let Some(t) = jmp_vm::thread::current() {
                groups.lock().insert(tag, t.group().name().to_string());
            }
            if slow {
                std::thread::sleep(STALL);
            }
        });
        // Stay alive until torn down (AWT apps need explicit exit, §5.4;
        // the experiment stops us).
        let _ = jmp_vm::thread::sleep(Duration::from_secs(600));
        Ok(())
    });

    let slow_app = rt.launch_as("alice", "guiapp", &["slow"]).unwrap();
    let fast_app = rt.launch_as("bob", "guiapp", &[]).unwrap();
    assert!(Toolkit::wait_until(Duration::from_secs(5), || toolkit
        .window_count()
        == 2));
    let slow_win = toolkit.windows_of_app(slow_app.id().0)[0];
    let fast_win = toolkit.windows_of_app(fast_app.id().0)[0];

    // Observe delivery latency, attributed by window→app.
    let observer_latencies = Arc::clone(&latencies);
    toolkit.set_dispatch_observer(Arc::new(move |_event, tag, latency| {
        observer_latencies
            .lock()
            .entry(tag)
            .or_default()
            .push(latency.as_nanos() as f64);
    }));

    // Interleave input for both applications, as two users would.
    let button = ComponentId(1);
    for _ in 0..EVENTS {
        display.inject_action(slow_win, button).unwrap();
        display.inject_action(fast_win, button).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let expected = 2 * EVENTS;
    let done = Toolkit::wait_until(Duration::from_secs(30), || {
        latencies.lock().values().map(Vec::len).sum::<usize>() >= expected
    });
    assert!(done, "not all events were delivered");

    let dispatcher_group = toolkit
        .dispatcher_of(fast_app.id().0)
        .map(|t| t.group().name().to_string())
        .unwrap_or_else(|| "?".into());

    let result = ModeRun {
        latencies: {
            let mut map = HashMap::new();
            map.insert(
                slow_app.id().0,
                latencies
                    .lock()
                    .get(&slow_app.id().0)
                    .cloned()
                    .unwrap_or_default(),
            );
            // Re-key: 0 = slow, 1 = fast for stable reporting.
            let fast = latencies
                .lock()
                .get(&fast_app.id().0)
                .cloned()
                .unwrap_or_default();
            let slow = map.remove(&slow_app.id().0).unwrap_or_default();
            let mut out = HashMap::new();
            out.insert(0, slow);
            out.insert(1, fast);
            out
        },
        callback_groups: {
            let groups = callback_groups.lock();
            let mut out = HashMap::new();
            if let Some(g) = groups.get(&slow_app.id().0) {
                out.insert(0, g.clone());
            }
            if let Some(g) = groups.get(&fast_app.id().0) {
                out.insert(1, g.clone());
            }
            out
        },
        dispatcher_group,
    };
    slow_app.stop(0).unwrap();
    fast_app.stop(0).unwrap();
    rt.shutdown();
    result
}

/// E2: run both dispatch modes and tabulate.
pub fn e2_dispatch() -> Vec<Table> {
    let legacy = run_mode(DispatchMode::Legacy);
    let per_app = run_mode(DispatchMode::PerApplication);

    let mut latency = Table::new(
        "E2a",
        "Fig 2 vs Fig 4 — event latency of a FAST app while a SLOW app stalls 15ms/event",
        &["mode", "app", "events", "p50", "p95", "max"],
    );
    for (mode_name, run) in [("legacy", &legacy), ("per-app", &per_app)] {
        for (key, label) in [(0u64, "slow"), (1u64, "fast")] {
            let mut samples = run.latencies.get(&key).cloned().unwrap_or_default();
            let p50 = percentile(&mut samples, 50.0);
            let p95 = percentile(&mut samples, 95.0);
            let max = samples.last().copied().unwrap_or(f64::NAN);
            latency.rowd(&[
                mode_name.to_string(),
                label.to_string(),
                samples.len().to_string(),
                fmt_ns(p50),
                fmt_ns(p95),
                fmt_ns(max),
            ]);
        }
    }
    latency.note("shape: in legacy mode the FAST app's latency is inflated by the slow app's");
    latency.note("callbacks (head-of-line blocking on the shared dispatcher); in per-app mode");
    latency.note("the FAST app's p50 stays near the no-load dispatch latency.");

    let mut attribution = Table::new(
        "E2b",
        "Callback attribution — whose thread executes an app's callbacks",
        &["mode", "app", "callback ran in group", "dispatcher group"],
    );
    for (mode_name, run) in [("legacy", &legacy), ("per-app", &per_app)] {
        for (key, label) in [(0u64, "slow"), (1u64, "fast")] {
            attribution.rowd(&[
                mode_name.to_string(),
                label.to_string(),
                run.callback_groups.get(&key).cloned().unwrap_or_default(),
                run.dispatcher_group.clone(),
            ]);
        }
    }
    attribution.note("shape: legacy mode runs BOTH apps' callbacks in one group (the first");
    attribution.note("app's — paper Feature 6/7); per-app mode runs each app's callbacks in");
    attribution.note("that app's own group (Fig 4), so saves are attributed to the right user.");
    vec![latency, attribution, throughput_scaling()]
}

/// E2c: total time to drain K apps × M events with a fixed per-event
/// handler cost. One shared dispatcher serializes all work (≈ K·M·cost);
/// per-application dispatchers process apps in parallel (≈ M·cost).
fn throughput_scaling() -> Table {
    const APPS: usize = 4;
    const EVENTS_PER_APP: usize = 8;
    const HANDLER: Duration = Duration::from_millis(5);

    let mut table = Table::new(
        "E2c",
        "Dispatch throughput — K=4 apps, 8 events each, 5ms handler per event",
        &["mode", "drain time", "ideal serial", "ideal parallel"],
    );
    for mode in [DispatchMode::Legacy, DispatchMode::PerApplication] {
        let rt = standard_runtime(Some(mode));
        let toolkit = rt.toolkit().unwrap().clone();
        let display = rt.display().unwrap().clone();
        let handled = Arc::new(std::sync::atomic::AtomicUsize::new(0));

        let handled_in_app = Arc::clone(&handled);
        register_app(&rt, "worker", move |_| {
            let window = jmp_core::gui::create_window("w")?;
            let button = window.add_button("b");
            let handled = Arc::clone(&handled_in_app);
            window.on_action(button, move |_| {
                std::thread::sleep(HANDLER);
                handled.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
            let _ = jmp_vm::thread::sleep(Duration::from_secs(600));
            Ok(())
        });
        let apps: Vec<_> = (0..APPS)
            .map(|_| rt.launch_as("alice", "worker", &[]).unwrap())
            .collect();
        assert!(Toolkit::wait_until(Duration::from_secs(5), || {
            toolkit.window_count() == APPS
        }));
        let windows: Vec<_> = apps
            .iter()
            .map(|app| toolkit.windows_of_app(app.id().0)[0])
            .collect();

        let start = std::time::Instant::now();
        for _ in 0..EVENTS_PER_APP {
            for window in &windows {
                display.inject_action(*window, ComponentId(1)).unwrap();
            }
        }
        let total = APPS * EVENTS_PER_APP;
        assert!(Toolkit::wait_until(Duration::from_secs(30), || {
            handled.load(std::sync::atomic::Ordering::SeqCst) == total
        }));
        let elapsed = start.elapsed();
        table.rowd(&[
            match mode {
                DispatchMode::Legacy => "legacy (one dispatcher)",
                DispatchMode::PerApplication => "per-app (K dispatchers)",
            }
            .to_string(),
            format!("{:.0}ms", elapsed.as_secs_f64() * 1e3),
            format!("{:.0}ms", (total as f64) * HANDLER.as_secs_f64() * 1e3),
            format!(
                "{:.0}ms",
                (EVENTS_PER_APP as f64) * HANDLER.as_secs_f64() * 1e3
            ),
        ]);
        for app in apps {
            let _ = app.stop(0);
        }
        rt.shutdown();
    }
    table.note("shape: legacy tracks the serial ideal (K·M·cost); per-app tracks the");
    table.note("parallel ideal (M·cost) — the 'improves responsiveness' of §5.4.");
    table
}
