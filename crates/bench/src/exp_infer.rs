//! E17: the permission-demand observatory round trip — run a realistic
//! two-user workload under the hand-written experiment policy, infer a
//! least-privilege policy from the demand ledger, then prove the inferred
//! policy (a) keeps the identical workload running with **zero** spurious
//! denials, (b) still denies the probes the hand-written policy denied, and
//! (c) is strictly smaller than the policy a human wrote.
//!
//! Two tables:
//!
//! * **E17a** — the round trip: demand rows observed, grant-entry counts
//!   (hand-written vs inferred), unexercised hand-written entries, and the
//!   replay verdicts under the inferred policy.
//! * **E17b** — what "always-on" costs: warm (decision-cache-hit) per-check
//!   latency with the demand ledger recording vs disabled, on the E13
//!   fast-path bench. The acceptance target is <= 5% overhead.

use std::time::Instant;

use jmp_core::MpRuntime;
use jmp_security::{grant_count, FileActions, Permission, Policy, PolicyDiffRow};
use jmp_vm::Vm;

use crate::exp_fastpath::{bench_domains, bench_policy, with_frames};
use crate::harness::{experiment_policy, standard_runtime};
use crate::table::{fmt_ns, Table};

/// Warm iterations per pass and passes for the E17b overhead measurement
/// (minimum-of-passes, matching E13a).
const WARM_ITERS: u32 = 50_000;
const PASSES: usize = 3;
/// Stack depth for the overhead measurement — the middle of E13a's range.
const STACK_DEPTH: usize = 8;
/// The E17b acceptance target: ledger-on warm checks within this percentage
/// of ledger-off.
const OVERHEAD_TARGET_PCT: f64 = 5.0;

fn ok(flag: bool) -> &'static str {
    if flag {
        "ok"
    } else {
        "FAILED"
    }
}

/// Launches `class` as `user` and waits for it; panics on launch failure
/// (the harness is trusted, only policy decisions inside the app vary).
fn run_app(rt: &MpRuntime, user: &str, class: &str, args: &[&str]) -> i32 {
    let app = rt.launch_as(user, class, args).expect("app launches");
    app.wait_for().expect("app exits")
}

/// The granted workload (phase A): everyday multi-user traffic that the
/// hand-written policy fully covers. Every demand this makes lands in the
/// ledger and must survive into the inferred policy. Returns whether every
/// run exited cleanly.
fn granted_workload(rt: &MpRuntime) -> bool {
    let mut all_ok = true;
    let mut run = |user: &str, class: &str, args: &[&str]| {
        all_ok &= run_app(rt, user, class, args) == 0;
    };
    run("alice", "echo", &["observatory", "training", "pass"]);
    run("alice", "touch", &["/home/alice/notes.txt"]);
    run("alice", "cat", &["/home/alice/notes.txt"]);
    run("alice", "ls", &["/tmp"]);
    run("alice", "whoami", &[]);
    run("bob", "echo", &["hello", "from", "bob"]);
    run("bob", "touch", &["/home/bob/secret.txt"]);
    run("bob", "cat", &["/home/bob/secret.txt"]);
    all_ok
}

/// The denial probes (phase B): demands the hand-written policy refuses and
/// the inferred policy must keep refusing — alice reaching into bob's home
/// and a foreign /etc write. The utilities print the error and exit 0, so
/// the probe verdict reads the `security.denied` counter, not exit codes.
fn denial_probes(rt: &MpRuntime) {
    run_app(rt, "alice", "cat", &["/home/bob/secret.txt"]);
    run_app(rt, "alice", "touch", &["/etc/motd"]);
}

/// VM-wide denial count — the spurious-denial metric.
fn denied_count(rt: &MpRuntime) -> u64 {
    rt.vm().obs().vm_metrics().counter("security.denied").get()
}

/// One replay under `policy`: the granted workload, then the probes, with
/// the denial counter sampled between the phases.
struct Replay {
    workload_ok: bool,
    spurious_denials: u64,
    probe_denials: u64,
}

fn replay_under(policy: Policy) -> Replay {
    let rt = MpRuntime::builder()
        .policy(policy)
        .user("alice", "apw")
        .user("bob", "bpw")
        .build()
        .expect("replay runtime builds");
    jmp_shell::install(&rt).expect("tools install");
    let workload_ok = granted_workload(&rt);
    let spurious_denials = denied_count(&rt);
    denial_probes(&rt);
    let probe_denials = denied_count(&rt) - spurious_denials;
    rt.shutdown();
    Replay {
        workload_ok,
        spurious_denials,
        probe_denials,
    }
}

/// Machine-readable summary of the E17 run (for `--infer-json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct E17Summary {
    /// Distinct demand-ledger rows after the training workload + probes.
    pub demand_rows: usize,
    /// Grant entries in the hand-written experiment policy.
    pub handwritten_grants: usize,
    /// Grant entries in the inferred least-privilege policy.
    pub inferred_grants: usize,
    /// Hand-written grant entries the workload never exercised.
    pub unexercised_entries: usize,
    /// Training-run sanity: denials during the granted workload (must be 0).
    pub training_spurious_denials: u64,
    /// Denials during the granted workload replayed under the inferred
    /// policy — the headline number; must be 0.
    pub replay_spurious_denials: u64,
    /// Whether the replayed workload exited cleanly under the inferred
    /// policy.
    pub replay_workload_ok: bool,
    /// Whether the denial probes were still denied under the inferred
    /// policy.
    pub probes_still_denied: bool,
    /// E13-style warm per-check latency with the ledger recording (ns).
    pub warm_ns_ledger_on: f64,
    /// The same with demand recording disabled (ns).
    pub warm_ns_ledger_off: f64,
    /// `(on - off) / off`, percent.
    pub ledger_overhead_pct: f64,
}

/// The full E17 artifacts: the scalar summary, the inferred policy text
/// (`--infer-policy`), and the exercised-vs-configured diff
/// (`--infer-diff`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct E17Artifacts {
    /// Scalar summary (CI gates on this).
    pub summary: E17Summary,
    /// The inferred policy in policy-file syntax, with provenance header.
    pub policy_text: String,
    /// Per-entry diff of the hand-written policy against the ledger.
    pub diff: Vec<PolicyDiffRow>,
}

/// Measures the E13a warm path at [`STACK_DEPTH`] with the demand ledger
/// in the given state. Minimum-of-passes nanoseconds per check.
fn warm_ns(ledger_on: bool) -> f64 {
    let vm = Vm::builder().policy(bench_policy()).build();
    vm.obs().demands().set_enabled(ledger_on);
    let domains = bench_domains(&vm, STACK_DEPTH);
    let demand = Permission::file("/data/report.txt", FileActions::READ);
    with_frames(&domains, || {
        vm.access_check(&demand).expect("policy grants the demand");
        let mut best = f64::INFINITY;
        for _ in 0..PASSES {
            let start = Instant::now();
            for _ in 0..WARM_ITERS {
                vm.access_check(&demand).expect("granted");
            }
            let total = start.elapsed().as_nanos() as u64;
            best = best.min(total as f64 / f64::from(WARM_ITERS));
        }
        best
    })
}

/// Runs E17 and returns both the tables and the artifacts.
pub fn e17_infer_full() -> (Vec<Table>, E17Artifacts) {
    // --- Training: the hand-written policy observes the workload. ---
    let rt = standard_runtime(None);
    let workload_ok = granted_workload(&rt);
    let training_spurious = denied_count(&rt);
    denial_probes(&rt);
    let rows = jmp_core::obs::demand_rows(&rt, None, None).expect("harness may read demands");
    let inferred = jmp_core::obs::inferred_policy(&rt).expect("harness may infer");
    let diff = jmp_core::obs::policy_diff(&rt).expect("harness may diff");
    rt.shutdown();
    assert!(workload_ok, "training workload exits cleanly");

    let handwritten = grant_count(&experiment_policy());
    let inferred_grants = grant_count(&inferred);
    let unexercised = diff
        .iter()
        .filter(|row| !row.exercised && !row.config)
        .count();
    let policy_text = jmp_security::emit_policy_text(
        &inferred,
        &format!("derived from {} demand-ledger rows (E17)", rows.len()),
    );

    // --- Replay: the inferred policy must carry the same workload. ---
    let replay =
        replay_under(Policy::parse(&inferred.to_string()).expect("inferred policy reparses"));

    // --- Overhead: warm checks with the ledger on vs off. ---
    let on_ns = warm_ns(true);
    let off_ns = warm_ns(false);
    let overhead_pct = 100.0 * (on_ns - off_ns) / off_ns;

    let mut e17a = Table::new(
        "E17a",
        "policy inference round trip — least privilege from the demand ledger",
        &["check", "value", "verdict"],
    );
    e17a.rowd(&[
        "demand rows observed (training)".to_string(),
        rows.len().to_string(),
        ok(!rows.is_empty()).to_string(),
    ]);
    e17a.rowd(&[
        "training workload denials".to_string(),
        training_spurious.to_string(),
        ok(training_spurious == 0).to_string(),
    ]);
    e17a.rowd(&[
        "hand-written policy grant entries".to_string(),
        handwritten.to_string(),
        "baseline".to_string(),
    ]);
    e17a.rowd(&[
        "inferred policy grant entries".to_string(),
        inferred_grants.to_string(),
        ok(inferred_grants < handwritten).to_string(),
    ]);
    e17a.rowd(&[
        "unexercised hand-written entries".to_string(),
        unexercised.to_string(),
        ok(unexercised > 0).to_string(),
    ]);
    e17a.rowd(&[
        "replay workload ok under inferred policy".to_string(),
        replay.workload_ok.to_string(),
        ok(replay.workload_ok).to_string(),
    ]);
    e17a.rowd(&[
        "replay spurious denials (security.denied)".to_string(),
        replay.spurious_denials.to_string(),
        ok(replay.spurious_denials == 0).to_string(),
    ]);
    e17a.rowd(&[
        "denial probes still denied".to_string(),
        replay.probe_denials.to_string(),
        ok(replay.probe_denials > 0).to_string(),
    ]);
    e17a.note("training: two users run echo/touch/cat/ls/whoami under the hand-written");
    e17a.note("experiment policy; probes (alice reading bob's file, writing /etc) are");
    e17a.note("denied and land in the ledger as denied rows. the inferred policy grants");
    e17a.note("exactly the exercised demands — replaying the identical workload under it");
    e17a.note("produces zero denials while the probes keep failing.");
    e17a.note("acceptance: zero replay denials AND strictly fewer grant entries than the");
    e17a.note("hand-written policy.");

    let mut e17b = Table::new(
        "E17b",
        "demand ledger cost — E13 warm check, recording on vs off",
        &["configuration", "warm ns/check", "verdict"],
    );
    e17b.rowd(&[
        "ledger recording (always-on default)".to_string(),
        fmt_ns(on_ns),
        format!("{overhead_pct:+.1}% vs off"),
    ]);
    e17b.rowd(&[
        "ledger disabled".to_string(),
        fmt_ns(off_ns),
        "baseline".to_string(),
    ]);
    e17b.rowd(&[
        format!("overhead within {OVERHEAD_TARGET_PCT}% target"),
        format!("{overhead_pct:.1}%"),
        if overhead_pct <= OVERHEAD_TARGET_PCT {
            "ok".to_string()
        } else {
            format!("WARN {overhead_pct:.1}%")
        },
    ]);
    e17b.note(format!(
        "warm = decision-cache hit at stack depth {STACK_DEPTH}, min of {PASSES} x \
         {WARM_ITERS} checks (E13a method). a hit bumps the row's cached cell — a few \
         relaxed atomics — so recording rides the warm path without hashing or strings."
    ));

    let summary = E17Summary {
        demand_rows: rows.len(),
        handwritten_grants: handwritten,
        inferred_grants,
        unexercised_entries: unexercised,
        training_spurious_denials: training_spurious,
        replay_spurious_denials: replay.spurious_denials,
        replay_workload_ok: replay.workload_ok,
        probes_still_denied: replay.probe_denials > 0,
        warm_ns_ledger_on: on_ns,
        warm_ns_ledger_off: off_ns,
        ledger_overhead_pct: overhead_pct,
    };
    let artifacts = E17Artifacts {
        summary,
        policy_text,
        diff,
    };
    (vec![e17a, e17b], artifacts)
}

/// Runs E17 (tables only).
pub fn e17_infer() -> Vec<Table> {
    e17_infer_full().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_infers_a_strictly_smaller_policy_with_zero_spurious_denials() {
        let _serial = crate::harness::latency_test_guard();
        let (tables, artifacts) = e17_infer_full();
        assert_eq!(tables.len(), 2);
        let summary = &artifacts.summary;
        // E17a rows are all functional; none may fail. (E17b's latency
        // verdict is WARN-only: timing noise must not fail the suite.)
        assert!(
            !tables[0]
                .rows
                .iter()
                .flatten()
                .any(|c| c.contains("FAILED")),
            "E17a verdicts: {tables:#?}"
        );
        assert_eq!(summary.training_spurious_denials, 0);
        assert_eq!(summary.replay_spurious_denials, 0);
        assert!(summary.replay_workload_ok);
        assert!(summary.probes_still_denied);
        assert!(
            summary.inferred_grants < summary.handwritten_grants,
            "inferred {} !< hand-written {}",
            summary.inferred_grants,
            summary.handwritten_grants
        );
        // The inferred policy text must itself be loadable (the parser
        // accepts the `//` provenance header).
        Policy::parse(&artifacts.policy_text).expect("emitted policy parses");
    }
}
