//! E4 (Fig 5 / §5.5): per-application `System` classes over shared
//! `SystemProperties`. E10 (§5.1): stream-close ownership.

use std::sync::Arc;

use jmp_core::{pipes, Application, SYSTEM_PROPERTIES_CLASS};
use jmp_vm::io::{InStream, IoToken, MemSink, OutStream};
use parking_lot::Mutex;

use crate::harness::{register_app, standard_runtime};
use crate::table::Table;

/// E4: class identities and state separation.
pub fn e4_system_reload() -> Vec<Table> {
    let rt = standard_runtime(None);
    let observed: Arc<Mutex<Vec<(u64, String, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let observed2 = Arc::clone(&observed);
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("sysprobe")
                .main(move |_| {
                    let app = Application::current().unwrap();
                    let sys = app.system_class().id().to_string();
                    let props = app
                        .loader()
                        .load_class(SYSTEM_PROPERTIES_CLASS)
                        .unwrap()
                        .id()
                        .to_string();
                    observed2.lock().push((app.id().0, sys, props));
                    Ok(())
                })
                .build(),
            jmp_security::CodeSource::local("file:/apps/sysprobe"),
        )
        .unwrap();
    for user in ["alice", "bob", "alice"] {
        rt.launch_as(user, "sysprobe", &[])
            .unwrap()
            .wait_for()
            .unwrap();
    }

    let mut identity = Table::new(
        "E4a",
        "Fig 5 — per-app System class, shared SystemProperties class",
        &["app", "System class identity", "SystemProperties identity"],
    );
    let rows = observed.lock().clone();
    for (app, sys, props) in &rows {
        identity.rowd(&[format!("app:{app}"), sys.clone(), props.clone()]);
    }
    let distinct_system = rows
        .iter()
        .map(|(_, s, _)| s.clone())
        .collect::<std::collections::HashSet<_>>()
        .len();
    let distinct_props = rows
        .iter()
        .map(|(_, _, p)| p.clone())
        .collect::<std::collections::HashSet<_>>()
        .len();
    identity.note(format!(
        "shape: {} apps -> {} distinct System classes (one each), {} SystemProperties class (shared).",
        rows.len(),
        distinct_system,
        distinct_props
    ));

    // Stream separation: each app writes to its own System.out.
    let sink_a = MemSink::new();
    let sink_b = MemSink::new();
    register_app(&rt, "printer", |args| {
        jmp_core::jsystem::println(&format!("output-of-{}", args[0]))?;
        Ok(())
    });
    let launch_with_sink = |label: &str, sink: &MemSink| {
        let out = OutStream::new(Arc::new(sink.clone()), IoToken::SYSTEM);
        rt.launch_with(
            "alice",
            "printer",
            &[label],
            Some(InStream::null(IoToken::SYSTEM)),
            Some(out.clone()),
            Some(out),
        )
        .unwrap()
        .wait_for()
        .unwrap();
    };
    launch_with_sink("A", &sink_a);
    launch_with_sink("B", &sink_b);
    let mut streams = Table::new(
        "E4b",
        "Per-application standard streams",
        &["app", "its System.out received"],
    );
    streams.rowd(&["A", sink_a.contents_string().trim()]);
    streams.rowd(&["B", sink_b.contents_string().trim()]);
    streams.note("shape: no cross-talk — A's output never appears on B's stream.");

    rt.shutdown();
    vec![identity, streams]
}

/// E10: the §5.1 stream-close ownership rule.
pub fn e10_stream_ownership() -> Vec<Table> {
    let rt = standard_runtime(None);
    let mut table = Table::new(
        "E10",
        "§5.1 — applications may only close streams they opened",
        &["action", "outcome"],
    );

    let outcomes: Arc<Mutex<Vec<(String, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let outcomes2 = Arc::clone(&outcomes);
    let leaked: Arc<Mutex<Option<InStream>>> = Arc::new(Mutex::new(None));
    let leaked2 = Arc::clone(&leaked);
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("streamdemo")
                .main(move |_| {
                    let app = Application::current().unwrap();
                    let mut log = outcomes2.lock();
                    // 1. Closing the inherited stdout must fail.
                    let err = app.stdout().close(app.io_token()).unwrap_err();
                    log.push((
                        "application closes its INHERITED stdout".into(),
                        format!("rejected: {err}"),
                    ));
                    // 2. A pipe the app opened itself is closable by it.
                    let (out, input) = pipes::make_pipe().unwrap();
                    out.close(app.io_token()).unwrap();
                    log.push((
                        "application closes a pipe it OPENED".into(),
                        "allowed".into(),
                    ));
                    // 3. Leak the read end; the reaper must close it.
                    *leaked2.lock() = Some(input);
                    Ok(())
                })
                .build(),
            jmp_security::CodeSource::local("file:/apps/streamdemo"),
        )
        .unwrap();
    let app = rt.launch_as("alice", "streamdemo", &[]).unwrap();
    app.wait_for().unwrap();
    for (action, outcome) in outcomes.lock().iter() {
        table.rowd(&[action.clone(), outcome.clone()]);
    }
    let reaper_closed = leaked.lock().as_ref().is_some_and(InStream::is_closed);
    table.rowd(&[
        "reaper closes application-owned streams at teardown".to_string(),
        format!("closed: {reaper_closed}"),
    ]);
    // The shared console stream survived the application's lifetime.
    let console_alive = {
        register_app(&rt, "after", |_| {
            jmp_core::jsystem::println("console survives").map_err(Into::into)
        });
        rt.launch_as("bob", "after", &[])
            .unwrap()
            .wait_for()
            .unwrap();
        rt.console_output().contains("console survives")
    };
    table.rowd(&[
        "shared console stream survives another app's teardown".to_string(),
        format!("usable: {console_alive}"),
    ]);
    table.note("shape: inherited streams rejected, owned streams closable, reaper cleans up,");
    table.note("and co-tenants keep their shared device (the paper's terminal scenario).");
    rt.shutdown();
    vec![table]
}
