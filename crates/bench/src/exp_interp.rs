//! E18: the direct-threaded `jbc` interpreter — what pre-decoding,
//! superinstruction fusion, frame reuse, and per-site inline caches buy
//! over the seed tree-walking loop, in the same binary.
//!
//! Three tables:
//!
//! * **E18a** — per-wire-instruction cost of the seed engine
//!   ([`Interpreter::run_seed`], the executable specification) vs the
//!   pre-decoded engine ([`Interpreter::run`]) on four workloads:
//!   an arithmetic sum loop (the headline), recursive `fib` (call/frame
//!   heavy), a string-concat loop (allocation bound, so dispatch gains
//!   are diluted), and a loop of security-checked native calls driven
//!   through a real [`Vm`] policy walk (the per-site inline cache).
//! * **E18b** — dispatch/fusion accounting on the sum loop: wire
//!   instructions executed vs ops actually dispatched, i.e. how much of
//!   the dispatch loop superinstructions eliminated.
//! * **E18c** — the differential corpus: both engines run every case
//!   (traps, fuel exhaustion, call-depth overflow, fused-boundary type
//!   errors) and must agree on results, trap text, and instruction
//!   accounting. The CI gate is zero divergences.
//!
//! Timing discipline is the E16c one: interleaved runs, round *minima*
//! (noise only ever adds time), normalized by the engine-independent
//! wire-instruction count so the two engines are compared on identical
//! work.

use std::sync::Arc;
use std::time::Instant;

use jmp_security::Permission;
use jmp_vm::interp::{assemble, difftest, Interpreter, NativeHost, NoNatives, Value};
use jmp_vm::Vm;

use crate::exp_fastpath::{bench_domains, bench_policy, with_frames};
use crate::table::Table;

/// Iterations of the sum / concat / native loops per timed run.
const SUM_N: i64 = 30_000;
const STR_N: i64 = 2_000;
const NATIVE_N: i64 = 2_000;
/// `fib` argument: ~8k calls per run, comfortably under the depth limit.
const FIB_N: i64 = 18;
/// Interleaved seed/compiled rounds per workload (round minima).
const ROUNDS: usize = 21;

/// Arithmetic-heavy loop; every body instruction participates in a
/// superinstruction (compare-and-branch pairs, load/op/store fusions).
const SUM: &str = r#"
    class Sum
    method main/1 locals=2
        push_int 0
        store 1
    loop:
        load 0
        push_int 0
        gt
        jump_if_false done
        load 1
        load 0
        add
        store 1
        load 0
        push_int 1
        sub
        store 0
        jump loop
    done:
        load 1
        return_value
"#;

/// Call-heavy recursion: exercises frame reuse and resolved call sites.
const FIB: &str = r#"
    class Fib
    method main/1 locals=1
        load 0
        call fib/1
        return_value
    method fib/1 locals=1
        load 0
        push_int 2
        lt
        jump_if_false rec
        load 0
        return_value
    rec:
        load 0
        push_int 1
        sub
        call fib/1
        load 0
        push_int 2
        sub
        call fib/1
        add
        return_value
"#;

/// String building: allocation-bound, so the dispatch win is diluted —
/// the honest lower bound of the speedup range.
const STR_BUILD: &str = r#"
    class Str
    method main/1 locals=2
        push_str ""
        store 1
    loop:
        load 0
        push_int 0
        gt
        jump_if_false done
        load 1
        push_str "ab"
        concat
        store 1
        load 0
        push_int 1
        sub
        store 0
        jump loop
    done:
        load 1
        return_value
"#;

/// A loop of natives, each performing a full security check against the
/// VM policy with application frames on the stack.
const NATIVE_LOOP: &str = r#"
    class Nat
    method main/1 locals=1
    loop:
        load 0
        push_int 0
        gt
        jump_if_false done
        push_int 1
        native read/1
        pop
        load 0
        push_int 1
        sub
        store 0
        jump loop
    done:
        return
"#;

/// A native host whose every call is an access-checked file read — the
/// paper's actual workload shape (mobile code reaching the world only
/// through checked natives).
struct CheckedHost {
    vm: Vm,
    demand: Permission,
}

impl NativeHost for CheckedHost {
    fn invoke(&self, _name: &str, _args: Vec<Value>) -> jmp_vm::Result<Value> {
        self.vm.access_check(&self.demand)?;
        Ok(Value::Int(1))
    }
}

/// One measured workload: round-minimum ns per wire instruction for both
/// engines, plus the (identical) wire-instruction count per run.
struct Measured {
    wire_insns: u64,
    seed_ns: f64,
    compiled_ns: f64,
}

impl Measured {
    fn speedup(&self) -> f64 {
        if self.compiled_ns > 0.0 {
            self.seed_ns / self.compiled_ns
        } else {
            0.0
        }
    }
}

/// Interleaved seed/compiled rounds over one interpreter; panics if the
/// two engines disagree on the result or the instruction count (the
/// differential corpus checks this exhaustively; here it guards the
/// normalization).
fn measure(interp: &Interpreter, arg: i64) -> Measured {
    let run_arg = || vec![Value::Int(arg)];
    // Warm up both engines (lazy allocations, branch predictors, and the
    // native-site / decision caches reach steady state).
    let seed_result = interp.run_seed("main", run_arg()).expect("seed runs");
    let compiled_result = interp.run("main", run_arg()).expect("compiled runs");
    assert_eq!(seed_result, compiled_result, "engines agree on the result");

    // The per-run wire-instruction count, measured on each engine — the
    // batched accounting must land on exactly the seed's count.
    let before = interp.stats().instructions();
    interp.run_seed("main", run_arg()).expect("seed runs");
    let seed_insns = interp.stats().instructions() - before;
    let before = interp.stats().instructions();
    interp.run("main", run_arg()).expect("compiled runs");
    let compiled_insns = interp.stats().instructions() - before;
    assert_eq!(seed_insns, compiled_insns, "identical instruction charge");

    let mut seed_best = f64::INFINITY;
    let mut compiled_best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let t = Instant::now();
        interp.run_seed("main", run_arg()).expect("seed runs");
        seed_best = seed_best.min(t.elapsed().as_nanos() as f64 / seed_insns as f64);
        let t = Instant::now();
        interp.run("main", run_arg()).expect("compiled runs");
        compiled_best = compiled_best.min(t.elapsed().as_nanos() as f64 / seed_insns as f64);
    }
    Measured {
        wire_insns: seed_insns,
        seed_ns: seed_best,
        compiled_ns: compiled_best,
    }
}

/// Scalar results of E18, exported as `BENCH_E18.json` for CI gates.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct E18Summary {
    /// Wire instructions one sum-loop run executes (both engines).
    pub sum_wire_insns: u64,
    /// Round-minimum seed-engine cost on the sum loop (ns / wire insn).
    pub sum_seed_ns_per_insn: f64,
    /// Round-minimum pre-decoded-engine cost on the sum loop.
    pub sum_compiled_ns_per_insn: f64,
    /// The headline: seed / compiled on the sum loop. The CI gate is ≥5x
    /// (release builds clear ≥10x on an unloaded machine).
    pub interp_speedup: f64,
    /// Speedup on recursive `fib` (frame reuse + resolved call sites).
    pub fib_speedup: f64,
    /// Speedup on the concat loop (allocation-bound lower bound).
    pub concat_speedup: f64,
    /// Speedup on security-checked natives (per-site inline caches).
    pub checked_native_speedup: f64,
    /// Percent of wire instructions whose dispatch was eliminated by
    /// superinstruction fusion on the sum loop: `1 - dispatches/insns`.
    pub fused_dispatch_pct: f64,
    /// Differential corpus size; the CI gate requires ≥40.
    pub diff_cases: usize,
    /// Differential divergences; the CI gate requires exactly 0.
    pub diff_divergences: usize,
}

/// Runs E18 and returns both the tables and the exported summary.
pub fn e18_interp_full() -> (Vec<Table>, E18Summary) {
    // -- E18a: throughput, four workloads ------------------------------
    let sum_interp = Interpreter::new(
        Arc::new(assemble(SUM).expect("sum assembles")),
        Arc::new(NoNatives),
    )
    .expect("sum verifies");
    let sum = measure(&sum_interp, SUM_N);

    let fib_interp = Interpreter::new(
        Arc::new(assemble(FIB).expect("fib assembles")),
        Arc::new(NoNatives),
    )
    .expect("fib verifies");
    let fib = measure(&fib_interp, FIB_N);

    let str_interp = Interpreter::new(
        Arc::new(assemble(STR_BUILD).expect("str assembles")),
        Arc::new(NoNatives),
    )
    .expect("str verifies");
    let concat = measure(&str_interp, STR_N);

    let vm = Vm::builder().policy(bench_policy()).build();
    let domains = bench_domains(&vm, 4);
    let host = Arc::new(CheckedHost {
        vm,
        demand: Permission::file("/data/report.txt", jmp_security::FileActions::READ),
    });
    let native_interp = Interpreter::new(
        Arc::new(assemble(NATIVE_LOOP).expect("native loop assembles")),
        host,
    )
    .expect("native loop verifies");
    let native = with_frames(&domains, || measure(&native_interp, NATIVE_N));

    let mut e18a = Table::new(
        "E18a",
        "interpreter throughput — seed vs pre-decoded engine, same binary",
        &[
            "workload",
            "wire insns/run",
            "seed ns/insn",
            "pre-decoded ns/insn",
            "speedup",
        ],
    );
    for (label, m) in [
        ("sum loop (fusion-heavy)", &sum),
        ("fib 18 (call-heavy)", &fib),
        ("concat loop (alloc-bound)", &concat),
        ("checked natives (policy walk)", &native),
    ] {
        e18a.rowd(&[
            label.to_string(),
            m.wire_insns.to_string(),
            format!("{:.1}", m.seed_ns),
            format!("{:.1}", m.compiled_ns),
            format!("{:.1}x", m.speedup()),
        ]);
    }
    e18a.note("interleaved runs, round minima, normalized by the engine-independent");
    e18a.note("wire-instruction count (both engines charge identically). seed = the");
    e18a.note("tree-walking reference loop kept as the executable specification.");

    // -- E18b: dispatch/fusion accounting ------------------------------
    let fusion_interp = Interpreter::new(
        Arc::new(assemble(SUM).expect("sum assembles")),
        Arc::new(NoNatives),
    )
    .expect("sum verifies");
    fusion_interp
        .run("main", vec![Value::Int(SUM_N)])
        .expect("compiled runs");
    let insns = fusion_interp.stats().instructions();
    let dispatches = fusion_interp.stats().dispatches();
    let fused_dispatch_pct = if insns > 0 {
        (1.0 - dispatches as f64 / insns as f64) * 100.0
    } else {
        0.0
    };
    let mut e18b = Table::new(
        "E18b",
        "dispatch & fusion accounting — sum loop, pre-decoded engine",
        &[
            "wire instructions",
            "dispatched ops",
            "dispatches eliminated",
        ],
    );
    e18b.rowd(&[
        insns.to_string(),
        dispatches.to_string(),
        format!("{fused_dispatch_pct:.0}%"),
    ]);
    e18b.note("every wire instruction is still charged (fuel, quotas, E16 profile");
    e18b.note("attribution by component weights); fusion only collapses dispatches.");

    // -- E18c: the differential corpus ---------------------------------
    let (diff_cases, divergences) = difftest::run_all();
    let mut e18c = Table::new(
        "E18c",
        "differential corpus — seed vs pre-decoded engine",
        &["cases", "divergences", "verdict"],
    );
    e18c.rowd(&[
        diff_cases.to_string(),
        divergences.len().to_string(),
        if divergences.is_empty() {
            "ok".to_string()
        } else {
            format!("FAILED: {}", divergences[0])
        },
    ]);
    e18c.note("each case compares result/trap text, instruction and call counts;");
    e18c.note("the corpus covers traps inside every superinstruction family, fuel");
    e18c.note("exhaustion at instruction granularity, and call-depth overflow.");

    let summary = E18Summary {
        sum_wire_insns: sum.wire_insns,
        sum_seed_ns_per_insn: sum.seed_ns,
        sum_compiled_ns_per_insn: sum.compiled_ns,
        interp_speedup: sum.speedup(),
        fib_speedup: fib.speedup(),
        concat_speedup: concat.speedup(),
        checked_native_speedup: native.speedup(),
        fused_dispatch_pct,
        diff_cases,
        diff_divergences: divergences.len(),
    };
    (vec![e18a, e18b, e18c], summary)
}

/// E18: the experiment tables.
pub fn e18_interp() -> Vec<Table> {
    e18_interp_full().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_compiled_beats_seed_with_zero_divergence() {
        let _serial = crate::harness::latency_test_guard();
        let (tables, summary) = e18_interp_full();
        assert_eq!(tables.len(), 3);
        assert_eq!(summary.diff_divergences, 0, "engines diverged");
        assert!(summary.diff_cases >= 40, "corpus shrank");
        assert!(
            summary.fused_dispatch_pct > 30.0,
            "fusion collapsed too little of the sum loop: {:.0}%",
            summary.fused_dispatch_pct
        );
        // Loose in-tree bound — debug builds flatten the gap; the strict
        // ≥5x gate runs in CI on the release summary.
        assert!(
            summary.interp_speedup > 1.5,
            "pre-decoded engine too slow vs seed: {:.1}x",
            summary.interp_speedup
        );
        assert!(summary.fib_speedup > 1.0);
        assert!(summary.checked_native_speedup > 1.0);
    }
}
