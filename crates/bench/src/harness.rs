//! Shared setup for experiments and benches: a standard two-user runtime
//! with the paper's policy and all §6 tools installed.

use std::sync::{Mutex, MutexGuard, PoisonError};

use jmp_awt::DispatchMode;
use jmp_core::MpRuntime;
use jmp_security::Policy;

/// Serializes latency-sensitive experiment unit tests (E13–E17) within the
/// test binary: each measures wall-clock thresholds (victim containment,
/// warm-check overhead, profiler tax) that parallel sibling tests running
/// storms on the same cores can push past their acceptance bounds.
pub fn latency_test_guard() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The standard experiment policy: the shell's defaults plus the paper's
/// per-user home-directory grants (§5.3 rules 3 and 4) and the backup rule
/// (rule 2).
pub fn experiment_policy() -> Policy {
    let text = format!(
        "{}\n{}",
        jmp_shell::default_policy_text(),
        r#"
        grant codeBase "file:/apps/backup" {
            permission file "<<ALL FILES>>" "read";
        };
        grant user "alice" {
            permission file "/home/alice" "read";
            permission file "/home/alice/-" "read,write,execute,delete";
        };
        grant user "bob" {
            permission file "/home/bob" "read";
            permission file "/home/bob/-" "read,write,execute,delete";
        };
        "#
    );
    Policy::parse(&text).expect("experiment policy parses")
}

/// Builds the standard runtime: users alice/bob, the experiment policy, the
/// §6 tools installed, and optionally a GUI in the given dispatch mode.
pub fn standard_runtime(gui: Option<DispatchMode>) -> MpRuntime {
    let mut builder = MpRuntime::builder()
        .policy(experiment_policy())
        .user("alice", "apw")
        .user("bob", "bpw");
    if let Some(mode) = gui {
        builder = builder.gui(mode);
    }
    let rt = builder.build().expect("runtime builds");
    jmp_shell::install(&rt).expect("tools install");
    rt
}

/// Registers a one-off native class in `rt` under `file:/apps/<name>`.
pub fn register_app(
    rt: &MpRuntime,
    name: &str,
    main: impl Fn(Vec<String>) -> jmp_vm::Result<()> + Send + Sync + 'static,
) {
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder(name).main(main).build(),
            jmp_security::CodeSource::local(format!("file:/apps/{name}")),
        )
        .expect("app registers");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_runtime_builds_and_runs_echo() {
        let rt = standard_runtime(None);
        let app = rt.launch_as("alice", "echo", &["ping"]).unwrap();
        app.wait_for().unwrap();
        assert!(rt.console_output().contains("ping"));
        rt.shutdown();
    }
}
