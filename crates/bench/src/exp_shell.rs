//! E9 (§6.1–6.2): the shell and terminal — a scripted multi-command session
//! exercising pipes, redirection, background jobs and the password prompt.

use jmp_shell::spawn_login_session;

use crate::harness::standard_runtime;
use crate::table::Table;

/// E9: a full session transcript.
pub fn e9_shell_session() -> Vec<Table> {
    let rt = standard_runtime(None);
    let script: &[&str] = &[
        "alice",
        "apw",
        "whoami",
        "pwd",
        "echo one > f.txt",
        "echo two-match >> f.txt",
        "echo three-match >> f.txt",
        "cat f.txt | grep match | wc",
        "wc < f.txt",
        "sleep 200 &",
        "jobs",
        "mkdir workdir",
        "cd workdir",
        "pwd",
        "cd ..",
        "ls",
        "quit",
    ];
    let (terminal, session) = spawn_login_session(&rt).unwrap();
    for line in script {
        terminal.type_line(line).unwrap();
    }
    terminal.type_eof();
    session.wait_for().unwrap();
    let screen = terminal.screen_text();

    let mut table = Table::new(
        "E9",
        "§6.1/§6.2 — scripted shell session over the terminal",
        &["check", "outcome"],
    );
    type Check = Box<dyn Fn(&str) -> bool>;
    let checks: &[(&str, Check)] = &[
        (
            "password not echoed",
            Box::new(|s: &str| !s.contains("apw")),
        ),
        (
            "whoami printed alice",
            Box::new(|s: &str| s.contains("\nalice\n")),
        ),
        (
            "pwd printed the home directory",
            Box::new(|s: &str| s.contains("/home/alice")),
        ),
        (
            "pipeline cat|grep|wc printed `2 2 ...`",
            Box::new(|s: &str| s.contains("\n2 2 ")),
        ),
        (
            "input redirection wc < f.txt printed 3 lines",
            Box::new(|s: &str| s.contains("\n3 3 ")),
        ),
        (
            "background job reported and listed",
            Box::new(|s: &str| s.contains("[1] started") && s.contains("sleep 200")),
        ),
        (
            "cd changed the prompt/pwd",
            Box::new(|s: &str| s.contains("/home/alice/workdir")),
        ),
        (
            "ls shows created entries",
            Box::new(|s: &str| s.contains("f.txt") && s.contains("workdir")),
        ),
    ];
    for (name, check) in checks {
        table.rowd(&[
            (*name).to_string(),
            if check(&screen) { "ok" } else { "FAILED" }.to_string(),
        ]);
    }
    table.note("full transcript follows:");
    for line in screen.lines() {
        table.note(format!("  | {line}"));
    }
    rt.shutdown();
    vec![table]
}
