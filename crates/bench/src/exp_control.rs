//! E19: control-plane scale-out — per-operation latency as the live fleet
//! grows from 10 to 10,000 applications, with a million users provisioned
//! behind the lazy policy store.
//!
//! The control plane used to serialize on three global locks: the app
//! registry (`RwLock<HashMap>`), the policy root (`RwLock<Arc<Policy>>`),
//! and a fully-resident user-grant table. This experiment measures the
//! sharded/epoch-published/lazy replacements:
//!
//! * **E19a** — median per-operation latency (spawn→exit cycle, registry
//!   point lookup, policy-root read, warm per-user check) at a 10-app fleet
//!   and again with 10,000 parked applications resident. The acceptance
//!   gate is every large-fleet median staying within 1.5x of its small-fleet
//!   baseline — flat, not linear, in the fleet size. The spawn cycle is
//!   gated *normalized to an OS floor*: a bare `std::thread` spawn→join
//!   control measured at the same fleet sizes, because the kernel's own
//!   cost of creating/scheduling/reaping a thread grows with the number of
//!   live threads on the box, and the VM sits on top of that floor.
//! * **E19b** — the lazy store at scale: one million provisioned users,
//!   resident grant entries bounded by the shard caps, and a sampled
//!   cold/warm/invalidate sweep with zero grant divergences.

use std::sync::Arc;
use std::time::{Duration, Instant};

use jmp_core::MpRuntime;
use jmp_security::{FileActions, LazyUserStore, Permission, TemplateGrantSource};

use crate::harness::{register_app, standard_runtime};
use crate::table::Table;

/// The small-fleet baseline.
const SMALL_FLEET: usize = 10;
/// The large fleet of the full (report) run.
const LARGE_FLEET: usize = 10_000;

/// Users provisioned behind the lazy store (a rule, not resident memory).
const PROVISIONED_USERS: u64 = 1_000_000;
/// Per-user grant template installed for the provisioned users.
const USER_TEMPLATE: &str =
    r#"grant user "${user}" { permission file "/srv/${user}/-" "read,write"; };"#;
/// Users sampled for the cold/warm/invalidate divergence sweep.
const SAMPLED_USERS: usize = 64;
/// Resident-entry ceiling: the store clears a shard at its cap rather than
/// growing, so residency can never exceed shards x per-shard cap.
const RESIDENT_BOUND: usize = 16 * 4096;

/// Measured spawn→exit cycles per fleet size.
const SPAWN_RUNS: usize = 32;
/// Unmeasured warm-up cycles before the first measurement (class loading,
/// allocator warm-up).
const SPAWN_WARMUP: usize = 8;
/// Batches per micro-op measurement (median over batches).
const BATCHES: usize = 32;
/// Iterations per batch.
const BATCH_ITERS: usize = 2_048;

/// Acceptance gate of the full run: large-fleet medians within 1.5x of the
/// small-fleet baselines.
const FULL_GATE: f64 = 1.5;

fn ok(flag: bool) -> &'static str {
    if flag {
        "ok"
    } else {
        "FAILED"
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Median per-operation medians at one fleet size.
struct OpMedians {
    /// launch_as (credential check included) → natural exit → wait, ms.
    spawn_ms: f64,
    /// Bare `std::thread` spawn→join control at the same fleet, ms.
    os_cycle_ms: f64,
    /// Registry point lookup of a live application, ns.
    lookup_ns: f64,
    /// Policy-root read (`Vm::policy`) through the epoch cells, ns.
    policy_read_ns: f64,
    /// Warm per-user check through the lazy store, ns.
    user_check_ns: f64,
}

/// The raw OS control: a bare `std::thread` spawn→join cycle with the same
/// fleet resident. Creating, scheduling, and reaping a thread costs the
/// kernel more as live threads accumulate (task structs, stacks, scheduler
/// cache footprint) regardless of what runs in the thread — a floor the VM
/// sits on and cannot remove. The spawn gate is therefore applied to the
/// VM cycle's growth *over* this floor's growth.
fn measure_os_cycle_ms() -> f64 {
    let mut cycles = Vec::with_capacity(SPAWN_RUNS);
    for _ in 0..SPAWN_RUNS {
        let start = Instant::now();
        std::thread::spawn(|| {}).join().expect("control thread");
        cycles.push(start.elapsed().as_secs_f64() * 1e3);
    }
    median(&mut cycles)
}

/// Measures one micro-op as the median over [`BATCHES`] batches of
/// [`BATCH_ITERS`] iterations, in nanoseconds per iteration.
fn measure_ns(mut op: impl FnMut()) -> f64 {
    let mut batches = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..BATCH_ITERS {
            op();
        }
        batches.push(start.elapsed().as_secs_f64() * 1e9 / BATCH_ITERS as f64);
    }
    median(&mut batches)
}

/// Measures the per-op medians with the current fleet resident. `probe` is
/// a live (parked) application id, the same one at both fleet sizes so the
/// lookup keys an identical shard path.
fn measure_ops(rt: &MpRuntime, probe: jmp_core::AppId, warm_user: &str) -> OpMedians {
    let mut spawns = Vec::with_capacity(SPAWN_RUNS);
    for _ in 0..SPAWN_RUNS {
        let start = Instant::now();
        let app = rt.launch_as("alice", "burst", &[]).expect("spawn");
        assert_eq!(app.wait_for().expect("burst exits"), 0);
        spawns.push(start.elapsed().as_secs_f64() * 1e3);
    }
    let os_cycle_ms = measure_os_cycle_ms();

    let lookup_ns = measure_ns(|| {
        std::hint::black_box(rt.application(probe));
    });
    let vm = rt.vm();
    let policy_read_ns = measure_ns(|| {
        std::hint::black_box(vm.policy());
    });
    let policy = vm.policy();
    let demand = Permission::file(format!("/srv/{warm_user}/data"), FileActions::READ);
    assert!(policy.user_implies(warm_user, &demand), "warm-up check");
    let user_check_ns = measure_ns(|| {
        std::hint::black_box(policy.user_implies(warm_user, &demand));
    });

    OpMedians {
        spawn_ms: median(&mut spawns),
        os_cycle_ms,
        lookup_ns,
        policy_read_ns,
        user_check_ns,
    }
}

/// The sampled cold/warm/invalidate sweep over the provisioned users.
/// Returns the number of divergences (a divergence is any sampled check
/// whose answer differs from what the template provisions, or differs
/// between a cold and a warm read of the same grants).
fn divergence_sweep(rt: &MpRuntime) -> usize {
    let policy = rt.vm().policy();
    let mut divergences = 0;
    let stride = PROVISIONED_USERS / SAMPLED_USERS as u64;
    let sampled: Vec<u64> = (0..SAMPLED_USERS as u64).map(|i| i * stride).collect();
    for &idx in &sampled {
        let user = format!("u{idx}");
        let own = Permission::file(format!("/srv/{user}/data"), FileActions::READ);
        let other = Permission::file(
            format!("/srv/u{}/data", (idx + 1) % PROVISIONED_USERS),
            FileActions::READ,
        );
        // Cold (first demand loads through the store), then warm.
        if !policy.user_implies(&user, &own) || !policy.user_implies(&user, &own) {
            divergences += 1;
        }
        // A user's grants never leak onto a sibling's home.
        if policy.user_implies(&user, &other) {
            divergences += 1;
        }
    }
    // Invalidate and re-check a slice: the reload must be bit-identical.
    policy.user_store().expect("store attached").invalidate();
    for &idx in sampled.iter().take(8) {
        let user = format!("u{idx}");
        let own = Permission::file(format!("/srv/{user}/data"), FileActions::READ);
        if !policy.user_implies(&user, &own) {
            divergences += 1;
        }
    }
    divergences
}

/// Machine-readable summary of the E19 run (for `--control-json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct E19Summary {
    /// Applications resident during the baseline measurements.
    pub small_fleet: usize,
    /// Applications resident during the scaled measurements.
    pub large_fleet: usize,
    /// Spawn→exit cycle median at the small fleet (ms).
    pub spawn_small_ms: f64,
    /// Spawn→exit cycle median at the large fleet (ms).
    pub spawn_large_ms: f64,
    /// Bare OS thread spawn→join control at the small fleet (ms).
    pub os_cycle_small_ms: f64,
    /// Bare OS thread spawn→join control at the large fleet (ms).
    pub os_cycle_large_ms: f64,
    /// Spawn-cycle growth divided by the OS floor's growth.
    pub spawn_norm_ratio: f64,
    /// Registry point-lookup median at the small fleet (ns).
    pub lookup_small_ns: f64,
    /// Registry point-lookup median at the large fleet (ns).
    pub lookup_large_ns: f64,
    /// Policy-root read median at the small fleet (ns).
    pub policy_read_small_ns: f64,
    /// Policy-root read median at the large fleet (ns).
    pub policy_read_large_ns: f64,
    /// Warm per-user check median at the small fleet (ns).
    pub user_check_small_ns: f64,
    /// Warm per-user check median at the large fleet (ns).
    pub user_check_large_ns: f64,
    /// Worst gated ratio: the OS-floor-normalized spawn ratio and the
    /// direct large/small ratios of the three micro-operations.
    pub worst_ratio: f64,
    /// Users the attached grant source provisions.
    pub provisioned_users: u64,
    /// User entries resident in the store after the sweep.
    pub resident_users: usize,
    /// Completed store loads (cold demands + post-invalidate reloads).
    pub store_loads: u64,
    /// Divergences found by the sampled grant sweep (must be zero).
    pub divergences: usize,
}

/// Runs the scale-out storm at the given large-fleet size and gate.
fn run_control(large_fleet: usize, gate: f64) -> (Vec<Table>, E19Summary) {
    let rt = standard_runtime(None);
    register_app(&rt, "burst", |_| Ok(()));
    register_app(&rt, "parker", |_| {
        // Parked residents sleep until the teardown interrupt; a short
        // period here would have 10k timers firing during the measurements.
        while jmp_vm::thread::sleep(Duration::from_secs(3600)).is_ok() {}
        Ok(())
    });

    // Provision a million users behind the lazy store: publish a derived
    // policy root carrying the template source. O(1) memory — the users
    // exist as a rule until a check demands one.
    let vm = rt.vm().clone();
    let store = Arc::new(LazyUserStore::new(Arc::new(TemplateGrantSource::new(
        "u",
        PROVISIONED_USERS,
        USER_TEMPLATE,
    ))));
    let policy = (*vm.policy()).clone().with_user_store(Arc::clone(&store));
    vm.set_policy(policy).expect("host may publish policy");

    // Warm the spawn path before the baseline.
    for _ in 0..SPAWN_WARMUP {
        let app = rt.launch_as("alice", "burst", &[]).expect("warmup spawn");
        assert_eq!(app.wait_for().expect("warmup exits"), 0);
    }

    let mut fleet = Vec::with_capacity(large_fleet);
    for _ in 0..SMALL_FLEET {
        fleet.push(rt.launch_as("alice", "parker", &[]).expect("parker"));
    }
    let probe = fleet[0].id();
    let small = measure_ops(&rt, probe, "u123456");

    for _ in SMALL_FLEET..large_fleet {
        fleet.push(rt.launch_as("alice", "parker", &[]).expect("parker"));
    }
    assert!(rt.application_count() >= large_fleet);
    let large = measure_ops(&rt, probe, "u123456");

    let divergences = divergence_sweep(&rt);
    let provisioned = store.provisioned_users().unwrap_or(0);
    let resident = store.resident_users();
    let loads = store.loads();

    for app in &fleet {
        app.stop(0).expect("parker stops");
    }
    assert!(
        rt.await_idle(Duration::from_secs(180)),
        "fleet drains: {} apps still live",
        rt.application_count()
    );
    rt.shutdown();

    let spawn_raw_ratio = large.spawn_ms / small.spawn_ms;
    // Clamped at 1.0 so a noisy control can only tighten the spawn gate,
    // never loosen it past the direct ratio.
    let os_ratio = (large.os_cycle_ms / small.os_cycle_ms).max(1.0);
    let spawn_norm_ratio = spawn_raw_ratio / os_ratio;

    let micro_ops = [
        ("registry lookup", small.lookup_ns, large.lookup_ns),
        (
            "policy-root read",
            small.policy_read_ns,
            large.policy_read_ns,
        ),
        (
            "warm per-user check",
            small.user_check_ns,
            large.user_check_ns,
        ),
    ];
    let worst_ratio = micro_ops
        .iter()
        .map(|(_, s, l)| l / s)
        .fold(spawn_norm_ratio, f64::max);

    let mut e19a = Table::new(
        "E19a",
        "control-plane per-op latency vs live fleet size",
        &["operation", "fleet", "median", "vs small fleet", "verdict"],
    );
    e19a.rowd(&[
        "spawn→exit cycle".to_string(),
        format!("{SMALL_FLEET}"),
        format!("{:.3} ms", small.spawn_ms),
        "1.0x".to_string(),
        "baseline".to_string(),
    ]);
    e19a.rowd(&[
        "spawn→exit cycle".to_string(),
        format!("{large_fleet}"),
        format!("{:.3} ms", large.spawn_ms),
        format!("{spawn_raw_ratio:.2}x"),
        "gated vs OS floor".to_string(),
    ]);
    e19a.rowd(&[
        "bare OS thread cycle".to_string(),
        format!("{SMALL_FLEET}"),
        format!("{:.3} ms", small.os_cycle_ms),
        "1.0x".to_string(),
        "control".to_string(),
    ]);
    e19a.rowd(&[
        "bare OS thread cycle".to_string(),
        format!("{large_fleet}"),
        format!("{:.3} ms", large.os_cycle_ms),
        format!("{:.2}x", large.os_cycle_ms / small.os_cycle_ms),
        "control".to_string(),
    ]);
    e19a.rowd(&[
        "spawn cycle over OS floor".to_string(),
        format!("{large_fleet}"),
        "—".to_string(),
        format!("{spawn_norm_ratio:.2}x"),
        ok(spawn_norm_ratio <= gate).to_string(),
    ]);
    for (name, small_v, large_v) in &micro_ops {
        let ratio = large_v / small_v;
        e19a.rowd(&[
            name.to_string(),
            format!("{SMALL_FLEET}"),
            format!("{small_v:.0} ns"),
            "1.0x".to_string(),
            "baseline".to_string(),
        ]);
        e19a.rowd(&[
            name.to_string(),
            format!("{large_fleet}"),
            format!("{large_v:.0} ns"),
            format!("{ratio:.2}x"),
            ok(ratio <= gate).to_string(),
        ]);
    }
    e19a.note(format!(
        "fleet: parked applications resident during the measurement; spawn cycle = \
         launch_as (credential check) → natural exit → wait, median of {SPAWN_RUNS}; \
         micro-ops are medians of {BATCHES} batches x {BATCH_ITERS} iterations"
    ));
    e19a.note(format!(
        "acceptance: every large-fleet median within {gate}x of its small-fleet baseline \
         — the registry is sharded, the policy root epoch-published, so nothing on these \
         paths scales with the fleet"
    ));
    e19a.note(
        "the OS control is a bare std::thread spawn→join at the same fleet: the kernel's \
         cost of creating/scheduling/reaping a thread grows with live threads on the box, \
         so the spawn verdict gates the VM cycle's growth divided by that floor's growth",
    );

    let mut e19b = Table::new(
        "E19b",
        "lazy policy store at one million provisioned users",
        &["check", "value", "verdict"],
    );
    e19b.rowd(&[
        "provisioned users".to_string(),
        format!("{provisioned}"),
        ok(provisioned == PROVISIONED_USERS).to_string(),
    ]);
    e19b.rowd(&[
        format!("resident grant entries (bound {RESIDENT_BOUND})"),
        format!("{resident}"),
        ok(resident > 0 && resident <= RESIDENT_BOUND).to_string(),
    ]);
    e19b.rowd(&[
        "store loads (cold + post-invalidate)".to_string(),
        format!("{loads}"),
        ok(loads > 0).to_string(),
    ]);
    e19b.rowd(&[
        format!("divergences over {SAMPLED_USERS} sampled users"),
        format!("{divergences}"),
        ok(divergences == 0).to_string(),
    ]);
    e19b.note(
        "sweep: per-user grants load on first demand, answer identically warm, never \
         leak onto a sibling user, and reload bit-identically after an invalidate",
    );

    let summary = E19Summary {
        small_fleet: SMALL_FLEET,
        large_fleet,
        spawn_small_ms: small.spawn_ms,
        spawn_large_ms: large.spawn_ms,
        os_cycle_small_ms: small.os_cycle_ms,
        os_cycle_large_ms: large.os_cycle_ms,
        spawn_norm_ratio,
        lookup_small_ns: small.lookup_ns,
        lookup_large_ns: large.lookup_ns,
        policy_read_small_ns: small.policy_read_ns,
        policy_read_large_ns: large.policy_read_ns,
        user_check_small_ns: small.user_check_ns,
        user_check_large_ns: large.user_check_ns,
        worst_ratio,
        provisioned_users: provisioned,
        resident_users: resident,
        store_loads: loads,
        divergences,
    };
    (vec![e19a, e19b], summary)
}

/// Runs E19 at full scale and returns both the tables and the summary.
pub fn e19_control_full() -> (Vec<Table>, E19Summary) {
    run_control(LARGE_FLEET, FULL_GATE)
}

/// Runs E19 (tables only).
pub fn e19_control() -> Vec<Table> {
    e19_control_full().0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The large fleet of the in-crate test: debug builds spawn slowly and
    /// share the machine with sibling test binaries, so the test proves the
    /// shape on a smaller storm and CI gates the full run in release.
    const TEST_LARGE_FLEET: usize = 1_200;
    /// Looser gate for the in-crate test (debug build, parallel siblings).
    const TEST_GATE: f64 = 3.0;

    #[test]
    fn e19_control_plane_stays_flat_and_the_store_stays_bounded() {
        let _serial = crate::harness::latency_test_guard();
        let (tables, summary) = run_control(TEST_LARGE_FLEET, TEST_GATE);
        assert_eq!(tables.len(), 2);
        assert!(
            !tables
                .iter()
                .any(|t| t.rows.iter().flatten().any(|c| c.contains("FAILED"))),
            "all verdicts ok: {tables:#?}"
        );
        assert!(
            summary.worst_ratio <= TEST_GATE,
            "per-op latency grew {:.2}x from {} to {} apps",
            summary.worst_ratio,
            summary.small_fleet,
            summary.large_fleet
        );
        assert_eq!(summary.provisioned_users, PROVISIONED_USERS);
        assert!(summary.resident_users <= RESIDENT_BOUND);
        assert!(summary.store_loads > 0);
        assert_eq!(summary.divergences, 0, "sampled grants diverged");
    }
}
