//! E1 (Fig 1): the lifetime rule — the VM/application lives exactly as long
//! as its non-daemon threads. E3 (Fig 3): applications are sets of threads,
//! confined to their groups.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jmp_core::Application;
use parking_lot::Mutex;

use crate::harness::{register_app, standard_runtime};
use crate::table::Table;

/// E1: reproduce Fig 1 as an observable timeline.
pub fn e1_lifetime() -> Vec<Table> {
    let rt = standard_runtime(None);
    let log: Arc<Mutex<Vec<(String, Instant)>>> = Arc::new(Mutex::new(Vec::new()));
    let start = Instant::now();
    let log_event = {
        let log = Arc::clone(&log);
        move |what: &str| log.lock().push((what.to_string(), Instant::now()))
    };

    let log1 = log_event.clone();
    let log2 = log_event.clone();
    let log3 = log_event.clone();
    register_app(&rt, "fig1", move |_args| {
        let vm = jmp_vm::Vm::current().expect("on a VM thread");
        log1("main starts");
        // A daemon heartbeat that would run forever (Fig 1's daemon rows).
        let log_d = log2.clone();
        vm.thread_builder()
            .name("daemon-heartbeat")
            .daemon(true)
            .spawn(move |_| {
                log_d("daemon starts");
                let _ = jmp_vm::thread::sleep(Duration::from_secs(600));
                log_d("daemon interrupted at teardown");
            })?;
        // A non-daemon worker that outlives main.
        let log_w = log3.clone();
        vm.thread_builder().name("worker").spawn(move |_| {
            log_w("worker starts");
            let _ = jmp_vm::thread::sleep(Duration::from_millis(60));
            log_w("worker finishes (last non-daemon)");
        })?;
        log1("main returns (worker still running)");
        Ok(())
    });

    let app = rt.launch_as("alice", "fig1", &[]).unwrap();
    let exit_code = app.wait_for().unwrap();
    log_event("application finished (reaper done)");
    let daemons_survived = rt
        .vm()
        .threads()
        .iter()
        .any(|t| t.name() == "daemon-heartbeat" && t.is_alive());

    let mut table = Table::new(
        "E1",
        "Fig 1 — application lifetime follows non-daemon threads",
        &["t (ms)", "event"],
    );
    for (what, at) in log.lock().iter() {
        table.rowd(&[
            format!("{:7.1}", at.duration_since(start).as_secs_f64() * 1e3),
            what.clone(),
        ]);
    }
    table.rowd(&[
        format!("{:7.1}", start.elapsed().as_secs_f64() * 1e3),
        format!("exit code {exit_code}; daemon threads survive teardown: {daemons_survived}"),
    ]);
    table.note("shape: the application ends when the WORKER exits, not when main returns;");
    table.note("the daemon thread never kept it alive and was interrupted at teardown.");
    rt.shutdown();
    vec![table]
}

/// E3: application = set of threads; containment invariants.
pub fn e3_containment() -> Vec<Table> {
    let rt = standard_runtime(None);
    let mut table = Table::new(
        "E3",
        "Fig 3 — applications are thread sets, confined to their groups",
        &["check", "outcome"],
    );

    // Two instances of the same program are distinct applications.
    register_app(&rt, "instance", |_args| {
        jmp_vm::thread::sleep(Duration::from_millis(80))
    });
    let a = rt.launch_as("alice", "instance", &[]).unwrap();
    let b = rt.launch_as("bob", "instance", &[]).unwrap();
    table.rowd(&[
        "two instances of one program are distinct applications".to_string(),
        format!(
            "ids {} vs {}, distinct groups: {}",
            a.id(),
            b.id(),
            !a.group().same_group(b.group())
        ),
    ]);

    // Threads spawned by an app land in its own group subtree.
    static IN_GROUP: AtomicUsize = AtomicUsize::new(0);
    register_app(&rt, "spawner", |_args| {
        let vm = jmp_vm::Vm::current().unwrap();
        let app = Application::current().unwrap();
        let group = app.group().clone();
        let t = vm.thread_builder().name("child").spawn(|_| {})?;
        if group.is_ancestor_of(t.group()) {
            IN_GROUP.fetch_add(1, Ordering::SeqCst);
        }
        t.join()
    });
    rt.launch_as("alice", "spawner", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    table.rowd(&[
        "spawned threads stay in the application's group".to_string(),
        format!("confirmed: {}", IN_GROUP.load(Ordering::SeqCst) == 1),
    ]);

    // An untrusted frame cannot spawn into a foreign group.
    static DENIED: AtomicUsize = AtomicUsize::new(0);
    let foreign = a.group().clone();
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("intruder")
                .main(move |_| {
                    let vm = jmp_vm::Vm::current().unwrap();
                    let untrusted = Arc::new(jmp_security::ProtectionDomain::untrusted(
                        jmp_security::CodeSource::remote("http://evil/x"),
                    ));
                    let result = jmp_vm::stack::call_as("Evil", untrusted, || {
                        vm.thread_builder().group(foreign.clone()).spawn(|_| {})
                    });
                    if result.is_err() {
                        DENIED.fetch_add(1, Ordering::SeqCst);
                    }
                    Ok(())
                })
                .build(),
            jmp_security::CodeSource::local("file:/apps/intruder"),
        )
        .unwrap();
    rt.launch_as("bob", "intruder", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    table.rowd(&[
        "untrusted code spawning into a foreign app's group".to_string(),
        format!(
            "denied by system security manager: {}",
            DENIED.load(Ordering::SeqCst) == 1
        ),
    ]);

    a.wait_for().unwrap();
    b.wait_for().unwrap();
    table.note("shape: every row reports its invariant as holding.");
    rt.shutdown();
    vec![table]
}
