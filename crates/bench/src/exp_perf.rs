//! E5 (§2): the performance case for a single multi-processing VM.
//! Measured single-VM numbers (this runtime, this machine) against the
//! simulated multi-JVM baseline (`jmp-sim`'s cost model). Shapes and ratios
//! are the reproduction target, not absolute values.

use std::time::Instant;

use jmp_sim::{
    memory_footprint_kib, simulate_context_switches, simulate_interactive_load, simulate_launch,
    simulate_pipe_transfer, CostModel, HostingMode, InteractiveLoad,
};
use jmp_vm::io::pipe;

use crate::harness::{register_app, standard_runtime};
use crate::table::{fmt_ns, Table};

/// E5a: application launch latency, measured single-VM vs simulated
/// multi-JVM.
pub fn e5a_launch() -> Vec<Table> {
    let model = CostModel::default();
    let mut table = Table::new(
        "E5a",
        "§2 — launching N applications: measured single-VM vs simulated multi-JVM",
        &[
            "N",
            "single-VM (measured)",
            "multi-JVM (simulated)",
            "ratio",
        ],
    );
    for n in [1u32, 2, 4, 8, 16, 32] {
        let rt = standard_runtime(None);
        register_app(&rt, "noop", |_| Ok(()));
        let start = Instant::now();
        let apps: Vec<_> = (0..n)
            .map(|_| rt.launch_as("alice", "noop", &[]).unwrap())
            .collect();
        for app in apps {
            app.wait_for().unwrap();
        }
        let measured_ns = start.elapsed().as_nanos() as f64;
        rt.shutdown();
        let simulated = simulate_launch(&model, n, HostingMode::MultiJvm);
        let ratio = simulated.as_nanos() as f64 / measured_ns;
        table.rowd(&[
            n.to_string(),
            fmt_ns(measured_ns),
            fmt_ns(simulated.as_nanos() as f64),
            format!("{ratio:.0}x"),
        ]);
    }
    table.note("shape: in-VM launch (thread + group + loader + reloaded System) beats a");
    table.note("fork/exec + JVM boot per application by orders of magnitude, at every N.");
    vec![table]
}

/// E5b: pipe throughput, measured in-VM vs simulated cross-process.
pub fn e5b_ipc() -> Vec<Table> {
    let model = CostModel::default();
    let total: u64 = 8 << 20; // 8 MiB
    let mut table = Table::new(
        "E5b",
        "§2 — pipe IPC throughput: measured in-VM vs simulated cross-process",
        &[
            "chunk",
            "in-VM (measured)",
            "cross-process (simulated)",
            "sim switches",
        ],
    );
    for chunk in [256usize, 4096, 65536] {
        // Measured: two OS threads through the runtime's in-memory pipe.
        let (writer, reader) = pipe(65536);
        let payload = vec![0u8; chunk];
        let start = Instant::now();
        let producer = std::thread::spawn(move || {
            let mut sent = 0u64;
            while sent < total {
                writer.write_all(&payload).unwrap();
                sent += payload.len() as u64;
            }
            writer.close();
        });
        let mut buf = vec![0u8; chunk];
        let mut received = 0u64;
        loop {
            let n = reader.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            received += n as u64;
        }
        producer.join().unwrap();
        assert_eq!(received, total);
        let secs = start.elapsed().as_secs_f64();
        let measured_mibs = (total as f64 / (1024.0 * 1024.0)) / secs;

        let sim = simulate_pipe_transfer(&model, total, chunk, true, 512);
        table.rowd(&[
            format!("{chunk}B"),
            format!("{measured_mibs:.0} MiB/s"),
            format!("{:.0} MiB/s", sim.mib_per_sec()),
            sim.switches.to_string(),
        ]);
    }
    table.note("shape: the single-address-space pipe meets or beats the simulated");
    table.note("cross-process pipe at every chunk size, with the clearest win at large");
    table.note("chunks; at small chunks our real pipe's lock/condvar cost per write eats");
    table.note("into the avoided-syscall advantage (an honest artifact of measuring a real");
    table.note("implementation against a model).");
    vec![table]
}

/// E5c: context-switch cost.
pub fn e5c_context_switch() -> Vec<Table> {
    let model = CostModel::default();
    let mut table = Table::new(
        "E5c",
        "§2 — context switch cost (per switch)",
        &["kind", "working set", "cost"],
    );

    // Measured: token ping-pong between two VM threads over two pipes.
    let rounds: u32 = 500;
    let rt = standard_runtime(None);
    let (w_ab, r_ab) = pipe(16);
    let (w_ba, r_ba) = pipe(16);
    let echo = rt
        .vm()
        .thread_builder()
        .name("pong")
        .daemon(true)
        .spawn(move |_| {
            let mut buf = [0u8; 1];
            loop {
                match r_ab.read(&mut buf) {
                    Ok(0) | Err(_) => return,
                    Ok(_) => {
                        if w_ba.write(&buf).is_err() {
                            return;
                        }
                    }
                }
            }
        })
        .unwrap();
    let start = Instant::now();
    let mut buf = [0u8; 1];
    for _ in 0..rounds {
        w_ab.write(&[1]).unwrap();
        let n = r_ba.read(&mut buf).unwrap();
        assert_eq!(n, 1);
    }
    let per_round_trip = start.elapsed().as_nanos() as f64 / f64::from(rounds);
    w_ab.close();
    let _ = echo;
    rt.shutdown();
    table.rowd(&[
        "measured in-VM thread hand-off (half round trip)".to_string(),
        "-".to_string(),
        fmt_ns(per_round_trip / 2.0),
    ]);

    for ws in [16u64, 256, 1024] {
        let same = simulate_context_switches(&model, 1000, false, ws);
        let cross = simulate_context_switches(&model, 1000, true, ws);
        table.rowd(&[
            "simulated same-address-space switch".to_string(),
            format!("{ws} KiB"),
            fmt_ns(same.as_nanos() as f64 / 1000.0),
        ]);
        table.rowd(&[
            "simulated cross-address-space switch".to_string(),
            format!("{ws} KiB"),
            fmt_ns(cross.as_nanos() as f64 / 1000.0),
        ]);
    }
    table.note("shape: cross-address-space switches cost a multiple of same-space switches,");
    table.note("growing with the working set (cache/TLB refill) — the paper's §2 claim.");
    vec![table]
}

/// E5d: memory footprint model.
pub fn e5d_memory() -> Vec<Table> {
    let model = CostModel::default();
    let mut table = Table::new(
        "E5d",
        "§2 — memory footprint of N applications (model)",
        &["N", "multi-JVM", "single VM", "ratio"],
    );
    for n in [1u64, 2, 4, 8, 16, 32, 64] {
        let multi = memory_footprint_kib(&model, n, HostingMode::MultiJvm);
        let single = memory_footprint_kib(&model, n, HostingMode::SingleVm);
        table.rowd(&[
            n.to_string(),
            format!("{:.1} MiB", multi as f64 / 1024.0),
            format!("{:.1} MiB", single as f64 / 1024.0),
            format!("{:.1}x", multi as f64 / single as f64),
        ]);
    }
    table.note("shape: multi-JVM grows by a full JVM per application; the single VM pays one");
    table.note("base plus per-app state, so the ratio approaches jvm_base/app_state — the");
    table.note("small-device argument of §2 ('crippling to try to start multiple JVMs').");
    vec![table]
}

/// E5e: interactive responsiveness under compute load (scheduler model).
pub fn e5e_responsiveness() -> Vec<Table> {
    let model = CostModel::default();
    let mut table = Table::new(
        "E5e",
        "§2 — interactive response latency with K compute-bound neighbors (model)",
        &[
            "K",
            "working set",
            "multi-JVM mean",
            "single VM mean",
            "gap",
        ],
    );
    for k in [1u32, 4, 8] {
        for ws in [256u64, 2048] {
            let load = InteractiveLoad {
                compute_tasks: k,
                working_set_kib: ws,
                ..InteractiveLoad::default()
            };
            let multi = simulate_interactive_load(&model, &load, HostingMode::MultiJvm);
            let single = simulate_interactive_load(&model, &load, HostingMode::SingleVm);
            table.rowd(&[
                k.to_string(),
                format!("{ws} KiB"),
                multi.mean.to_string(),
                single.mean.to_string(),
                format!(
                    "+{}",
                    jmp_sim::SimTime(multi.mean.as_nanos().saturating_sub(single.mean.as_nanos()))
                ),
            ]);
        }
    }
    table.note("shape: the single VM always responds faster; the gap grows with the working");
    table.note("set (cache/TLB refill on every cross-address-space hand-off) — compounding");
    table.note("the per-switch numbers of E5c into user-visible latency.");
    vec![table]
}
