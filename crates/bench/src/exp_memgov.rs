//! E20: memory governance end to end — bomb containment, checkpoint/restore
//! fidelity, and the hot-loop cost of always-on heap accounting.
//!
//! Four tables:
//!
//! * **E20a** — victim exec→exit latency beside a pack of memory bombs
//!   (doubling-concat loops rebuilding multi-MiB strings): alone
//!   (baseline), bombs uncapped (degradation demonstrated), and bombs under
//!   a `limit.memory` quota (containment: the acceptance gate is ≤1.1x of
//!   baseline — the bombs die at their first over-cap charge).
//! * **E20b** — enforcement accounting for the capped run: typed denials on
//!   the `memory.denied`/`quota.denied` counters, audited denials for the
//!   hostile user, recorded breaches, and every ledger drained to zero
//!   after the reap.
//! * **E20c** — checkpoint/restore fidelity: the differential corpus run
//!   split at several checkpoint points (plain vs park+resume must agree on
//!   results, traps, and instruction counts — CI gates on zero
//!   divergence), plus a whole-application migrate (checkpoint on one
//!   `MpRuntime`, restore on a second) whose console output must be
//!   byte-identical with id, user, and limits preserved.
//! * **E20d** — hot-loop accounting overhead: the same pre-decoded sum loop
//!   interleaved on a detached VM thread (memory governance inert — the
//!   PR-8 baseline behaviour; profiler and safepoints identical) and on a
//!   VM thread carrying an [`AppContext`] (arena slabs, samples, and
//!   prepays billed to the ledger). Round minima; the acceptance gate is
//!   ≤5% added cost per wire instruction.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use jmp_core::MpRuntime;
use jmp_security::Policy;
use jmp_vm::interp::{assemble, difftest, ClassImage, Interpreter, NoNatives, Value};
use jmp_vm::{AppContext, ResourceKind, Vm};

use crate::table::Table;

/// Victim launches measured per scenario (median reported).
const VICTIM_RUNS: usize = 24;
/// Doublings per bomb rebuild: 16B × 2^18 = 4MiB per string.
const BOMB_DOUBLINGS: i64 = 18;
/// Rebuilds per bomb: ~2GiB of copying per bomb when uncapped.
const BOMB_REBUILDS: i64 = 256;
/// The hostile user's memory cap in the contained scenario (256KiB): the
/// first rebuild's prepay crosses it within a few doublings.
const BOMB_CAP: u64 = 256 * 1024;
/// Interleaved plain/governed rounds for the overhead measurement. Rounds
/// are ~0.4ms each; a large count keeps the per-side minima stable on a
/// contended single-core box.
const OVERHEAD_ROUNDS: usize = 101;
/// Sum-loop argument for the overhead measurement (~0.4M wire insns/run).
const OVERHEAD_N: i64 = 30_000;
/// Checkpoint split points for the differential sweep: entry, early,
/// mid-loop, and both sides of the safepoint boundary.
const CKPT_SPLITS: [u64; 5] = [0, 33, 1023, 1024, 1025];

fn ok(flag: bool) -> &'static str {
    if flag {
        "ok"
    } else {
        "FAILED"
    }
}

/// The bomb policy: standard users plus hostile `mallory`; with `capped`
/// on, mallory's memory is quota'd.
fn bomb_policy(capped: bool) -> Policy {
    let limit = if capped {
        format!(r#"grant user "mallory" {{ permission resource "limit.memory:{BOMB_CAP}"; }};"#)
    } else {
        String::new()
    };
    let text = format!(
        "{}\n{}\n{limit}",
        jmp_shell::default_policy_text(),
        r#"
        grant user "alice" {
            permission file "/home/alice/-" "read,write,delete";
        };
        "#
    );
    Policy::parse(&text).expect("bomb policy parses")
}

fn bomb_runtime(capped: bool) -> MpRuntime {
    let rt = MpRuntime::builder()
        .policy(bomb_policy(capped))
        .user("alice", "apw")
        .user("mallory", "mpw")
        .build()
        .expect("runtime builds");
    jmp_shell::install(&rt).expect("tools install");
    rt
}

/// The victim: a short interpreted image (exec→exit is the measured unit),
/// touching the same arena/ledger paths the bombs contend on.
fn victim_image() -> ClassImage {
    assemble(
        "class Victim\n\
         method main/0 locals=2\n\
         push_int 0\n  store 0\n  push_int 0\n  store 1\n\
         loop:\n\
         load 0\n  load 1\n  add\n  store 0\n\
         load 1\n  push_int 1\n  add\n  store 1\n\
         load 1\n  push_int 2000\n  lt\n  jump_if_true loop\n\
         load 0\n  return_value\n",
    )
    .expect("victim assembles")
}

/// The bomb: rebuild a 4MiB string by doubling concat, `BOMB_REBUILDS`
/// times. Uncapped it is a sustained memory/bandwidth hog; capped, the
/// prepay on an early doubling is denied and the run traps.
fn bomb_image() -> ClassImage {
    assemble(&format!(
        "class Bomb\n\
         method main/0 locals=3\n\
         push_int 0\n  store 2\n\
         outer:\n\
         push_str \"aaaaaaaaaaaaaaaa\"\n  store 0\n\
         push_int 0\n  store 1\n\
         inner:\n\
         load 0\n  load 0\n  concat\n  store 0\n\
         load 1\n  push_int 1\n  add\n  store 1\n\
         load 1\n  push_int {BOMB_DOUBLINGS}\n  lt\n  jump_if_true inner\n\
         load 2\n  push_int 1\n  add\n  store 2\n\
         load 2\n  push_int {BOMB_REBUILDS}\n  lt\n  jump_if_true outer\n\
         push_int 0\n  return_value\n",
    ))
    .expect("bomb assembles")
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// One bomb-scenario run's measurements.
struct Outcome {
    victim_ms: f64,
    memory_denied: u64,
    quota_denied: u64,
    audited: usize,
    breaches: u64,
    drained: bool,
}

/// Runs one scenario: optionally a pack of bombs as `mallory`, then the
/// victim latency series, then the accounting.
fn run_scenario(capped: bool, bombs: bool) -> Outcome {
    let rt = bomb_runtime(capped);
    let n_bombs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(4, 12);

    let mut bomb_apps = Vec::new();
    if bombs {
        for _ in 0..n_bombs {
            bomb_apps.push(
                rt.launch_image("mallory", bomb_image(), &[])
                    .expect("bomb launches"),
            );
        }
        // Let the pack ramp (or, capped, die) before measuring.
        std::thread::sleep(Duration::from_millis(30));
    }

    let mut latencies = Vec::with_capacity(VICTIM_RUNS);
    let mut victim_contexts = Vec::new();
    for _ in 0..VICTIM_RUNS {
        let start = Instant::now();
        let victim = rt
            .launch_image("alice", victim_image(), &[])
            .expect("victim launches");
        assert_eq!(victim.wait_for().unwrap(), 0, "victim exits cleanly");
        latencies.push(start.elapsed().as_secs_f64() * 1e3);
        victim_contexts.push(Arc::clone(victim.context()));
    }
    let victim_ms = median_ms(&mut latencies);

    let mut contexts = victim_contexts;
    for bomb in &bomb_apps {
        contexts.push(Arc::clone(bomb.context()));
    }
    for bomb in bomb_apps {
        // Uncapped bombs run to completion; capped ones trapped long ago.
        let _ = bomb.wait_for();
    }
    assert!(rt.await_idle(Duration::from_secs(30)), "runtime settles");

    let metrics = rt.vm().obs().vm_metrics();
    let memory_denied = metrics.counter("memory.denied").get();
    let quota_denied = metrics.counter("quota.denied").get();
    let audited = rt
        .vm()
        .obs()
        .audit_query(Some("mallory"), None)
        .iter()
        .filter(|r| r.permission.contains("memory"))
        .count();
    let breaches = contexts.iter().map(|ctx| ctx.breaches()).sum();
    let drained = jmp_awt::Toolkit::wait_until(Duration::from_secs(5), || {
        contexts.iter().all(|ctx| ctx.ledger().is_drained())
    });
    rt.shutdown();
    Outcome {
        victim_ms,
        memory_denied,
        quota_denied,
        audited,
        breaches,
        drained,
    }
}

/// The whole-application migrate: checkpoint a mid-loop interpreted app on
/// one runtime, restore on a second, compare the console line against an
/// uninterrupted run. Returns (identical, id_preserved, limits_preserved).
fn migrate_roundtrip() -> (bool, bool, bool) {
    let spinner = || {
        assemble(
            "class Spinner\n\
             method main/0 locals=2\n\
             push_int 0\n  store 0\n  push_int 0\n  store 1\n\
             loop:\n\
             load 0\n  load 1\n  add\n  store 0\n\
             load 1\n  push_int 1\n  add\n  store 1\n\
             load 1\n  push_int 200000\n  lt\n  jump_if_true loop\n\
             load 0\n  return_value\n",
        )
        .expect("spinner assembles")
    };
    // The uninterrupted run: its `=> <value>` line is the reference.
    let plain = MpRuntime::builder().user("alice", "pw").build().unwrap();
    let app = plain.launch_image("alice", spinner(), &[]).unwrap();
    assert_eq!(app.wait_for().unwrap(), 0);
    let reference = plain
        .console_output()
        .lines()
        .find(|l| l.starts_with("=> "))
        .expect("plain run prints its result")
        .to_string();
    plain.shutdown();

    // Checkpoint mid-loop on runtime one (the sticky request parks the
    // interpreter at its first safepoint), restore on runtime two.
    let rt1 = MpRuntime::builder().user("alice", "pw").build().unwrap();
    let app = rt1.launch_image("alice", spinner(), &[]).unwrap();
    let id = app.id();
    app.context().limits().set(ResourceKind::Memory, 64 << 20);
    let bytes = rt1.checkpoint_app(id).expect("checkpoint parks the app");
    assert!(rt1.await_idle(Duration::from_secs(10)));
    rt1.shutdown();

    let rt2 = MpRuntime::builder().user("alice", "pw").build().unwrap();
    let restored = rt2.restore_app(&bytes).expect("restore runs");
    let id_preserved = restored.id() == id && restored.user().name() == "alice";
    assert_eq!(restored.wait_for().unwrap(), 0);
    // Read the limit after exit: the restored main applies it on startup.
    let limits_preserved = restored.context().limits().get(ResourceKind::Memory) == 64 << 20;
    let identical = rt2.console_output().lines().any(|l| l == reference);
    rt2.shutdown();
    (identical, id_preserved, limits_preserved)
}

/// One timing worker: an interpreter pinned to its own VM thread,
/// re-running the workload on request and reporting elapsed nanoseconds.
struct TimedWorker {
    req_tx: mpsc::Sender<()>,
    res_rx: mpsc::Receiver<f64>,
    thread: jmp_vm::VmThread,
}

impl TimedWorker {
    fn spawn(builder: jmp_vm::ThreadBuilder, image: Arc<ClassImage>) -> TimedWorker {
        let (req_tx, req_rx) = mpsc::channel::<()>();
        let (res_tx, res_rx) = mpsc::channel::<f64>();
        let thread = builder
            .spawn(move |_| {
                let interp = Interpreter::new(image, Arc::new(NoNatives)).expect("verifies");
                interp
                    .run("main", vec![Value::Int(OVERHEAD_N)])
                    .expect("warms");
                while req_rx.recv().is_ok() {
                    let t = Instant::now();
                    interp
                        .run("main", vec![Value::Int(OVERHEAD_N)])
                        .expect("runs");
                    let _ = res_tx.send(t.elapsed().as_nanos() as f64);
                }
            })
            .expect("timing worker spawns");
        TimedWorker {
            req_tx,
            res_rx,
            thread,
        }
    }

    fn round_ns(&self) -> f64 {
        self.req_tx.send(()).expect("worker alive");
        self.res_rx.recv().expect("worker round returns")
    }

    fn finish(self) {
        drop(self.req_tx);
        self.thread.join_timeout(Duration::from_secs(10));
    }
}

/// The overhead measurement: the same sum loop on two VM threads — one
/// detached (no [`AppContext`]: memory governance inert, everything else,
/// the profiler included, identical) and one carrying a context (every
/// slab growth, sample, and prepay billed to the ledger). Rounds
/// interleave; minima isolate the accounting cost. Returns (wire
/// insns/run, plain ns/insn, governed ns/insn).
fn measure_overhead() -> (u64, f64, f64) {
    let image = Arc::new(
        assemble(
            "class Sum\n\
             method main/1 locals=2\n\
             push_int 0\n  store 1\n\
             loop:\n\
             load 0\n  push_int 0\n  gt\n  jump_if_false done\n\
             load 1\n  load 0\n  add\n  store 1\n\
             load 0\n  push_int 1\n  sub\n  store 0\n\
             jump loop\n\
             done:\n\
             load 1\n  return_value\n",
        )
        .expect("sum assembles"),
    );
    let vm = Vm::builder().build();
    let group = vm
        .main_group()
        .new_child("memgov-bench")
        .expect("group creates");
    let ctx = AppContext::new(9_000, "memgov-bench", "alice", group.id(), vm.obs().clone());

    // Count wire instructions once with a throwaway interpreter.
    let counter = Interpreter::new(Arc::clone(&image), Arc::new(NoNatives)).expect("verifies");
    let before = counter.stats().instructions();
    counter
        .run("main", vec![Value::Int(OVERHEAD_N)])
        .expect("counts");
    let wire_insns = counter.stats().instructions() - before;

    let plain = TimedWorker::spawn(
        vm.thread_builder().name("memgov-plain").detached(),
        Arc::clone(&image),
    );
    let governed = TimedWorker::spawn(
        vm.thread_builder()
            .name("memgov-governed")
            .app_context(Arc::clone(&ctx)),
        Arc::clone(&image),
    );

    let mut plain_best = f64::INFINITY;
    let mut governed_best = f64::INFINITY;
    for _ in 0..OVERHEAD_ROUNDS {
        plain_best = plain_best.min(plain.round_ns() / wire_insns as f64);
        governed_best = governed_best.min(governed.round_ns() / wire_insns as f64);
    }
    plain.finish();
    governed.finish();
    vm.exit_unchecked(0);
    (wire_insns, plain_best, governed_best)
}

/// Scalar results of E20, exported as `BENCH_E20.json` for CI gates.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct E20Summary {
    /// Victim exec→exit median, no bombs (ms).
    pub baseline_victim_ms: f64,
    /// Victim median beside the uncapped bomb pack (ms).
    pub uncapped_victim_ms: f64,
    /// Victim median beside the memory-capped bomb pack (ms).
    pub capped_victim_ms: f64,
    /// `uncapped_victim_ms / baseline_victim_ms` — the damage shown.
    pub uncapped_ratio: f64,
    /// `capped_victim_ms / baseline_victim_ms` — the CI gate is ≤1.1x.
    pub capped_ratio: f64,
    /// `memory.denied` counter after the capped run (≥1 gated).
    pub memory_denied: u64,
    /// `quota.denied` counter after the capped run (≥1 gated).
    pub quota_denied: u64,
    /// Audited `memory` denials attributed to the hostile user (≥1 gated).
    pub audited_denials: usize,
    /// Breaches recorded across all ledgers in the capped run.
    pub hostile_breaches: u64,
    /// Every ledger drained to zero after the capped run (gated).
    pub ledgers_drained: bool,
    /// Differential corpus comparisons run (cases × split points).
    pub ckpt_comparisons: usize,
    /// Checkpoint/restore divergences from plain runs (0 gated).
    pub ckpt_divergences: usize,
    /// Migrated console output byte-identical to the uninterrupted run.
    pub roundtrip_identical: bool,
    /// Application id and user preserved across the migrate.
    pub roundtrip_id_preserved: bool,
    /// Resource limits preserved across the migrate.
    pub roundtrip_limits_preserved: bool,
    /// Sum-loop wire instructions per overhead-measurement run.
    pub overhead_wire_insns: u64,
    /// Round-minimum ns/insn on a detached (ungoverned) VM thread.
    pub plain_ns_per_insn: f64,
    /// Round-minimum ns/insn on an [`AppContext`]-carrying thread.
    pub governed_ns_per_insn: f64,
    /// `(governed/plain − 1) × 100` — the CI gate is ≤5%.
    pub accounting_overhead_pct: f64,
}

/// Runs E20 and returns both the tables and the exported summary.
pub fn e20_memgov_full() -> (Vec<Table>, E20Summary) {
    // -- E20a/E20b: bomb containment -----------------------------------
    let baseline = run_scenario(false, false);
    let uncapped = run_scenario(false, true);
    let capped = run_scenario(true, true);
    let uncapped_ratio = uncapped.victim_ms / baseline.victim_ms;
    let capped_ratio = capped.victim_ms / baseline.victim_ms;

    let mut e20a = Table::new(
        "E20a",
        "victim exec→exit latency beside a memory-bomb pack",
        &["scenario", "victims", "median ms", "vs baseline", "verdict"],
    );
    e20a.rowd(&[
        "alone (no bombs)".to_string(),
        format!("{VICTIM_RUNS}"),
        format!("{:.2}", baseline.victim_ms),
        "1.0x".to_string(),
        "baseline".to_string(),
    ]);
    e20a.rowd(&[
        "bomb pack, memory uncapped".to_string(),
        format!("{VICTIM_RUNS}"),
        format!("{:.2}", uncapped.victim_ms),
        format!("{uncapped_ratio:.2}x"),
        "unbounded".to_string(),
    ]);
    e20a.rowd(&[
        "bomb pack, limit.memory applied".to_string(),
        format!("{VICTIM_RUNS}"),
        format!("{:.2}", capped.victim_ms),
        format!("{capped_ratio:.2}x"),
        ok(capped_ratio <= 1.1).to_string(),
    ]);
    e20a.note(format!(
        "bombs: one per core (4..=12), each rebuilding a {}MiB string by doubling \
         concat {BOMB_REBUILDS} times; capped, the first over-cap prepay traps the run",
        (16 << BOMB_DOUBLINGS) >> 20,
    ));
    e20a.note("acceptance: capped victim median <= 1.1x the no-bomb baseline");

    let mut e20b = Table::new(
        "E20b",
        "memory-quota enforcement accounting (capped bomb pack)",
        &["check", "value", "verdict"],
    );
    e20b.rowd(&[
        "memory.denied counter".to_string(),
        format!("{}", capped.memory_denied),
        ok(capped.memory_denied >= 1).to_string(),
    ]);
    e20b.rowd(&[
        "quota.denied counter".to_string(),
        format!("{}", capped.quota_denied),
        ok(capped.quota_denied >= 1).to_string(),
    ]);
    e20b.rowd(&[
        "audited memory denials for mallory".to_string(),
        format!("{}", capped.audited),
        ok(capped.audited >= 1).to_string(),
    ]);
    e20b.rowd(&[
        "breaches recorded".to_string(),
        format!("{}", capped.breaches),
        ok(capped.breaches >= 1).to_string(),
    ]);
    e20b.rowd(&[
        "all ledgers drained after reap".to_string(),
        format!("{}", capped.drained),
        ok(capped.drained).to_string(),
    ]);
    e20b.note("a denied charge fails typed (QuotaExceeded{memory}), lands in the audit");
    e20b.note("trail, bumps both counters, and the reaped ledgers read exactly zero");

    // -- E20c: checkpoint/restore fidelity -----------------------------
    let (ckpt_comparisons, divergences) = difftest::run_all_checkpointed(&CKPT_SPLITS);
    let (identical, id_preserved, limits_preserved) = migrate_roundtrip();
    let mut e20c = Table::new(
        "E20c",
        "checkpoint/restore fidelity — corpus sweep + whole-app migrate",
        &["check", "value", "verdict"],
    );
    e20c.rowd(&[
        "corpus comparisons (cases x splits)".to_string(),
        format!("{ckpt_comparisons}"),
        ok(ckpt_comparisons >= 200).to_string(),
    ]);
    e20c.rowd(&[
        "divergences vs plain runs".to_string(),
        format!("{}", divergences.len()),
        if divergences.is_empty() {
            "ok".to_string()
        } else {
            format!("FAILED: {}", divergences[0])
        },
    ]);
    e20c.rowd(&[
        "migrated output byte-identical".to_string(),
        format!("{identical}"),
        ok(identical).to_string(),
    ]);
    e20c.rowd(&[
        "app id + user preserved".to_string(),
        format!("{id_preserved}"),
        ok(id_preserved).to_string(),
    ]);
    e20c.rowd(&[
        "limits preserved".to_string(),
        format!("{limits_preserved}"),
        ok(limits_preserved).to_string(),
    ]);
    e20c.note("each comparison: plain run vs park-at-split + resume-on-fresh-interpreter;");
    e20c.note("results, trap text, and cumulative instruction counts must all match.");
    e20c.note("the migrate checkpoints mid-loop on one MpRuntime, restores on a second.");

    // -- E20d: accounting overhead --------------------------------------
    let (overhead_wire_insns, plain_ns, governed_ns) = measure_overhead();
    let overhead_pct = (governed_ns / plain_ns - 1.0) * 100.0;
    let mut e20d = Table::new(
        "E20d",
        "hot-loop cost of always-on memory accounting (sum loop)",
        &[
            "wire insns/run",
            "plain ns/insn",
            "governed ns/insn",
            "overhead",
            "verdict",
        ],
    );
    e20d.rowd(&[
        overhead_wire_insns.to_string(),
        format!("{plain_ns:.2}"),
        format!("{governed_ns:.2}"),
        format!("{overhead_pct:.1}%"),
        ok(overhead_pct <= 5.0).to_string(),
    ]);
    e20d.note("interleaved rounds, round minima: the identical pre-decoded engine on a");
    e20d.note("detached VM thread (governance inert, profiler identical) vs an");
    e20d.note("AppContext-carrying thread (slabs, samples, prepays billed). gate: <=5%.");

    let summary = E20Summary {
        baseline_victim_ms: baseline.victim_ms,
        uncapped_victim_ms: uncapped.victim_ms,
        capped_victim_ms: capped.victim_ms,
        uncapped_ratio,
        capped_ratio,
        memory_denied: capped.memory_denied,
        quota_denied: capped.quota_denied,
        audited_denials: capped.audited,
        hostile_breaches: capped.breaches,
        ledgers_drained: capped.drained,
        ckpt_comparisons,
        ckpt_divergences: divergences.len(),
        roundtrip_identical: identical,
        roundtrip_id_preserved: id_preserved,
        roundtrip_limits_preserved: limits_preserved,
        overhead_wire_insns,
        plain_ns_per_insn: plain_ns,
        governed_ns_per_insn: governed_ns,
        accounting_overhead_pct: overhead_pct,
    };
    (vec![e20a, e20b, e20c, e20d], summary)
}

/// E20: the experiment tables.
pub fn e20_memgov() -> Vec<Table> {
    e20_memgov_full().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e20_contains_the_bomb_and_migrates_faithfully() {
        let _serial = crate::harness::latency_test_guard();
        let (tables, summary) = e20_memgov_full();
        assert_eq!(tables.len(), 4);
        // Deterministic checks are asserted tight even in debug builds.
        assert_eq!(summary.ckpt_divergences, 0, "checkpoint sweep diverged");
        assert!(summary.ckpt_comparisons >= 200);
        assert!(summary.roundtrip_identical, "migrated output differs");
        assert!(summary.roundtrip_id_preserved);
        assert!(summary.roundtrip_limits_preserved);
        assert!(summary.memory_denied >= 1);
        assert!(summary.quota_denied >= 1);
        assert!(summary.audited_denials >= 1);
        assert!(summary.ledgers_drained);
        // Latency/overhead bounds stay loose in-tree (debug builds, shared
        // cores, sub-ms baselines); the strict 1.1x / 5% gates run in CI on
        // the release JSON. Uncapped degradation is ~20x, so even the loose
        // bound distinguishes containment from no containment.
        assert!(
            summary.capped_ratio <= 3.0,
            "capped bombs failed to contain: {:.2}x",
            summary.capped_ratio
        );
        assert!(
            summary.accounting_overhead_pct <= 15.0,
            "accounting overhead too high: {:.1}%",
            summary.accounting_overhead_pct
        );
    }
}
