//! E8 (§6.3): the Appletviewer as an unprivileged application, and the
//! applet sandbox built from code-source permissions plus the
//! connect-back-to-origin grant.

use jmp_shell::{publish_applet, spawn_login_session, SimNetwork};

use crate::harness::standard_runtime;
use crate::table::Table;

const HELLO: &str = r#"
    class Hello
    method main/0 locals=0
        push_str "hello from mobile code"
        native println/1
        pop
        return
"#;

const FILE_THIEF: &str = r#"
    class FileThief
    method main/0 locals=0
        push_str "/home/alice/secret.txt"
        native read_file/1
        native println/1
        pop
        return
"#;

const ORIGIN_CALLER: &str = r#"
    class OriginCaller
    method main/0 locals=0
        push_str "applets.example.com"
        native connect/1
        pop
        push_str "connected to origin"
        native println/1
        pop
        return
"#;

const FOREIGN_CALLER: &str = r#"
    class ForeignCaller
    method main/0 locals=0
        push_str "other.example.com"
        native connect/1
        pop
        return
"#;

const TMP_READER: &str = r#"
    class TmpReader
    method main/0 locals=0
        push_str "/tmp/public.txt"
        native read_file/1
        native println/1
        pop
        return
"#;

/// E8: the applet sandbox matrix.
pub fn e8_applet_sandbox() -> Vec<Table> {
    let rt = standard_runtime(None);
    // Extra policy: code from the *trusted* host may read /tmp — showing
    // that code-source grants keep working for remote code (paper §6.3:
    // "one can still assign special privileges to certain code sources").
    {
        let mut policy = (*rt.vm().policy()).clone();
        policy.grant_code(
            jmp_security::CodeSource::remote("http://trusted.example.com/-"),
            vec![jmp_security::Permission::file(
                "/tmp/-",
                jmp_security::FileActions::READ,
            )],
        );
        rt.vm().set_policy(policy).unwrap();
    }
    let alice = rt.users().lookup("alice").unwrap();
    rt.vfs()
        .write("/home/alice/secret.txt", b"top secret", alice.id())
        .unwrap();
    rt.vfs()
        .write("/tmp/public.txt", b"tmp contents", alice.id())
        .unwrap();

    let network = SimNetwork::of(&rt).unwrap();
    network.publish("other.example.com", "/x", b"up".to_vec());
    publish_applet(&rt, "applets.example.com", "/hello.jbc", HELLO).unwrap();
    publish_applet(&rt, "applets.example.com", "/thief.jbc", FILE_THIEF).unwrap();
    publish_applet(&rt, "applets.example.com", "/origin.jbc", ORIGIN_CALLER).unwrap();
    publish_applet(&rt, "applets.example.com", "/foreign.jbc", FOREIGN_CALLER).unwrap();
    publish_applet(&rt, "trusted.example.com", "/tmp.jbc", TMP_READER).unwrap();

    let run = |url: &str| -> String {
        let (terminal, session) = spawn_login_session(&rt).unwrap();
        terminal.type_line("alice").unwrap();
        terminal.type_line("apw").unwrap();
        terminal.type_line(&format!("appletviewer {url}")).unwrap();
        terminal.type_line("quit").unwrap();
        terminal.type_eof();
        session.wait_for().unwrap();
        let screen = terminal.screen_text();
        if screen.contains("applet failed") {
            let line = screen
                .lines()
                .find(|l| l.contains("applet failed"))
                .unwrap_or("applet failed");
            format!("REFUSED: {}", line.trim())
        } else if let Some(line) = screen.lines().find(|l| {
            l.contains("mobile code") || l.contains("connected") || l.contains("contents")
        }) {
            format!("RAN: {}", line.trim())
        } else {
            "RAN (no output)".to_string()
        }
    };

    let mut table = Table::new(
        "E8",
        "§6.3 — the applet sandbox under the unprivileged Appletviewer",
        &["applet", "action", "outcome"],
    );
    table.rowd(&[
        "Hello".to_string(),
        "print to the viewer's System.out".to_string(),
        run("http://applets.example.com/hello.jbc"),
    ]);
    table.rowd(&[
        "FileThief".to_string(),
        "read alice's file while alice runs the viewer".to_string(),
        run("http://applets.example.com/thief.jbc"),
    ]);
    table.rowd(&[
        "OriginCaller".to_string(),
        "connect back to its own host".to_string(),
        run("http://applets.example.com/origin.jbc"),
    ]);
    table.rowd(&[
        "ForeignCaller".to_string(),
        "connect to a different host".to_string(),
        run("http://applets.example.com/foreign.jbc"),
    ]);
    table.rowd(&[
        "TmpReader (from trusted host)".to_string(),
        "read /tmp/public.txt via a code-source grant".to_string(),
        run("http://trusted.example.com/tmp.jbc"),
    ]);
    table.note("shape: printing and origin-connect run; user-file reads and foreign connects");
    table.note("are refused with a SecurityException; the policy can still empower specific");
    table.note("remote code sources (the trusted-host row).");
    rt.shutdown();
    vec![table]
}
