//! E6 (§5.3): the user-based access-control matrix. E7 (§5.6): the system
//! security manager and the luring-attack property.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use jmp_core::{files, Application};
use parking_lot::Mutex;

use crate::harness::{register_app, standard_runtime};
use crate::table::Table;

/// E6: the paper's four example policy rules, exercised as a matrix.
pub fn e6_user_policy() -> Vec<Table> {
    let rt = standard_runtime(None);
    let alice = rt.users().lookup("alice").unwrap();
    let bob = rt.users().lookup("bob").unwrap();
    rt.vfs()
        .write("/home/alice/notes.txt", b"alice data", alice.id())
        .unwrap();
    rt.vfs()
        .write("/home/bob/secret.txt", b"bob data", bob.id())
        .unwrap();

    type OutcomeRow = (String, String, String, String);
    let outcomes: Arc<Mutex<Vec<OutcomeRow>>> = Arc::new(Mutex::new(Vec::new()));

    // A local probe app: reports read/write attempts on both homes.
    let out2 = Arc::clone(&outcomes);
    register_app(&rt, "probe", move |_| {
        let me = Application::current().unwrap().user().name().to_string();
        for (target, path) in [
            ("alice's file", "/home/alice/notes.txt"),
            ("bob's file", "/home/bob/secret.txt"),
        ] {
            for (op, result) in [
                ("read", files::read(path).map(|_| ())),
                ("write", files::append(path, b"x")),
            ] {
                out2.lock().push((
                    "local app (file:/apps/probe)".into(),
                    me.clone(),
                    format!("{op} {target}"),
                    describe(&result),
                ));
            }
        }
        Ok(())
    });
    for user in ["alice", "bob"] {
        rt.launch_as(user, "probe", &[])
            .unwrap()
            .wait_for()
            .unwrap();
    }

    // The backup app (rule 2): code-source read-everything, run as system.
    let out3 = Arc::clone(&outcomes);
    register_app(&rt, "backup", move |_| {
        let me = Application::current().unwrap().user().name().to_string();
        out3.lock().push((
            "backup (file:/apps/backup)".into(),
            me.clone(),
            "read bob's file".into(),
            describe(&files::read("/home/bob/secret.txt").map(|_| ())),
        ));
        out3.lock().push((
            "backup (file:/apps/backup)".into(),
            me,
            "write bob's file".into(),
            describe(&files::append("/home/bob/secret.txt", b"x")),
        ));
        Ok(())
    });
    rt.launch("backup", &[]).unwrap().wait_for().unwrap();

    // Remote code (an applet-like class): no exercise-user grant.
    let out4 = Arc::clone(&outcomes);
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("remoteprobe")
                .main(move |_| {
                    let me = Application::current().unwrap().user().name().to_string();
                    out4.lock().push((
                        "remote code (http://applets/..)".into(),
                        me,
                        "read alice's file".into(),
                        describe(&files::read("/home/alice/notes.txt").map(|_| ())),
                    ));
                    Ok(())
                })
                .build(),
            jmp_security::CodeSource::remote("http://applets.example.com/probe"),
        )
        .unwrap();
    rt.launch_as("alice", "remoteprobe", &[])
        .unwrap()
        .wait_for()
        .unwrap();

    let mut table = Table::new(
        "E6",
        "§5.3 — code-source × user access matrix (the paper's 4 rules)",
        &["code", "running user", "operation", "outcome"],
    );
    for (code, user, op, outcome) in outcomes.lock().iter() {
        table.rowd(&[code.clone(), user.clone(), op.clone(), outcome.clone()]);
    }
    table.note("shape: the SAME local code gets exactly its running user's files (rules 1+3+4);");
    table.note("backup reads everything but writes nothing (rule 2); remote code gets nothing,");
    table.note("even when alice herself runs it.");
    rt.shutdown();
    vec![table]
}

fn describe(result: &Result<(), jmp_core::Error>) -> String {
    match result {
        Ok(()) => "ALLOWED".into(),
        Err(e) if e.is_security() => "DENIED (SecurityException)".into(),
        Err(e) if e.is_file_not_found() => "HIDDEN (FileNotFound — O/S layer)".into(),
        Err(e) => format!("error: {e}"),
    }
}

/// E7: the system security manager's rules and the luring attack.
pub fn e7_security_managers() -> Vec<Table> {
    let rt = standard_runtime(None);
    let mut table = Table::new(
        "E7",
        "§5.6 — system security manager, application SMs, luring attack",
        &["scenario", "outcome"],
    );

    // (a) Application SM is never consulted by system code.
    static APP_SM_CALLS: AtomicUsize = AtomicUsize::new(0);
    struct CountingSm;
    impl jmp_vm::SecurityManager for CountingSm {
        fn check_permission(
            &self,
            _vm: &jmp_vm::Vm,
            _perm: &jmp_security::Permission,
        ) -> jmp_vm::Result<()> {
            APP_SM_CALLS.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }
    register_app(&rt, "appsm", |_| {
        jmp_core::jsystem::set_security_manager(Arc::new(CountingSm))?;
        files::write("/tmp/appsm.txt", b"x")?; // a checked operation
        Ok(())
    });
    rt.launch_as("alice", "appsm", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    table.rowd(&[
        "app installs its own SecurityManager; app then does checked file I/O".to_string(),
        format!(
            "app SM consulted {} times (system SM handled the check)",
            APP_SM_CALLS.load(Ordering::SeqCst)
        ),
    ]);

    // (b) The luring attack: trusted code's privilege is not lent to
    // untrusted callbacks (stack-inspection property, §5.6's Font example).
    let font_domain = Arc::new(jmp_security::ProtectionDomain::system());
    let applet_domain = Arc::new(jmp_security::ProtectionDomain::untrusted(
        jmp_security::CodeSource::remote("http://evil/x"),
    ));
    let demand =
        jmp_security::Permission::file("/sys/fonts/helv.fnt", jmp_security::FileActions::READ);
    let (direct, via_privileged, callback) =
        jmp_vm::stack::call_as("Applet", applet_domain.clone(), || {
            jmp_vm::stack::call_as("Font", font_domain, || {
                let direct = jmp_security::AccessController::check(
                    &jmp_vm::stack::current_access_context(),
                    &demand,
                )
                .is_ok();
                let via_privileged = jmp_vm::stack::do_privileged(|| {
                    jmp_security::AccessController::check(
                        &jmp_vm::stack::current_access_context(),
                        &demand,
                    )
                    .is_ok()
                });
                let callback = jmp_vm::stack::do_privileged(|| {
                    jmp_vm::stack::call_as("AppletCallback", applet_domain.clone(), || {
                        jmp_security::AccessController::check(
                            &jmp_vm::stack::current_access_context(),
                            &demand,
                        )
                        .is_ok()
                    })
                });
                (direct, via_privileged, callback)
            })
        });
    table.rowd(&[
        "Font (trusted) called BY applet reads font file directly".to_string(),
        format!("allowed: {direct} (applet frame poisons the stack)"),
    ]);
    table.rowd(&[
        "Font asserts doPrivileged, then reads".to_string(),
        format!("allowed: {via_privileged} (privilege asserted for Font's own work)"),
    ]);
    table.rowd(&[
        "privileged Font calls INTO applet callback, callback reads".to_string(),
        format!("allowed: {callback} (privilege lost on calling down — no luring)"),
    ]);

    // (c) Thread-access ancestor rule across applications.
    register_app(&rt, "sleepyd", |_| {
        jmp_vm::thread::sleep(std::time::Duration::from_secs(600))
    });
    let victim_app = rt.launch_as("bob", "sleepyd", &[]).unwrap();
    static INTERRUPT_DENIED: AtomicUsize = AtomicUsize::new(0);
    let victim_for_probe = victim_app.clone();
    rt.vm()
        .material()
        .register(
            jmp_vm::ClassDef::builder("interruptor")
                .main(move |_| {
                    let vm = jmp_vm::Vm::current().unwrap();
                    let victim_thread = victim_for_probe.threads().into_iter().next().unwrap();
                    let untrusted = Arc::new(jmp_security::ProtectionDomain::untrusted(
                        jmp_security::CodeSource::remote("http://evil/x"),
                    ));
                    let result = jmp_vm::stack::call_as("Evil", untrusted, || {
                        vm.interrupt_thread(&victim_thread)
                    });
                    if result.is_err() {
                        INTERRUPT_DENIED.fetch_add(1, Ordering::SeqCst);
                    }
                    Ok(())
                })
                .build(),
            jmp_security::CodeSource::local("file:/apps/interruptor"),
        )
        .unwrap();
    rt.launch_as("alice", "interruptor", &[])
        .unwrap()
        .wait_for()
        .unwrap();
    table.rowd(&[
        "untrusted code interrupts a thread of ANOTHER application".to_string(),
        format!(
            "denied by ancestor rule: {}",
            INTERRUPT_DENIED.load(Ordering::SeqCst) == 1
        ),
    ]);
    victim_app.stop(0).unwrap();
    table.note("shape: app SM consulted 0 times; direct read false, doPrivileged read true,");
    table.note("callback read false; foreign interrupt denied.");
    rt.shutdown();
    vec![table]
}
