//! E14: data-plane throughput — the batched/coalescing event queue and the
//! ring-buffer pipe against in-run emulations of the seed algorithms (a
//! `VecDeque<u8>` pipe and a one-event-per-lock queue, both re-checking on
//! 5 ms [`BLOCK_POLL`] ticks instead of blocking on a notification).
//!
//! Three tables:
//!
//! * **E14a** — pipe MB/s, seed emulation vs ring pipe, same chunk size and
//!   capacity, same run.
//! * **E14b** — events/sec through the queue with a fixed per-delivered
//!   "repaint" cost, seed emulation vs `push_batch`/`drain` + coalescing.
//! * **E14c** — idle wakeups over a fixed window: the polling loop vs a
//!   parked [`EventQueue`] consumer, plus the live runtime's watchdog rows
//!   showing its blocked helpers as *parked*, not stalled.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use jmp_awt::{Event, EventKind, EventQueue, WindowId};
use jmp_vm::io::pipe;
use jmp_vm::thread::BLOCK_POLL;
use parking_lot::{Condvar, Mutex};

use crate::harness::standard_runtime;
use crate::table::Table;

/// Chunk size both pipe variants write and read with.
const PIPE_CHUNK: usize = 4 * 1024;
/// Pipe capacity for both variants.
const PIPE_CAPACITY: usize = 16 * 1024;
/// Bytes pushed through the seed-emulation pipe (polls make it slow).
const LEGACY_PIPE_BYTES: usize = 1024 * 1024;
/// Bytes pushed through the ring pipe.
const RING_PIPE_BYTES: usize = 8 * 1024 * 1024;

/// Events injected per queue variant.
const EVENT_TOTAL: usize = 100_000;
/// Burst length: consecutive paints for one window (coalescible).
const EVENT_BURST: usize = 50;
/// Windows the bursts cycle over.
const EVENT_WINDOWS: u64 = 4;
/// Consumer batch size for the new queue (the toolkit's dispatch batch).
const DRAIN_BATCH: usize = 64;

/// How long the idle-wakeup probes sit with nothing to do.
const IDLE_WINDOW: Duration = Duration::from_millis(100);

fn ok(flag: bool) -> &'static str {
    if flag {
        "ok"
    } else {
        "FAILED"
    }
}

// ---------------------------------------------------------------------------
// Seed emulations. Both re-check state on a BLOCK_POLL (5 ms) tick with no
// notification from the other side — the pre-change idle behaviour this PR
// removed — and move data one element per loop step.
// ---------------------------------------------------------------------------

struct LegacyPipe {
    state: Mutex<(VecDeque<u8>, bool)>,
    tick: Condvar,
    capacity: usize,
}

impl LegacyPipe {
    fn new(capacity: usize) -> Arc<LegacyPipe> {
        Arc::new(LegacyPipe {
            state: Mutex::new((VecDeque::new(), false)),
            tick: Condvar::new(),
            capacity,
        })
    }

    fn write_all(&self, data: &[u8]) {
        let mut offset = 0;
        while offset < data.len() {
            let mut state = self.state.lock();
            while state.0.len() < self.capacity && offset < data.len() {
                state.0.push_back(data[offset]);
                offset += 1;
            }
            if offset < data.len() {
                self.tick.wait_for(&mut state, BLOCK_POLL);
            }
        }
    }

    fn read(&self, buf: &mut [u8]) -> usize {
        loop {
            let mut state = self.state.lock();
            if !state.0.is_empty() {
                let mut n = 0;
                while n < buf.len() {
                    match state.0.pop_front() {
                        Some(byte) => {
                            buf[n] = byte;
                            n += 1;
                        }
                        None => break,
                    }
                }
                return n;
            }
            if state.1 {
                return 0;
            }
            self.tick.wait_for(&mut state, BLOCK_POLL);
        }
    }

    fn close(&self) {
        self.state.lock().1 = true;
    }
}

struct LegacyQueue {
    state: Mutex<(VecDeque<Event>, bool)>,
    tick: Condvar,
}

impl LegacyQueue {
    fn new() -> Arc<LegacyQueue> {
        Arc::new(LegacyQueue {
            state: Mutex::new((VecDeque::new(), false)),
            tick: Condvar::new(),
        })
    }

    fn push(&self, event: Event) {
        self.state.lock().0.push_back(event);
    }

    fn pop(&self) -> Option<Event> {
        loop {
            let mut state = self.state.lock();
            if let Some(event) = state.0.pop_front() {
                return Some(event);
            }
            if state.1 {
                return None;
            }
            self.tick.wait_for(&mut state, BLOCK_POLL);
        }
    }

    fn close(&self) {
        self.state.lock().1 = true;
    }
}

// ---------------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------------

/// Pushes `total` bytes through the seed-emulation pipe; returns MB/s.
fn legacy_pipe_mbps(total: usize) -> f64 {
    let pipe = LegacyPipe::new(PIPE_CAPACITY);
    let writer = Arc::clone(&pipe);
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        let chunk = vec![0xa5u8; PIPE_CHUNK];
        let mut sent = 0;
        while sent < total {
            let n = PIPE_CHUNK.min(total - sent);
            writer.write_all(&chunk[..n]);
            sent += n;
        }
        writer.close();
    });
    let mut buf = vec![0u8; PIPE_CHUNK];
    let mut received = 0;
    loop {
        let n = pipe.read(&mut buf);
        if n == 0 {
            break;
        }
        received += n;
    }
    producer.join().expect("legacy pipe writer");
    assert_eq!(received, total, "legacy pipe delivers every byte");
    mbps(total, start.elapsed())
}

/// Pushes `total` bytes through the ring pipe; returns MB/s.
fn ring_pipe_mbps(total: usize) -> f64 {
    let (writer, reader) = pipe(PIPE_CAPACITY);
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        let chunk = vec![0xa5u8; PIPE_CHUNK];
        let mut sent = 0;
        while sent < total {
            let n = PIPE_CHUNK.min(total - sent);
            writer.write_all(&chunk[..n]).expect("ring pipe write");
            sent += n;
        }
        writer.close();
    });
    let mut buf = vec![0u8; PIPE_CHUNK];
    let mut received = 0;
    loop {
        let n = reader.read(&mut buf).expect("ring pipe read");
        if n == 0 {
            break;
        }
        received += n;
    }
    producer.join().expect("ring pipe writer");
    assert_eq!(received, total, "ring pipe delivers every byte");
    mbps(total, start.elapsed())
}

fn mbps(bytes: usize, elapsed: Duration) -> f64 {
    (bytes as f64 / (1024.0 * 1024.0)) / elapsed.as_secs_f64()
}

/// The fixed per-delivered-event cost: a stand-in repaint touching a small
/// back-buffer. Coalescing pays off exactly because this work is skipped
/// for merged events.
fn handle_event(event: &Event, scratch: &mut [u8]) -> u64 {
    let seed = event.window.0 as u8;
    let mut acc = 0u64;
    for (i, byte) in scratch.iter_mut().enumerate() {
        *byte = byte.wrapping_add(seed ^ i as u8);
        acc = acc.wrapping_add(u64::from(*byte));
    }
    std::hint::black_box(acc)
}

/// The E14b event stream: bursts of consecutive paints, cycling windows
/// between bursts (so only within-burst events may merge).
fn event_stream() -> Vec<Event> {
    (0..EVENT_TOTAL)
        .map(|i| {
            let window = WindowId(1 + (i / EVENT_BURST) as u64 % EVENT_WINDOWS);
            Event::new(window, None, EventKind::Paint)
        })
        .collect()
}

/// One event per lock on both sides, no coalescing; returns
/// (events/sec over injected events, delivered count).
fn legacy_events_per_sec() -> (f64, u64) {
    let queue = LegacyQueue::new();
    let producer_queue = Arc::clone(&queue);
    let events = event_stream();
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        for event in events {
            producer_queue.push(event);
        }
        producer_queue.close();
    });
    let mut scratch = vec![0u8; 256];
    let mut delivered = 0u64;
    while let Some(event) = queue.pop() {
        handle_event(&event, &mut scratch);
        delivered += 1;
    }
    producer.join().expect("legacy queue producer");
    assert_eq!(delivered as usize, EVENT_TOTAL);
    (
        EVENT_TOTAL as f64 / start.elapsed().as_secs_f64(),
        delivered,
    )
}

/// Batched push + batched drain + coalescing; returns
/// (events/sec over injected events, delivered count, merged count).
fn batched_events_per_sec() -> (f64, u64, u64) {
    let queue = EventQueue::new();
    let producer_queue = queue.clone();
    let events = event_stream();
    let start = Instant::now();
    let producer = std::thread::spawn(move || {
        let mut events = events;
        for burst in events.chunks_mut(EVENT_BURST) {
            producer_queue.push_batch(burst.iter().cloned());
        }
        producer_queue.close();
    });
    let mut scratch = vec![0u8; 256];
    let mut delivered = 0u64;
    loop {
        let batch = queue.drain(DRAIN_BATCH).expect("drain");
        if batch.is_empty() {
            break;
        }
        for event in &batch {
            handle_event(event, &mut scratch);
            delivered += 1;
        }
    }
    producer.join().expect("batched queue producer");
    let merged = queue.total_coalesced();
    assert_eq!(delivered + merged, EVENT_TOTAL as u64);
    (
        EVENT_TOTAL as f64 / start.elapsed().as_secs_f64(),
        delivered,
        merged,
    )
}

/// Counts wakeups of a seed-style poll loop over [`IDLE_WINDOW`] with
/// nothing to do.
fn legacy_idle_wakeups() -> u64 {
    let queue = LegacyQueue::new();
    let mut wakeups = 0u64;
    let start = Instant::now();
    while start.elapsed() < IDLE_WINDOW {
        let mut state = queue.state.lock();
        if state.0.pop_front().is_some() || state.1 {
            break;
        }
        queue.tick.wait_for(&mut state, BLOCK_POLL);
        wakeups += 1;
    }
    wakeups
}

/// Parks a consumer on an empty [`EventQueue`] for [`IDLE_WINDOW`] and
/// returns the queue's idle-wakeup count (expected: zero).
fn parked_idle_wakeups() -> u64 {
    let queue = EventQueue::new();
    let consumer_queue = queue.clone();
    let consumer =
        std::thread::spawn(
            move || {
                while !consumer_queue.drain(DRAIN_BATCH).expect("drain").is_empty() {}
            },
        );
    std::thread::sleep(IDLE_WINDOW);
    queue.close();
    consumer.join().expect("parked consumer");
    queue.idle_wakeups()
}

// ---------------------------------------------------------------------------
// The experiment.
// ---------------------------------------------------------------------------

/// Machine-readable summary of the E14 run (for `--bench-json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct E14Summary {
    /// Seed-emulation pipe throughput, MB/s.
    pub legacy_pipe_mbps: f64,
    /// Ring pipe throughput, MB/s.
    pub ring_pipe_mbps: f64,
    /// Ring / legacy pipe speedup.
    pub pipe_speedup: f64,
    /// Seed-emulation queue throughput, injected events/sec.
    pub legacy_events_per_sec: f64,
    /// Batched+coalescing queue throughput, injected events/sec.
    pub batched_events_per_sec: f64,
    /// Batched / legacy events speedup.
    pub events_speedup: f64,
    /// Events merged away by coalescing in the batched run.
    pub events_coalesced: u64,
    /// Wakeups of the 5 ms poll loop over the idle window.
    pub legacy_idle_wakeups: u64,
    /// Idle wakeups of a parked queue consumer over the same window.
    pub parked_idle_wakeups: u64,
    /// Runtime helper heartbeats reported as parked while blocked.
    pub parked_watchdog_rows: usize,
}

/// Runs E14 and returns both the tables and the scalar summary.
pub fn e14_data_plane_full() -> (Vec<Table>, E14Summary) {
    // E14a: pipe throughput. The legacy emulation runs once (its polls
    // dominate); the ring pipe takes the best of three passes.
    let legacy_mbps = legacy_pipe_mbps(LEGACY_PIPE_BYTES);
    let ring_mbps = (0..3)
        .map(|_| ring_pipe_mbps(RING_PIPE_BYTES))
        .fold(0.0f64, f64::max);
    let pipe_speedup = ring_mbps / legacy_mbps;

    let mut e14a = Table::new(
        "E14a",
        "pipe throughput (seed emulation vs ring buffer, same run)",
        &[
            "pipe", "bytes", "chunk", "capacity", "MB/s", "speedup", "verdict",
        ],
    );
    e14a.rowd(&[
        "seed emulation (VecDeque + 5ms poll)".to_string(),
        format!("{}", LEGACY_PIPE_BYTES),
        format!("{PIPE_CHUNK}"),
        format!("{PIPE_CAPACITY}"),
        format!("{legacy_mbps:.2}"),
        "1.0x".to_string(),
        "baseline".to_string(),
    ]);
    e14a.rowd(&[
        "ring buffer (blocking, ≤2 memcpy)".to_string(),
        format!("{}", RING_PIPE_BYTES),
        format!("{PIPE_CHUNK}"),
        format!("{PIPE_CAPACITY}"),
        format!("{ring_mbps:.2}"),
        format!("{pipe_speedup:.1}x"),
        ok(pipe_speedup >= 3.0).to_string(),
    ]);
    e14a.note(
        "both variants move writer->reader across threads with the same chunk \
         and capacity; MB/s normalises the differing totals",
    );
    e14a.note("acceptance: ring pipe >= 3x the seed emulation");

    // E14b: event throughput with a fixed per-delivered repaint cost.
    let (legacy_eps, legacy_delivered) = legacy_events_per_sec();
    let (batched_eps, delivered, merged) = batched_events_per_sec();
    let events_speedup = batched_eps / legacy_eps;

    let mut e14b = Table::new(
        "E14b",
        "event throughput (one-per-lock vs batched + coalescing, same run)",
        &[
            "queue",
            "injected",
            "delivered",
            "merged",
            "events/s",
            "speedup",
            "verdict",
        ],
    );
    e14b.rowd(&[
        "seed emulation (lock per event, 5ms poll)".to_string(),
        format!("{EVENT_TOTAL}"),
        format!("{legacy_delivered}"),
        "0".to_string(),
        format!("{legacy_eps:.0}"),
        "1.0x".to_string(),
        "baseline".to_string(),
    ]);
    e14b.rowd(&[
        format!("push_batch + drain({DRAIN_BATCH}) + coalescing"),
        format!("{EVENT_TOTAL}"),
        format!("{delivered}"),
        format!("{merged}"),
        format!("{batched_eps:.0}"),
        format!("{events_speedup:.1}x"),
        ok(events_speedup >= 2.0).to_string(),
    ]);
    e14b.note(format!(
        "stream: bursts of {EVENT_BURST} consecutive paints cycling {EVENT_WINDOWS} windows; \
         each delivered event pays a fixed repaint cost, so merged events are work saved"
    ));
    e14b.note("acceptance: batched queue >= 2x the seed emulation (injected events/sec)");

    // E14c: idle wakeups, plus the live runtime's parked watchdog rows.
    let poll_wakeups = legacy_idle_wakeups();
    let parked_wakeups = parked_idle_wakeups();
    let rt = standard_runtime(None);
    // Give the runtime's helper threads (e.g. the app reaper) a moment to
    // reach their blocking waits and park their heartbeats.
    std::thread::sleep(Duration::from_millis(30));
    let rows = jmp_core::obs::watchdog_rows(&rt).expect("watchdog rows");
    let parked_rows = rows.iter().filter(|r| r.parked && !r.stalled).count();
    rt.shutdown();

    let mut e14c = Table::new(
        "E14c",
        "idle cost (wakeups over a 100ms idle window)",
        &["path", "wakeups", "verdict"],
    );
    e14c.rowd(&[
        "seed emulation (5ms poll tick)".to_string(),
        format!("{poll_wakeups}"),
        ok(poll_wakeups >= 10).to_string(),
    ]);
    e14c.rowd(&[
        "event queue consumer (parked)".to_string(),
        format!("{parked_wakeups}"),
        ok(parked_wakeups == 0).to_string(),
    ]);
    e14c.rowd(&[
        "runtime helpers (watchdog rows parked)".to_string(),
        format!("{parked_rows}"),
        ok(parked_rows >= 1).to_string(),
    ]);
    e14c.note(
        "a parked heartbeat tells the watchdog the thread is idle by design, \
         so zero wakeups does not read as a stall",
    );
    e14c.note("acceptance: zero periodic wakeups for an idle queue consumer");

    let summary = E14Summary {
        legacy_pipe_mbps: legacy_mbps,
        ring_pipe_mbps: ring_mbps,
        pipe_speedup,
        legacy_events_per_sec: legacy_eps,
        batched_events_per_sec: batched_eps,
        events_speedup,
        events_coalesced: merged,
        legacy_idle_wakeups: poll_wakeups,
        parked_idle_wakeups: parked_wakeups,
        parked_watchdog_rows: parked_rows,
    };
    (vec![e14a, e14b, e14c], summary)
}

/// Runs E14 (tables only).
pub fn e14_data_plane() -> Vec<Table> {
    e14_data_plane_full().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_meets_the_acceptance_thresholds() {
        let _serial = crate::harness::latency_test_guard();
        let (tables, summary) = e14_data_plane_full();
        assert_eq!(tables.len(), 3);
        assert!(
            !tables
                .iter()
                .any(|t| t.rows.iter().flatten().any(|c| c.contains("FAILED"))),
            "all verdicts ok: {tables:#?}"
        );
        assert!(
            summary.pipe_speedup >= 3.0,
            "pipe speedup {:.1}x",
            summary.pipe_speedup
        );
        assert!(
            summary.events_speedup >= 2.0,
            "events speedup {:.1}x",
            summary.events_speedup
        );
        assert_eq!(summary.parked_idle_wakeups, 0);
        assert!(summary.events_coalesced > 0);
    }
}
