//! Result tables: every experiment renders one or more of these, aligned
//! for the terminal and serializable for EXPERIMENTS.md bookkeeping.

use std::fmt;

/// A titled table of string cells.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table {
    /// Table identifier, e.g. `E5a`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (shape expectations, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Table {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of displayable cells.
    pub fn rowd<D: fmt::Display>(&mut self, cells: &[D]) -> &mut Table {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Adds a note line.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Table {
        self.notes.push(text.into());
        self
    }

    /// Renders aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_text())
    }
}

/// Formats nanoseconds compactly.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// Percentile of a sorted-or-not sample set (nearest-rank).
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T1", "demo", &["name", "value"]);
        t.rowd(&["short", "1"]);
        t.rowd(&["a-much-longer-name", "22"]);
        t.note("a note");
        let text = t.to_text();
        assert!(text.contains("== T1: demo =="));
        assert!(text.contains("a-much-longer-name  22"));
        assert!(text.contains("note: a note"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("T", "t", &["a", "b"]);
        t.row(&["only-one".to_string()]);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500.0), "500ns");
        assert_eq!(fmt_ns(1_500.0), "1.50us");
        assert_eq!(fmt_ns(2_000_000.0), "2.00ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00s");
    }

    #[test]
    fn percentiles() {
        let mut samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&mut samples, 50.0), 50.0);
        assert_eq!(percentile(&mut samples, 99.0), 99.0);
        assert_eq!(percentile(&mut samples, 100.0), 100.0);
        let mut one = vec![7.0];
        assert_eq!(percentile(&mut one, 50.0), 7.0);
    }
}
