//! E11: the observability hub end to end — a scripted session generates
//! security checks, a denial, pipe traffic and application lifecycle
//! events, and the hub's snapshot is checked (and exported by
//! `experiments --json`).

use std::time::Duration;

use jmp_obs::{HubSnapshot, ProfileReport};
use jmp_shell::spawn_login_session;

use crate::harness::standard_runtime;
use crate::table::Table;

/// Runs the scripted session and samples the hub while the session is
/// still live (reaping an application drops its per-app registry, so the
/// snapshot must be taken before `quit`).
fn scripted_session() -> (Vec<Table>, HubSnapshot, ProfileReport) {
    let rt = standard_runtime(None);
    let bob = rt.users().lookup("bob").expect("bob exists");
    rt.vfs()
        .write("/home/bob/secret.txt", b"s3cr3t", bob.id())
        .expect("bob's file lands");

    let (terminal, session) = spawn_login_session(&rt).expect("session starts");
    for line in [
        "alice",
        "apw",
        "echo pipe-payload | wc",
        "cat /home/bob/secret.txt",
        "top",
    ] {
        terminal.type_line(line).expect("typing works");
    }
    // `top` is alice's last command and she is denied; once its refusal is
    // on screen every earlier command has finished too.
    let settled = jmp_awt::Toolkit::wait_until(Duration::from_secs(10), || {
        terminal.screen_text().contains("top: ")
    });
    assert!(settled, "session script did not settle");

    // The harness thread is trusted (empty stack), so the gated read-out
    // grants here even though alice was just refused the same call.
    let snapshot = jmp_core::obs::vm_snapshot(&rt).expect("harness may read metrics");
    let rollup = jmp_core::obs::vm_rollup(&rt).expect("harness may read metrics");
    let audit = jmp_core::obs::audit_records(&rt, None, None).expect("harness may read audit");
    let rows = jmp_core::obs::top_rows(&rt).expect("harness may read top");
    let profile = jmp_core::obs::profile_report(&rt).expect("harness may read the profile");

    terminal.type_line("quit").expect("typing works");
    terminal.type_eof();
    session.wait_for().expect("session ends");
    rt.shutdown();

    let counter = |name: &str| rollup.counters.get(name).copied().unwrap_or(0);
    let mut table = Table::new(
        "E11",
        "observability — one audited session, hub totals",
        &["check", "outcome"],
    );
    let checks: &[(&str, bool)] = &[
        ("security checks counted", counter("security.checks") > 0),
        ("denials counted", counter("security.denied") > 0),
        ("applications execed", counter("apps.execed") > 0),
        ("pipe bytes charged", counter("pipe.bytes") > 0),
        ("classes defined", counter("classes.defined") > 0),
        ("check latency histogram populated", {
            rollup
                .histograms
                .get("security.check_ns")
                .is_some_and(|h| h.count > 0)
        }),
        ("events published", snapshot.events_published > 0),
        (
            "alice's denied file read audited",
            audit
                .iter()
                .any(|r| r.user.as_deref() == Some("alice") && r.permission.contains("/home/bob")),
        ),
        (
            "alice's denied top audited",
            audit.iter().any(|r| {
                r.user.as_deref() == Some("alice") && r.permission.contains("readMetrics")
            }),
        ),
        (
            "per-application registries live",
            !snapshot.apps.is_empty() && rows.iter().any(|r| r.name == "shell"),
        ),
    ];
    for (name, ok) in checks {
        table.rowd(&[
            (*name).to_string(),
            if *ok { "ok" } else { "FAILED" }.to_string(),
        ]);
    }
    table.note(format!(
        "rollup: checks={} denied={} execed={} pipe.bytes={} events={} audited={}",
        counter("security.checks"),
        counter("security.denied"),
        counter("apps.execed"),
        counter("pipe.bytes"),
        snapshot.events_published,
        snapshot.audit_total,
    ));
    (vec![table], snapshot, profile)
}

/// E11: the experiment tables.
pub fn e11_observability() -> Vec<Table> {
    scripted_session().0
}

/// The metrics snapshot and profiler report `experiments --json` embeds
/// alongside the tables.
pub fn session_snapshot() -> (HubSnapshot, ProfileReport) {
    let (_, snapshot, profile) = scripted_session();
    (snapshot, profile)
}
