//! E13: the access-control fast path — what domain interning, the indexed
//! policy, and the VM-wide decision cache buy on the §5 chokepoint.
//!
//! Three tables: cold-vs-warm per-check latency (the cache's headline
//! number), the hit rate a real multi-application workload achieves, and
//! what a mid-workload policy reload costs (invalidation plus the first
//! cold re-check) — together with the correctness rows that make the cache
//! trustworthy: a grant added by the reload is honored and a revoked grant
//! is denied on the very next check.

use std::sync::Arc;
use std::time::Instant;

use jmp_security::{
    interned_domain_count, CodeSource, FileActions, Permission, Policy, ProtectionDomain,
};
use jmp_vm::{stack, Vm};

use crate::harness::standard_runtime;
use crate::table::{fmt_ns, Table};

/// Cold iterations (each preceded by a cache flush) and warm iterations,
/// per measurement pass; the best of [`PASSES`] passes is reported
/// (minimum-of-passes is the standard noise-robust latency estimator).
const COLD_ITERS: u32 = 2_000;
const WARM_ITERS: u32 = 50_000;
const PASSES: usize = 3;

/// Runs `f` under a stack of `domains` (oldest first), like nested
/// application frames. Shared with E17, which re-measures the same warm
/// path with the demand ledger toggled.
pub(crate) fn with_frames<R>(domains: &[Arc<ProtectionDomain>], f: impl FnOnce() -> R) -> R {
    match domains.split_first() {
        None => f(),
        Some((domain, rest)) => {
            stack::call_as("Bench", Arc::clone(domain), || with_frames(rest, f))
        }
    }
}

/// The benchmark policy: a spread of file grants so the cold walk exercises
/// the permission index, all covering the demand used in the measurement.
pub(crate) fn bench_policy() -> Policy {
    let mut policy = Policy::new();
    policy.grant_code(
        CodeSource::local("file:/apps/-"),
        vec![
            Permission::file("/data/-", FileActions::READ),
            Permission::file("/tmp/-", FileActions::ALL),
            Permission::file("/etc/app.conf", FileActions::READ),
            Permission::runtime("queuePrintJob"),
        ],
    );
    policy
}

/// A stack of `n` distinct application domains resolved against `policy`.
pub(crate) fn bench_domains(vm: &Vm, n: usize) -> Vec<Arc<ProtectionDomain>> {
    (0..n)
        .map(|i| {
            let source = CodeSource::local(format!("file:/apps/bench{i}"));
            let permissions = vm.policy().permissions_for(&source);
            Arc::new(ProtectionDomain::new(source, permissions))
        })
        .collect()
}

/// E13 table 1: per-check latency with the decision cache cold (flushed
/// before every check) and warm, across stack depths.
fn latency_table() -> Table {
    let mut table = Table::new(
        "E13a",
        "access fast path — per-check latency, cold vs warm decision cache",
        &[
            "stack depth",
            "cold (full walk)",
            "warm (cached)",
            "speedup",
        ],
    );
    let demand = Permission::file("/data/report.txt", FileActions::READ);
    for depth in [1usize, 4, 8, 16, 24] {
        let vm = Vm::builder().policy(bench_policy()).build();
        let domains = bench_domains(&vm, depth);
        let (cold_ns, warm_ns) = with_frames(&domains, || {
            // Prime once so lazy structures (permission indexes, interned
            // ids) are built before either measurement.
            vm.access_check(&demand).expect("policy grants the demand");
            let mut cold_ns = f64::INFINITY;
            let mut warm_ns = f64::INFINITY;
            for _ in 0..PASSES {
                let mut cold_total = 0u64;
                for _ in 0..COLD_ITERS {
                    vm.flush_access_cache();
                    let start = Instant::now();
                    vm.access_check(&demand).expect("granted");
                    cold_total += start.elapsed().as_nanos() as u64;
                }
                cold_ns = cold_ns.min(cold_total as f64 / f64::from(COLD_ITERS));
                vm.access_check(&demand).expect("granted"); // re-prime
                let start = Instant::now();
                for _ in 0..WARM_ITERS {
                    vm.access_check(&demand).expect("granted");
                }
                let warm_total = start.elapsed().as_nanos() as u64;
                warm_ns = warm_ns.min(warm_total as f64 / f64::from(WARM_ITERS));
            }
            (cold_ns, warm_ns)
        });
        table.rowd(&[
            depth.to_string(),
            fmt_ns(cold_ns),
            fmt_ns(warm_ns),
            format!("{:.1}x", cold_ns / warm_ns),
        ]);
    }
    table.note("cold = decision cache flushed before every check (context snapshot +");
    table.note("full dedup walk over the indexed policy); warm = generation-memoized");
    table.note("fingerprint probe + one cache lookup. shape: warm is O(1) — flat in");
    table.note("stack depth — so the speedup grows linearly with depth, passing 5x");
    table.note("around depth 8 and 10x by depth 24. the truly cold first-check-after-");
    table.note("reload (E13c) is costlier still: the flushed number re-uses warm");
    table.note("per-domain memos and indexes.");
    table.note(format!(
        "interned protection domains process-wide: {}",
        interned_domain_count()
    ));
    table
}

/// E13 table 2: the hit rate a real workload achieves — the standard
/// two-user runtime launching a batch of applications.
fn hit_rate_table() -> Table {
    let rt = standard_runtime(None);
    for _ in 0..8 {
        let app = rt.launch_as("alice", "echo", &["warm"]).expect("launches");
        app.wait_for().expect("echo exits");
    }
    let rollup = jmp_core::obs::vm_rollup(&rt).expect("harness may read metrics");
    rt.shutdown();
    let counter = |name: &str| rollup.counters.get(name).copied().unwrap_or(0);
    let (hits, misses, bypass) = (
        counter("access.cache.hits"),
        counter("access.cache.misses"),
        counter("access.cache.bypass"),
    );
    let eligible = hits + misses;
    let rate = if eligible == 0 {
        0.0
    } else {
        100.0 * hits as f64 / eligible as f64
    };
    let mut table = Table::new(
        "E13b",
        "access fast path — cache hit rate, 8 echo launches by alice",
        &["counter", "value"],
    );
    table.rowd(&["access.cache.hits", hits.to_string().as_str()]);
    table.rowd(&["access.cache.misses", misses.to_string().as_str()]);
    table.rowd(&["access.cache.bypass", bypass.to_string().as_str()]);
    table.rowd(&[
        "hit rate (hits / (hits+misses))",
        format!("{rate:.0}%").as_str(),
    ]);
    table.note("bypass counts trusted empty-stack checks and denials (denials always");
    table.note("re-walk so the audit record names the exact refusing domain). shape:");
    table.note("repeated launches of the same application re-use cached decisions.");
    table
}

/// E13 table 3: a mid-workload policy reload — invalidation cost, the first
/// cold re-check, and the correctness rows (new grant honored, revoked
/// grant denied) driven through the user-grant path, which consults the
/// live policy on every walk.
fn reload_table() -> Table {
    let mut before = bench_policy();
    before.grant_user("alice", vec![Permission::file("/a", FileActions::READ)]);
    let mut after = bench_policy();
    after.grant_user("alice", vec![Permission::file("/b", FileActions::READ)]);

    let vm = Vm::builder().policy(before).build();
    vm.set_user_resolver(Arc::new(|| Some("alice".to_string())))
        .expect("trusted harness installs the resolver");
    // One exercising domain: code-source grants stay fixed, user grants
    // track the live policy.
    let source = CodeSource::local("file:/apps/editor");
    let mut permissions = vm.policy().permissions_for(&source);
    permissions.add(Permission::exercise_user_permissions());
    let editor = Arc::new(ProtectionDomain::new(source, permissions));

    let read_a = Permission::file("/a", FileActions::READ);
    let read_b = Permission::file("/b", FileActions::READ);
    let steady = Permission::file("/data/report.txt", FileActions::READ);

    let mut table = Table::new(
        "E13c",
        "access fast path — mid-workload policy reload",
        &["step", "result"],
    );
    stack::call_as("Editor", Arc::clone(&editor), || {
        vm.access_check(&read_a).expect("granted before reload");
        vm.access_check(&steady).expect("granted before reload");
        // Warm both decisions.
        for _ in 0..100 {
            vm.access_check(&steady).expect("granted");
        }
    });
    // The reload happens on the trusted (empty-stack) harness thread, like
    // an administrator re-reading the policy file mid-workload.
    let start = Instant::now();
    vm.set_policy(after).expect("trusted harness reloads");
    let reload_ns = start.elapsed().as_nanos() as f64;
    table.rowd(&[
        "set_policy (parse-free swap + epoch bump)",
        fmt_ns(reload_ns).as_str(),
    ]);
    stack::call_as("Editor", editor, || {
        let start = Instant::now();
        let first = vm.access_check(&steady);
        let cold_ns = start.elapsed().as_nanos() as f64;
        table.rowd(&[
            "first post-reload check (cold re-derive)",
            format!("{} ({})", ok(first.is_ok()), fmt_ns(cold_ns)).as_str(),
        ]);
        let start = Instant::now();
        let second = vm.access_check(&steady);
        let warm_ns = start.elapsed().as_nanos() as f64;
        table.rowd(&[
            "second post-reload check (warm again)",
            format!("{} ({})", ok(second.is_ok()), fmt_ns(warm_ns)).as_str(),
        ]);
        table.rowd(&[
            "grant added by reload honored (/b)",
            ok(vm.access_check(&read_b).is_ok()),
        ]);
        table.rowd(&[
            "grant revoked by reload denied (/a)",
            ok(vm.access_check(&read_a).is_err()),
        ]);
    });
    let metrics = vm.obs().vm_metrics();
    let invalidations = metrics.counter("access.cache.invalidations").get();
    table.rowd(&[
        "access.cache.invalidations",
        invalidations.to_string().as_str(),
    ]);
    table.note("the reload is one Arc swap plus an epoch bump — no sweep over cached");
    table.note("entries; every stale decision dies at once and the next check of each");
    table.note("(context, demand, user) triple re-derives under the new policy.");
    table
}

fn ok(flag: bool) -> &'static str {
    if flag {
        "ok"
    } else {
        "FAILED"
    }
}

/// E13: the experiment tables.
pub fn e13_access_fastpath() -> Vec<Table> {
    vec![latency_table(), hit_rate_table(), reload_table()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_runs_and_warm_beats_cold() {
        let _serial = crate::harness::latency_test_guard();
        let tables = e13_access_fastpath();
        assert_eq!(tables.len(), 3);
        // Every functional row in the reload table must be ok.
        assert!(
            !tables
                .iter()
                .any(|t| t.rows.iter().flatten().any(|c| c.contains("FAILED"))),
            "E13 functional rows failed: {tables:?}"
        );
    }
}
