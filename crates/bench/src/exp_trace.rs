//! E12: tracing overhead — the flight recorder on vs off on the two hot
//! paths it instruments (security access checks and AWT event dispatch) —
//! plus the Chrome `trace_event` export of a scripted scenario
//! (`experiments --chrome-trace <file>`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use jmp_awt::{DispatchMode, Toolkit};
use jmp_security::Permission;

use crate::harness::{register_app, standard_runtime};
use crate::table::{fmt_ns, Table};

/// Granted permission checks per measurement.
const CHECKS: u64 = 20_000;
/// Events pushed through the dispatcher per measurement.
const EVENTS: usize = 400;

static CHECK_NS: AtomicU64 = AtomicU64::new(0);
static DISPATCH_NS: AtomicU64 = AtomicU64::new(0);
static DELIVERED: AtomicUsize = AtomicUsize::new(0);
static SAMPLE_CLICKS: AtomicUsize = AtomicUsize::new(0);
static SAMPLE_DONE: AtomicUsize = AtomicUsize::new(0);

/// Per-check cost of `Vm::check_permission` from an application thread
/// (which carries a trace context, so the recorder-on path really records).
fn measured_check_ns(tracing: bool) -> f64 {
    let rt = standard_runtime(None);
    rt.vm().obs().recorder().set_enabled(tracing);
    CHECK_NS.store(0, Ordering::SeqCst);
    register_app(&rt, "checker", |_| {
        let rt = jmp_core::MpRuntime::current().expect("on-runtime");
        let permission = Permission::runtime("execApplication");
        let start = Instant::now();
        for _ in 0..CHECKS {
            rt.vm().check_permission(&permission)?;
        }
        CHECK_NS.store(start.elapsed().as_nanos() as u64, Ordering::SeqCst);
        Ok(())
    });
    rt.launch_as("alice", "checker", &[])
        .expect("checker launches")
        .wait_for()
        .expect("checker finishes");
    rt.shutdown();
    CHECK_NS.load(Ordering::SeqCst) as f64 / CHECKS as f64
}

/// Per-event cost of posting an action to our own window and having the
/// per-application dispatcher deliver it (queue hop + listener fan-out,
/// spanned when tracing is on).
fn measured_dispatch_ns(tracing: bool) -> f64 {
    let rt = standard_runtime(Some(DispatchMode::PerApplication));
    rt.vm().obs().recorder().set_enabled(tracing);
    DISPATCH_NS.store(0, Ordering::SeqCst);
    DELIVERED.store(0, Ordering::SeqCst);
    register_app(&rt, "pump", |_| {
        let window = jmp_core::gui::create_window("pump")?;
        let button = window.add_button("b");
        window.on_action(button, |_| {
            DELIVERED.fetch_add(1, Ordering::SeqCst);
        });
        let toolkit = jmp_core::gui::toolkit()?;
        let start = Instant::now();
        for _ in 0..EVENTS {
            toolkit.display().inject_action(window.id(), button)?;
        }
        assert!(Toolkit::wait_until(Duration::from_secs(30), || {
            DELIVERED.load(Ordering::SeqCst) == EVENTS
        }));
        DISPATCH_NS.store(start.elapsed().as_nanos() as u64, Ordering::SeqCst);
        // The per-application dispatcher keeps the group alive; park until
        // the harness stops us.
        jmp_vm::thread::sleep(Duration::from_secs(600))
    });
    let app = rt.launch_as("alice", "pump", &[]).expect("pump launches");
    assert!(Toolkit::wait_until(Duration::from_secs(60), || {
        DISPATCH_NS.load(Ordering::SeqCst) > 0
    }));
    app.stop(0).expect("pump stops");
    let _ = app.wait_for();
    rt.shutdown();
    DISPATCH_NS.load(Ordering::SeqCst) as f64 / EVENTS as f64
}

/// E12: the experiment table.
pub fn e12_trace_overhead() -> Vec<Table> {
    let mut table = Table::new(
        "E12",
        "tracing on vs off — per-op cost of the instrumented hot paths",
        &["path", "recorder off", "recorder on", "delta"],
    );
    type Measure = fn(bool) -> f64;
    let paths: [(&str, Measure); 2] = [
        ("granted access check", measured_check_ns),
        ("AWT post→dispatch", measured_dispatch_ns),
    ];
    for (name, measure) in paths {
        let off = measure(false);
        let on = measure(true);
        let pct = if off > 0.0 {
            (on / off - 1.0) * 100.0
        } else {
            0.0
        };
        table.rowd(&[
            name.to_string(),
            fmt_ns(off),
            fmt_ns(on),
            format!("{pct:+.1}%"),
        ]);
    }
    table.note("recorder off must cost ~one relaxed atomic load per span site;");
    table.note("recorder on pays one ring push (mutex + VecDeque) per span.");
    vec![table]
}

/// Runs a small scripted scenario — exec, a window action posted to the
/// application's own queue, and a pipe round-trip — and exports the flight
/// recorder's ring as Chrome `trace_event` JSON. The export spans at least
/// the exec, dispatch, and pipe categories, all under one trace id.
pub fn chrome_trace_sample() -> String {
    let rt = standard_runtime(Some(DispatchMode::PerApplication));
    SAMPLE_CLICKS.store(0, Ordering::SeqCst);
    SAMPLE_DONE.store(0, Ordering::SeqCst);
    register_app(&rt, "sample", |_| {
        let window = jmp_core::gui::create_window("sample")?;
        let button = window.add_button("go");
        window.on_action(button, |_| {
            SAMPLE_CLICKS.fetch_add(1, Ordering::SeqCst);
        });
        let toolkit = jmp_core::gui::toolkit()?;
        toolkit.display().inject_action(window.id(), button)?;
        assert!(Toolkit::wait_until(Duration::from_secs(10), || {
            SAMPLE_CLICKS.load(Ordering::SeqCst) == 1
        }));
        let (out, input) = jmp_core::pipes::make_pipe()?;
        out.write(b"sample-payload")?;
        let mut buf = [0u8; 32];
        input.read(&mut buf)?;
        SAMPLE_DONE.store(1, Ordering::SeqCst);
        jmp_vm::thread::sleep(Duration::from_secs(600))
    });
    let app = rt
        .launch_as("alice", "sample", &[])
        .expect("sample launches");
    assert!(Toolkit::wait_until(Duration::from_secs(30), || {
        SAMPLE_DONE.load(Ordering::SeqCst) == 1
    }));
    let json = rt.vm().obs().recorder().export_chrome_trace();
    app.stop(0).expect("sample stops");
    let _ = app.wait_for();
    rt.shutdown();
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_sample_covers_three_categories() {
        let json = chrome_trace_sample();
        let doc: serde_json::Value = serde_json::from_str(&json).expect("export is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(serde_json::Value::as_seq)
            .expect("traceEvents array")
            .to_vec();
        for category in ["exec", "dispatch", "pipe"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.get("cat").and_then(serde_json::Value::as_str) == Some(category)),
                "the sample covers the {category} category"
            );
        }
    }
}
