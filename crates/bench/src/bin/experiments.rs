//! Regenerates the experiment tables of EXPERIMENTS.md.
//!
//! ```text
//! experiments            # run everything
//! experiments e2 e6      # run selected experiments
//! experiments --json out.json e5a
//! experiments --chrome-trace trace.json e12
//! ```

use std::io::Write;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        if pos < args.len() {
            json_path = Some(args.remove(pos));
        } else {
            eprintln!("--json needs a file path");
            std::process::exit(2);
        }
    }
    let mut chrome_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--chrome-trace") {
        args.remove(pos);
        if pos < args.len() {
            chrome_path = Some(args.remove(pos));
        } else {
            eprintln!("--chrome-trace needs a file path");
            std::process::exit(2);
        }
    }
    let ids: Vec<String> = if args.is_empty() {
        jmp_bench::EXPERIMENT_IDS
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args
    };

    let mut all_tables = Vec::new();
    for id in &ids {
        match jmp_bench::run_experiment(id) {
            Some(tables) => {
                for table in tables {
                    println!("{table}");
                    all_tables.push(table);
                }
            }
            None => {
                eprintln!(
                    "unknown experiment {id:?}; known: {}",
                    jmp_bench::EXPERIMENT_IDS.join(", ")
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = json_path {
        // Alongside the tables, dump a metrics snapshot of the E11 scripted
        // session so the run is inspectable offline (hub counters,
        // histograms, event and audit totals).
        #[derive(serde::Serialize)]
        struct Run {
            tables: Vec<jmp_bench::table::Table>,
            metrics: jmp_obs::HubSnapshot,
        }
        let run = Run {
            tables: all_tables,
            metrics: jmp_bench::exp_obs::session_snapshot(),
        };
        let json = serde_json::to_string_pretty(&run).expect("tables serialize");
        let mut file = std::fs::File::create(&path).expect("create json output");
        file.write_all(json.as_bytes()).expect("write json output");
        eprintln!("wrote {path}");
    }

    if let Some(path) = chrome_path {
        // A Chrome trace_event export of the scripted trace scenario —
        // loadable in chrome://tracing or Perfetto.
        let json = jmp_bench::exp_trace::chrome_trace_sample();
        std::fs::write(&path, json).expect("write chrome trace output");
        eprintln!("wrote {path}");
    }
}
