//! Regenerates the experiment tables of EXPERIMENTS.md.
//!
//! ```text
//! experiments            # run everything
//! experiments e2 e6      # run selected experiments
//! experiments --json out.json e5a
//! experiments --chrome-trace trace.json e12
//! experiments --bench-json BENCH_E14.json e14
//! experiments --quota-json BENCH_E15.json e15
//! experiments --profile-json BENCH_E16.json --profile-flame e16-flame.txt e16
//! experiments --infer-json BENCH_E17.json --infer-policy inferred.policy --infer-diff e17-diff.json e17
//! experiments --interp-json BENCH_E18.json e18
//! experiments --control-json BENCH_E19.json e19
//! experiments --memgov-json BENCH_E20.json e20
//! ```

use std::io::Write;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        args.remove(pos);
        if pos < args.len() {
            json_path = Some(args.remove(pos));
        } else {
            eprintln!("--json needs a file path");
            std::process::exit(2);
        }
    }
    let mut bench_json_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--bench-json") {
        args.remove(pos);
        if pos < args.len() {
            bench_json_path = Some(args.remove(pos));
        } else {
            eprintln!("--bench-json needs a file path");
            std::process::exit(2);
        }
    }
    let mut quota_json_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--quota-json") {
        args.remove(pos);
        if pos < args.len() {
            quota_json_path = Some(args.remove(pos));
        } else {
            eprintln!("--quota-json needs a file path");
            std::process::exit(2);
        }
    }
    let mut profile_json_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--profile-json") {
        args.remove(pos);
        if pos < args.len() {
            profile_json_path = Some(args.remove(pos));
        } else {
            eprintln!("--profile-json needs a file path");
            std::process::exit(2);
        }
    }
    let mut profile_flame_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--profile-flame") {
        args.remove(pos);
        if pos < args.len() {
            profile_flame_path = Some(args.remove(pos));
        } else {
            eprintln!("--profile-flame needs a file path");
            std::process::exit(2);
        }
    }
    let mut infer_json_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--infer-json") {
        args.remove(pos);
        if pos < args.len() {
            infer_json_path = Some(args.remove(pos));
        } else {
            eprintln!("--infer-json needs a file path");
            std::process::exit(2);
        }
    }
    let mut infer_policy_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--infer-policy") {
        args.remove(pos);
        if pos < args.len() {
            infer_policy_path = Some(args.remove(pos));
        } else {
            eprintln!("--infer-policy needs a file path");
            std::process::exit(2);
        }
    }
    let mut infer_diff_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--infer-diff") {
        args.remove(pos);
        if pos < args.len() {
            infer_diff_path = Some(args.remove(pos));
        } else {
            eprintln!("--infer-diff needs a file path");
            std::process::exit(2);
        }
    }
    let mut interp_json_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--interp-json") {
        args.remove(pos);
        if pos < args.len() {
            interp_json_path = Some(args.remove(pos));
        } else {
            eprintln!("--interp-json needs a file path");
            std::process::exit(2);
        }
    }
    let mut control_json_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--control-json") {
        args.remove(pos);
        if pos < args.len() {
            control_json_path = Some(args.remove(pos));
        } else {
            eprintln!("--control-json needs a file path");
            std::process::exit(2);
        }
    }
    let mut memgov_json_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--memgov-json") {
        args.remove(pos);
        if pos < args.len() {
            memgov_json_path = Some(args.remove(pos));
        } else {
            eprintln!("--memgov-json needs a file path");
            std::process::exit(2);
        }
    }
    let mut chrome_path: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--chrome-trace") {
        args.remove(pos);
        if pos < args.len() {
            chrome_path = Some(args.remove(pos));
        } else {
            eprintln!("--chrome-trace needs a file path");
            std::process::exit(2);
        }
    }
    let ids: Vec<String> = if args.is_empty() {
        jmp_bench::EXPERIMENT_IDS
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args
    };

    // When a data-plane summary was requested, run E14 once and reuse its
    // tables for the report, so the JSON and the printed tables describe
    // the same run.
    let e14_full = bench_json_path
        .as_ref()
        .map(|_| jmp_bench::exp_throughput::e14_data_plane_full());
    // Same single-run discipline for the E15 quota-storm summary.
    let e15_full = quota_json_path
        .as_ref()
        .map(|_| jmp_bench::exp_quota::e15_quota_storm_full());
    // And for the E16 profile artifacts (either flag triggers the run).
    let e16_full = (profile_json_path.is_some() || profile_flame_path.is_some())
        .then(jmp_bench::exp_profile::e16_profile_full);
    // And for the E17 inference artifacts (any of the three flags).
    let e17_full =
        (infer_json_path.is_some() || infer_policy_path.is_some() || infer_diff_path.is_some())
            .then(jmp_bench::exp_infer::e17_infer_full);
    // And for the E18 interpreter summary.
    let e18_full = interp_json_path
        .as_ref()
        .map(|_| jmp_bench::exp_interp::e18_interp_full());
    // And for the E19 control-plane scale-out summary.
    let e19_full = control_json_path
        .as_ref()
        .map(|_| jmp_bench::exp_control::e19_control_full());
    // And for the E20 memory-governance summary.
    let e20_full = memgov_json_path
        .as_ref()
        .map(|_| jmp_bench::exp_memgov::e20_memgov_full());

    let mut all_tables = Vec::new();
    for id in &ids {
        let already_ran = match id.to_ascii_lowercase().as_str() {
            "e14" => e14_full.as_ref().map(|(tables, _)| tables.clone()),
            "e15" => e15_full.as_ref().map(|(tables, _)| tables.clone()),
            "e16" => e16_full.as_ref().map(|(tables, _)| tables.clone()),
            "e17" => e17_full.as_ref().map(|(tables, _)| tables.clone()),
            "e18" => e18_full.as_ref().map(|(tables, _)| tables.clone()),
            "e19" => e19_full.as_ref().map(|(tables, _)| tables.clone()),
            "e20" => e20_full.as_ref().map(|(tables, _)| tables.clone()),
            _ => None,
        };
        let tables = already_ran.or_else(|| jmp_bench::run_experiment(id));
        match tables {
            Some(tables) => {
                for table in tables {
                    println!("{table}");
                    all_tables.push(table);
                }
            }
            None => {
                eprintln!(
                    "unknown experiment {id:?}; known: {}",
                    jmp_bench::EXPERIMENT_IDS.join(", ")
                );
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = bench_json_path {
        // The E14 data-plane summary: scalar throughput/wakeup numbers plus
        // the tables they came from, for CI threshold checks.
        #[derive(serde::Serialize)]
        struct BenchRun {
            summary: jmp_bench::exp_throughput::E14Summary,
            tables: Vec<jmp_bench::table::Table>,
        }
        let (tables, summary) = e14_full.expect("e14 ran for --bench-json");
        let run = BenchRun { summary, tables };
        let json = serde_json::to_string_pretty(&run).expect("bench summary serializes");
        std::fs::write(&path, json).expect("write bench json output");
        eprintln!("wrote {path}");
    }

    if let Some(path) = quota_json_path {
        // The E15 quota-storm summary: victim-latency containment and
        // enforcement accounting plus the tables, for CI threshold checks.
        #[derive(serde::Serialize)]
        struct QuotaRun {
            summary: jmp_bench::exp_quota::E15Summary,
            tables: Vec<jmp_bench::table::Table>,
        }
        let (tables, summary) = e15_full.expect("e15 ran for --quota-json");
        let run = QuotaRun { summary, tables };
        let json = serde_json::to_string_pretty(&run).expect("quota summary serializes");
        std::fs::write(&path, json).expect("write quota json output");
        eprintln!("wrote {path}");
    }

    if profile_json_path.is_some() || profile_flame_path.is_some() {
        let (_, artifacts) = e16_full.expect("e16 ran for --profile-json/--profile-flame");
        if let Some(path) = profile_json_path {
            // The E16 profile artifacts: the scalar summary (CI gates the
            // overhead), plus the full per-app/VM-wide ProfileReport.
            let json =
                serde_json::to_string_pretty(&artifacts).expect("profile artifacts serialize");
            std::fs::write(&path, json).expect("write profile json output");
            eprintln!("wrote {path}");
        }
        if let Some(path) = profile_flame_path {
            // flamegraph.pl-compatible collapsed stacks of the same run.
            std::fs::write(&path, &artifacts.flamegraph).expect("write flamegraph output");
            eprintln!("wrote {path}");
        }
    }

    if infer_json_path.is_some() || infer_policy_path.is_some() || infer_diff_path.is_some() {
        let (tables, artifacts) = e17_full.expect("e17 ran for --infer-*");
        if let Some(path) = infer_json_path {
            // The E17 inference summary plus its tables: CI gates on zero
            // replay denials and the strict grant-count reduction.
            #[derive(serde::Serialize)]
            struct InferRun {
                summary: jmp_bench::exp_infer::E17Summary,
                tables: Vec<jmp_bench::table::Table>,
            }
            let run = InferRun {
                summary: artifacts.summary.clone(),
                tables,
            };
            let json = serde_json::to_string_pretty(&run).expect("infer summary serializes");
            std::fs::write(&path, json).expect("write infer json output");
            eprintln!("wrote {path}");
        }
        if let Some(path) = infer_policy_path {
            // The inferred least-privilege policy, loadable by Policy::parse.
            std::fs::write(&path, &artifacts.policy_text).expect("write inferred policy");
            eprintln!("wrote {path}");
        }
        if let Some(path) = infer_diff_path {
            // The exercised-vs-configured diff of the hand-written policy.
            let json = serde_json::to_string_pretty(&artifacts.diff).expect("diff serializes");
            std::fs::write(&path, json).expect("write infer diff output");
            eprintln!("wrote {path}");
        }
    }

    if let Some(path) = interp_json_path {
        // The E18 interpreter summary: seed-vs-pre-decoded speedups, the
        // fusion ratio, and the differential-corpus verdict, plus the
        // tables, for CI threshold checks.
        #[derive(serde::Serialize)]
        struct InterpRun {
            summary: jmp_bench::exp_interp::E18Summary,
            tables: Vec<jmp_bench::table::Table>,
        }
        let (tables, summary) = e18_full.expect("e18 ran for --interp-json");
        let run = InterpRun { summary, tables };
        let json = serde_json::to_string_pretty(&run).expect("interp summary serializes");
        std::fs::write(&path, json).expect("write interp json output");
        eprintln!("wrote {path}");
    }

    if let Some(path) = control_json_path {
        // The E19 control-plane summary: per-op latency vs fleet size and
        // the lazy-store accounting, plus the tables, for CI threshold
        // checks.
        #[derive(serde::Serialize)]
        struct ControlRun {
            summary: jmp_bench::exp_control::E19Summary,
            tables: Vec<jmp_bench::table::Table>,
        }
        let (tables, summary) = e19_full.expect("e19 ran for --control-json");
        let run = ControlRun { summary, tables };
        let json = serde_json::to_string_pretty(&run).expect("control summary serializes");
        std::fs::write(&path, json).expect("write control json output");
        eprintln!("wrote {path}");
    }

    if let Some(path) = memgov_json_path {
        // The E20 memory-governance summary: bomb containment, checkpoint
        // fidelity, and accounting overhead, plus the tables, for CI
        // threshold checks.
        #[derive(serde::Serialize)]
        struct MemGovRun {
            summary: jmp_bench::exp_memgov::E20Summary,
            tables: Vec<jmp_bench::table::Table>,
        }
        let (tables, summary) = e20_full.expect("e20 ran for --memgov-json");
        let run = MemGovRun { summary, tables };
        let json = serde_json::to_string_pretty(&run).expect("memgov summary serializes");
        std::fs::write(&path, json).expect("write memgov json output");
        eprintln!("wrote {path}");
    }

    if let Some(path) = json_path {
        // Alongside the tables, dump a metrics snapshot and profiler report
        // of the E11 scripted session so the run is inspectable offline
        // (hub counters, histograms, event and audit totals, opcode mix,
        // sampled stacks).
        #[derive(serde::Serialize)]
        struct Run {
            tables: Vec<jmp_bench::table::Table>,
            metrics: jmp_obs::HubSnapshot,
            profile: jmp_obs::ProfileReport,
        }
        let (metrics, profile) = jmp_bench::exp_obs::session_snapshot();
        let run = Run {
            tables: all_tables,
            metrics,
            profile,
        };
        let json = serde_json::to_string_pretty(&run).expect("tables serialize");
        let mut file = std::fs::File::create(&path).expect("create json output");
        file.write_all(json.as_bytes()).expect("write json output");
        eprintln!("wrote {path}");
    }

    if let Some(path) = chrome_path {
        // A Chrome trace_event export of the scripted trace scenario —
        // loadable in chrome://tracing or Perfetto.
        let json = jmp_bench::exp_trace::chrome_trace_sample();
        std::fs::write(&path, json).expect("write chrome trace output");
        eprintln!("wrote {path}");
    }
}
