//! E16: the always-on profiler — baseline opcode mix of two concurrent
//! applications with distinct workloads, the sampled stacks the VM
//! profiler thread collects for them, and the accounting overhead.
//!
//! Three tables:
//!
//! * **E16a** — per-view opcode accounting: instructions, apportioned
//!   cost, and the busiest opcodes, VM-wide and for each application
//!   (arithmetic-heavy `cruncher` vs string/native-heavy `mixer` — the
//!   mixes must differ, or attribution is broken).
//! * **E16b** — sampled collapsed stacks per view: distinct stacks and the
//!   heaviest stack with its sampled weight.
//! * **E16c** — accounting overhead on a direct interpreter (no VM):
//!   per-instruction cost with accounting off vs on, interleaved runs,
//!   round minima. The CI gate on the exported summary is ≤5% (release
//!   build).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jmp_obs::{ProfileReport, Profiler};
use jmp_vm::interp::{assemble, Interpreter, NativeHost, NoNatives, Value};

use crate::harness::{register_app, standard_runtime};
use crate::table::Table;

/// Arithmetic-heavy workload: `add`/`sub`/comparison dominated.
const CRUNCH: &str = r#"
    class Crunch
    method main/1 locals=2
        push_int 0
        store 1
    loop:
        load 0
        push_int 0
        gt
        jump_if_false done
        load 1
        load 0
        add
        store 1
        load 0
        push_int 1
        sub
        store 0
        jump loop
    done:
        load 1
        return_value
"#;

/// String/native-heavy workload: `concat` and `native` dominated.
const MIX: &str = r#"
    class Mix
    method main/1 locals=2
    loop:
        load 0
        push_int 0
        gt
        jump_if_false done
        push_str "x="
        load 0
        concat
        store 1
        push_int 1
        native ping/1
        pop
        load 0
        push_int 1
        sub
        store 0
        jump loop
    done:
        load 1
        return_value
"#;

/// Iterations per interpreter run inside the applications.
const APP_N: i64 = 5_000;
/// Stack samples (beyond the pre-run baseline) to wait for before
/// stopping the applications; at the 10ms default interval this bounds
/// the scenario to a few hundred milliseconds.
const SAMPLES_WANTED: u64 = 8;
/// Hard cap on the scenario, for loaded machines.
const SCENARIO_TIMEOUT: Duration = Duration::from_secs(20);

/// Interleaved off/on rounds for the overhead measurement. Each round is
/// a few hundred microseconds, so a generous count is cheap and gives
/// the round minima plenty of chances to land on a quiet slice.
const OVERHEAD_ROUNDS: usize = 41;
/// Iterations per overhead run.
const OVERHEAD_N: i64 = 40_000;

static STOP: AtomicBool = AtomicBool::new(false);

struct Ping;
impl NativeHost for Ping {
    fn invoke(&self, _name: &str, _args: Vec<Value>) -> jmp_vm::Result<Value> {
        Ok(Value::Int(1))
    }
}

/// Scalar results of E16, exported as `BENCH_E16.json` for CI gates.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct E16Summary {
    /// Instructions accounted VM-wide.
    pub vm_instructions: u64,
    /// Applications with their own profile view.
    pub apps_profiled: usize,
    /// The VM-wide busiest opcode by apportioned cost.
    pub top_opcode: String,
    /// Distinct collapsed stacks sampled VM-wide.
    pub distinct_stacks: usize,
    /// Stack samples the profiler thread took during the scenario.
    pub samples_taken: u64,
    /// Accounting batches flushed at safepoints.
    pub flushes: u64,
    /// Round-minimum per-instruction cost with accounting off (ns).
    pub accounting_off_ns: f64,
    /// Round-minimum per-instruction cost with accounting on (ns).
    pub accounting_on_ns: f64,
    /// `(on/off - 1) * 100` — the CI gate is ≤5% on release builds.
    pub overhead_pct: f64,
}

/// Everything E16 exports: the scalar summary, the full [`ProfileReport`]
/// of the scenario, and its flamegraph.pl collapsed-stack rendering.
#[derive(Debug, Clone, serde::Serialize)]
pub struct E16Artifacts {
    /// Scalar summary (CI gates).
    pub summary: E16Summary,
    /// The full profile report of the two-application scenario.
    pub report: ProfileReport,
    /// VM-wide flamegraph.pl collapsed-stack text.
    pub flamegraph: String,
}

/// Runs the two-application scenario and returns the profile report taken
/// after both applications finished.
fn scenario_report() -> ProfileReport {
    let rt = standard_runtime(None);
    let profiler = rt.vm().obs().profiler().clone();
    profiler.reset();
    let samples_base = profiler.samples_taken();
    STOP.store(false, Ordering::SeqCst);

    let crunch_image = Arc::new(assemble(CRUNCH).expect("crunch assembles"));
    register_app(&rt, "cruncher", move |_| {
        let interp = Interpreter::new(Arc::clone(&crunch_image), Arc::new(NoNatives))?;
        while !STOP.load(Ordering::SeqCst) {
            interp.run("main", vec![Value::Int(APP_N)])?;
        }
        Ok(())
    });
    let mix_image = Arc::new(assemble(MIX).expect("mix assembles"));
    register_app(&rt, "mixer", move |_| {
        let interp = Interpreter::new(Arc::clone(&mix_image), Arc::new(Ping))?;
        while !STOP.load(Ordering::SeqCst) {
            interp.run("main", vec![Value::Int(APP_N)])?;
        }
        Ok(())
    });

    let cruncher = rt
        .launch_as("alice", "cruncher", &[])
        .expect("cruncher launches");
    let mixer = rt.launch_as("bob", "mixer", &[]).expect("mixer launches");

    // Let the VM profiler thread observe both applications' stacks, then
    // stop them.
    let deadline = Instant::now() + SCENARIO_TIMEOUT;
    while profiler.samples_taken() < samples_base + SAMPLES_WANTED && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    STOP.store(true, Ordering::SeqCst);
    cruncher.wait_for().expect("cruncher finishes");
    mixer.wait_for().expect("mixer finishes");

    // Read through the permission-gated facade (the harness thread has an
    // empty stack, i.e. full host trust) so the gate is exercised too.
    let report = jmp_core::obs::profile_report(&rt).expect("host context reads the profile");
    rt.shutdown();
    report
}

/// Measures per-instruction cost with accounting off vs on, on a direct
/// interpreter with an explicit profiler (no VM), interleaved rounds.
/// Returns the `(off_ns, on_ns)` round *minima*: scheduler noise only
/// ever adds time, so the minimum estimates the intrinsic cost and keeps
/// the CI overhead gate stable on loaded machines (medians were seen
/// drifting several percent run to run under background load).
fn measured_overhead() -> (f64, f64) {
    let image = Arc::new(assemble(CRUNCH).expect("crunch assembles"));
    let off_profiler = Profiler::new();
    off_profiler.set_enabled(false);
    let off = Interpreter::new(Arc::clone(&image), Arc::new(NoNatives))
        .expect("off interpreter builds")
        .with_profiler(off_profiler);
    let on_profiler = Profiler::new();
    on_profiler.set_sampling(false);
    let on = Interpreter::new(Arc::clone(&image), Arc::new(NoNatives))
        .expect("on interpreter builds")
        .with_profiler(on_profiler);

    let run = |i: &Interpreter| i.run("main", vec![Value::Int(OVERHEAD_N)]).expect("runs");
    // Warm-up, and count the instructions one run executes.
    run(&off);
    run(&on);
    let before = off.stats().instructions();
    run(&off);
    let insns_per_run = (off.stats().instructions() - before) as f64;

    let mut off_best = f64::INFINITY;
    let mut on_best = f64::INFINITY;
    for _ in 0..OVERHEAD_ROUNDS {
        let t = Instant::now();
        run(&off);
        off_best = off_best.min(t.elapsed().as_nanos() as f64 / insns_per_run);
        let t = Instant::now();
        run(&on);
        on_best = on_best.min(t.elapsed().as_nanos() as f64 / insns_per_run);
    }
    (off_best, on_best)
}

/// Runs E16 and returns both the tables and the exported artifacts.
pub fn e16_profile_full() -> (Vec<Table>, E16Artifacts) {
    let report = scenario_report();
    let (off_ns, on_ns) = measured_overhead();
    let overhead_pct = if off_ns > 0.0 {
        (on_ns / off_ns - 1.0) * 100.0
    } else {
        0.0
    };

    let mut e16a = Table::new(
        "E16a",
        "per-opcode accounting — two concurrent applications, distinct mixes",
        &["view", "instructions", "cost ms", "busiest opcodes (count)"],
    );
    let views: Vec<&jmp_obs::ProfileView> = std::iter::once(&report.vm)
        .chain(report.apps.iter())
        .collect();
    for view in &views {
        let busiest: Vec<String> = view
            .top_opcodes(3)
            .iter()
            .map(|o| format!("{} ({})", o.opcode, o.count))
            .collect();
        e16a.rowd(&[
            view.label.clone(),
            view.instructions.to_string(),
            format!("{:.2}", view.cost_ns as f64 / 1e6),
            busiest.join(", "),
        ]);
    }
    e16a.note("cost is wall time apportioned over the batch by opcode weight;");
    e16a.note("the two applications must show different dominant opcodes.");

    let mut e16b = Table::new(
        "E16b",
        "sampled collapsed stacks (profiler thread, 10ms interval)",
        &["view", "stacks", "heaviest stack", "weight us"],
    );
    for view in &views {
        let heaviest = view.stacks.iter().max_by_key(|(_, w)| **w);
        e16b.rowd(&[
            view.label.clone(),
            view.stacks.len().to_string(),
            heaviest.map_or_else(|| "-".to_string(), |(k, _)| k.clone()),
            heaviest.map_or_else(|| "0".to_string(), |(_, w)| w.to_string()),
        ]);
    }
    e16b.note("stack keys are flamegraph.pl collapsed frames (Class;Class.method).");

    let mut e16c = Table::new(
        "E16c",
        "accounting overhead on the interpreter hot loop (no VM)",
        &["accounting off", "accounting on", "delta"],
    );
    e16c.rowd(&[
        format!("{off_ns:.1} ns/insn"),
        format!("{on_ns:.1} ns/insn"),
        format!("{overhead_pct:+.1}%"),
    ]);
    e16c.note("interleaved runs, round minima; the CI budget is +5% on release builds.");

    let top_opcode = report
        .vm
        .opcodes
        .first()
        .map_or_else(String::new, |o| o.opcode.clone());
    let summary = E16Summary {
        vm_instructions: report.vm.instructions,
        apps_profiled: report.apps.len(),
        top_opcode,
        distinct_stacks: report.vm.stacks.len(),
        samples_taken: report.samples_taken,
        flushes: report.flushes,
        accounting_off_ns: off_ns,
        accounting_on_ns: on_ns,
        overhead_pct,
    };
    let flamegraph = report.flamegraph(None);
    (
        vec![e16a, e16b, e16c],
        E16Artifacts {
            summary,
            report,
            flamegraph,
        },
    )
}

/// E16: the experiment tables.
pub fn e16_profile() -> Vec<Table> {
    e16_profile_full().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_profiles_both_apps_and_exports() {
        let _serial = crate::harness::latency_test_guard();
        let (tables, artifacts) = e16_profile_full();
        assert_eq!(tables.len(), 3);
        let summary = &artifacts.summary;
        assert!(summary.vm_instructions > 0, "opcodes were accounted");
        assert_eq!(summary.apps_profiled, 2, "both applications got views");
        assert!(summary.samples_taken > 0, "the profiler thread sampled");
        assert!(
            summary.distinct_stacks > 0,
            "sampled stacks reached the report"
        );
        // The two workloads must be distinguishable: the mixer's view
        // accounts concat/native work the cruncher never executes.
        let mixer = artifacts
            .report
            .apps
            .iter()
            .find(|v| {
                v.opcodes
                    .iter()
                    .any(|o| o.opcode == "concat" && o.count > 0)
            })
            .expect("one view is concat-heavy");
        assert!(mixer
            .opcodes
            .iter()
            .any(|o| o.opcode == "native" && o.count > 0));
        // Flamegraph lines are "stack weight".
        assert!(!artifacts.flamegraph.is_empty());
        for line in artifacts.flamegraph.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("collapsed-stack line");
            assert!(!stack.is_empty());
            weight.parse::<u64>().expect("numeric weight");
        }
        // The report round-trips through JSON (what --profile-json writes).
        let json = serde_json::to_string(&artifacts.report).expect("report serializes");
        let back: ProfileReport = serde_json::from_str(&json).expect("report deserializes");
        assert_eq!(back.vm.instructions, summary.vm_instructions);
        // Loose in-tree sanity bound: debug builds inflate the relative
        // cost of the tally; the strict ≤5% gate runs in CI on the release
        // summary.
        assert!(
            summary.overhead_pct < 60.0,
            "accounting overhead out of range: {:.1}%",
            summary.overhead_pct
        );
    }
}
