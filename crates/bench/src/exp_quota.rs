//! E15: resource-quota containment under an exec storm — three hostile
//! applications (a thread bomb, a pipe flood, and an event storm against a
//! stalling listener) run beside a victim that repeatedly execs and exits,
//! with the per-application resource quotas switched on and off.
//!
//! Two tables:
//!
//! * **E15a** — victim exec→exit latency: alone (baseline), under the storm
//!   with no quotas, and under the storm with the hostile user capped. The
//!   acceptance gate is the capped run staying within 2x of the baseline.
//! * **E15b** — enforcement accounting for the capped run: `quota.denied`,
//!   audited denials for the hostile user, recorded breaches, and every
//!   ledger draining to zero after the storm.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jmp_awt::{ComponentId, DispatchMode, Toolkit};
use jmp_core::MpRuntime;
use jmp_security::Policy;
use jmp_vm::AppContext;

use crate::harness::register_app;
use crate::table::Table;

/// Victim launches measured per scenario (median reported).
const VICTIM_RUNS: usize = 24;
/// Busy-work floor inside the victim, so launch jitter does not dominate.
const VICTIM_WORK: Duration = Duration::from_micros(300);

/// Bomber threads the thread-bomb app runs in parallel.
const BOMBERS: usize = 4;
/// Spawn attempts per bomber.
const BOMB_ATTEMPTS: usize = 700;
/// How long each successfully spawned worker holds its thread slot. The
/// bomb attacks the resource the ledger governs — live thread slots and the
/// spawn path — not CPU time, so workers sleep rather than spin.
const BOMB_WORK: Duration = Duration::from_millis(20);
/// Pacing between spawn attempts.
const BOMB_PACE: Duration = Duration::from_micros(100);
/// Backoff after a denied spawn (keeps breach counts bounded).
const BOMB_BACKOFF: Duration = Duration::from_micros(200);

/// Pipes the flood app tries to fill and hold.
const FLOOD_PIPES: usize = 12;
/// Capacity of each flood pipe.
const FLOOD_PIPE_CAPACITY: usize = 64 * 1024;
/// Chunk size of each flood write.
const FLOOD_CHUNK: usize = 4 * 1024;
/// Post-fill one-byte nudge writes (denied every time once over quota).
const FLOOD_NUDGES: usize = 600;

/// Actions injected at the storm app's stalling listener.
const STORM_EVENTS: u32 = 800;
/// How long the storm app's listener stalls per delivered action.
const STORM_STALL: Duration = Duration::from_micros(500);

fn ok(flag: bool) -> &'static str {
    if flag {
        "ok"
    } else {
        "FAILED"
    }
}

/// The storm policy: the standard experiment users plus the hostile user
/// `mallory`; with `quotas` on, mallory's grants cap every ledger resource.
fn storm_policy(quotas: bool) -> Policy {
    let limits = if quotas {
        r#"
        grant user "mallory" {
            permission resource "limit.threads:8";
            permission resource "limit.pipe.bytes:16384";
            permission resource "limit.queued.events:32";
            permission resource "limit.handles:16";
        };
        "#
    } else {
        ""
    };
    let text = format!(
        "{}\n{}\n{limits}",
        jmp_shell::default_policy_text(),
        r#"
        grant user "alice" {
            permission file "/home/alice/-" "read,write,delete";
        };
        "#
    );
    Policy::parse(&text).expect("storm policy parses")
}

fn storm_runtime(quotas: bool) -> MpRuntime {
    let rt = MpRuntime::builder()
        .policy(storm_policy(quotas))
        .user("alice", "apw")
        .user("mallory", "mpw")
        .gui(DispatchMode::PerApplication)
        .build()
        .expect("runtime builds");
    jmp_shell::install(&rt).expect("tools install");
    rt
}

/// Registers the victim: a short exec→exit program with a fixed busy-work
/// floor and one pipe round-trip, touching the allocation paths the storm
/// contends on.
fn register_victim(rt: &MpRuntime) {
    register_app(rt, "victim", |_| {
        let deadline = Instant::now() + VICTIM_WORK;
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
        let (out, input) = jmp_core::pipes::make_pipe()?;
        out.write(b"victim-roundtrip")?;
        let mut buf = [0u8; 16];
        let mut got = 0;
        while got < buf.len() {
            got += input.read(&mut buf[got..])?;
        }
        Ok(())
    });
}

/// Registers the hostile trio. Every loop is bounded (so breach counts stay
/// below the hard-breach threshold and scenarios terminate) and watches
/// `stop`.
fn register_hostiles(rt: &MpRuntime, stop: &Arc<AtomicBool>) {
    // Thread bomb: parallel bombers spawning short-lived busy workers as
    // fast as the runtime lets them.
    let stop_bomb = Arc::clone(stop);
    register_app(rt, "bomb", move |_| {
        let vm = jmp_vm::Vm::current().unwrap();
        let stop = Arc::clone(&stop_bomb);
        let bombers: Vec<_> = (0..BOMBERS)
            .map(|i| {
                let stop = Arc::clone(&stop);
                vm.thread_builder()
                    .name(format!("bomber-{i}"))
                    .spawn(move |vm| {
                        let mut denied = 0u64;
                        for _ in 0..BOMB_ATTEMPTS {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            match vm.thread_builder().spawn(|_| {
                                let _ = jmp_vm::thread::sleep(BOMB_WORK);
                            }) {
                                Ok(_worker) => {
                                    let _ = jmp_vm::thread::sleep(BOMB_PACE);
                                }
                                Err(_) => {
                                    denied += 1;
                                    let _ = jmp_vm::thread::sleep(BOMB_BACKOFF);
                                }
                            }
                        }
                        std::hint::black_box(denied);
                    })
            })
            .collect();
        for bomber in bombers.into_iter().flatten() {
            bomber.join_timeout(Duration::from_secs(10));
        }
        Ok(())
    });

    // Pipe flood: fill pipes without ever reading them, hold the buffers,
    // and keep nudging until told to stop.
    let stop_flood = Arc::clone(stop);
    register_app(rt, "flood", move |_| {
        let mut denied = 0u64;
        let chunk = vec![0xddu8; FLOOD_CHUNK];
        let mut pipes = Vec::new();
        'fill: for _ in 0..FLOOD_PIPES {
            if stop_flood.load(Ordering::Relaxed) {
                break;
            }
            let Ok((out, input)) = jmp_core::pipes::make_pipe_with_capacity(FLOOD_PIPE_CAPACITY)
            else {
                denied += 1;
                let _ = jmp_vm::thread::sleep(Duration::from_micros(200));
                continue;
            };
            // Stop one chunk short of the capacity so an unquota'd write
            // never blocks (nothing ever reads these pipes).
            let mut buffered = 0;
            while buffered + FLOOD_CHUNK < FLOOD_PIPE_CAPACITY {
                if stop_flood.load(Ordering::Relaxed) {
                    pipes.push((out, input));
                    break 'fill;
                }
                match out.write(&chunk) {
                    Ok(()) => buffered += FLOOD_CHUNK,
                    Err(_) => {
                        denied += 1;
                        let _ = jmp_vm::thread::sleep(Duration::from_micros(200));
                        break;
                    }
                }
            }
            pipes.push((out, input));
        }
        let mut nudges = 0;
        while !stop_flood.load(Ordering::Relaxed) && nudges < FLOOD_NUDGES {
            if let Some((out, _)) = pipes.first() {
                if out.write(&[0u8]).is_err() {
                    denied += 1;
                }
            }
            nudges += 1;
            let _ = jmp_vm::thread::sleep(Duration::from_millis(1));
        }
        std::hint::black_box(denied);
        Ok(())
    });

    // Event storm target: a window whose action listener stalls, so
    // injected actions pile up in the owned queue instead of draining.
    register_app(rt, "storm", move |_| {
        let window = jmp_core::gui::create_window("storm")?;
        let button = window.add_button("spin");
        window.on_action(button, move |_| {
            let _ = jmp_vm::thread::sleep(STORM_STALL);
        });
        // Stay alive until the scenario stops the app (§5.4 idiom).
        let _ = jmp_vm::thread::sleep(Duration::from_secs(600));
        Ok(())
    });
}

/// One scenario run's measurements.
struct Outcome {
    /// Median victim exec→exit latency, milliseconds.
    victim_ms: f64,
    /// VM-wide `quota.denied` counter at the end of the run.
    quota_denied: u64,
    /// Audit records attributed to the hostile user.
    audited: usize,
    /// Recorded quota breaches summed over the hostile applications.
    breaches: u64,
    /// Whether every application ledger drained to zero after the storm.
    drained: bool,
}

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Runs one scenario: optionally launch the hostile trio as `mallory`, then
/// measure victim launches, then tear the storm down and audit the wreckage.
fn run_scenario(quotas: bool, attackers: bool) -> Outcome {
    let rt = storm_runtime(quotas);
    let stop = Arc::new(AtomicBool::new(false));
    register_victim(&rt);
    register_hostiles(&rt, &stop);

    let mut contexts: Vec<Arc<AppContext>> = Vec::new();
    let mut hostile_contexts: Vec<Arc<AppContext>> = Vec::new();
    let mut waiters = Vec::new();
    let mut storm_app = None;
    let mut injector = None;
    if attackers {
        let bomb = rt.launch_as("mallory", "bomb", &[]).unwrap();
        let flood = rt.launch_as("mallory", "flood", &[]).unwrap();
        let storm = rt.launch_as("mallory", "storm", &[]).unwrap();
        let toolkit = rt.toolkit().unwrap().clone();
        assert!(
            Toolkit::wait_until(Duration::from_secs(5), || toolkit.window_count() == 1),
            "storm window opens"
        );
        let window = toolkit.windows_of_app(storm.id().0)[0];
        let display = rt.display().unwrap().clone();
        let stop_injector = Arc::clone(&stop);
        injector = Some(std::thread::spawn(move || {
            let mut injected = 0u32;
            while !stop_injector.load(Ordering::Relaxed) && injected < STORM_EVENTS {
                if display.inject_action(window, ComponentId(1)).is_err() {
                    break;
                }
                injected += 1;
                if injected.is_multiple_of(64) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }));
        for app in [&bomb, &flood, &storm] {
            hostile_contexts.push(Arc::clone(app.context()));
            contexts.push(Arc::clone(app.context()));
        }
        waiters.push(bomb);
        waiters.push(flood);
        storm_app = Some(storm);
        // Let the storm ramp before measuring.
        std::thread::sleep(Duration::from_millis(30));
    }

    let mut latencies = Vec::with_capacity(VICTIM_RUNS);
    for _ in 0..VICTIM_RUNS {
        let start = Instant::now();
        let victim = rt.launch_as("alice", "victim", &[]).unwrap();
        assert_eq!(victim.wait_for().unwrap(), 0, "victim exits cleanly");
        latencies.push(start.elapsed().as_secs_f64() * 1e3);
        contexts.push(Arc::clone(victim.context()));
    }
    let victim_ms = median_ms(&mut latencies);

    stop.store(true, Ordering::Relaxed);
    if let Some(injector) = injector {
        injector.join().expect("injector joins");
    }
    for app in waiters {
        assert_eq!(app.wait_for().unwrap(), 0, "hostile app exits on stop");
    }
    if let Some(storm) = storm_app {
        storm.stop(0).expect("storm app stops");
        let _ = storm.wait_for();
    }
    assert!(rt.await_idle(Duration::from_secs(10)), "runtime settles");

    let quota_denied = rt.vm().obs().vm_metrics().counter("quota.denied").get();
    let audited = rt.vm().obs().audit_query(Some("mallory"), None).len();
    let breaches = hostile_contexts.iter().map(|ctx| ctx.breaches()).sum();
    // Teardown is asynchronous past await_idle (a dispatcher can still be
    // unwinding); poll the ledgers rather than sampling them once.
    let drained = Toolkit::wait_until(Duration::from_secs(5), || {
        contexts.iter().all(|ctx| ctx.ledger().is_drained())
    });
    rt.shutdown();
    Outcome {
        victim_ms,
        quota_denied,
        audited,
        breaches,
        drained,
    }
}

/// Machine-readable summary of the E15 run (for `--quota-json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct E15Summary {
    /// Victim exec→exit median, no attackers, quotas off (ms).
    pub baseline_victim_ms: f64,
    /// Victim exec→exit median under the storm with quotas off (ms).
    pub storm_off_victim_ms: f64,
    /// Victim exec→exit median under the storm with quotas on (ms).
    pub storm_on_victim_ms: f64,
    /// `storm_on_victim_ms / baseline_victim_ms` — the containment ratio.
    pub victim_ratio: f64,
    /// VM-wide `quota.denied` counter after the quotas-on storm.
    pub quota_denied: u64,
    /// Audit records attributed to the hostile user in the quotas-on storm.
    pub audited_denials: usize,
    /// Breaches recorded across the hostile applications (quotas on).
    pub hostile_breaches: u64,
    /// Every ledger drained to zero after the quotas-on storm.
    pub ledgers_drained: bool,
}

/// Runs E15 and returns both the tables and the scalar summary.
pub fn e15_quota_storm_full() -> (Vec<Table>, E15Summary) {
    let baseline = run_scenario(false, false);
    let storm_off = run_scenario(false, true);
    let storm_on = run_scenario(true, true);
    let ratio = storm_on.victim_ms / baseline.victim_ms;

    let mut e15a = Table::new(
        "E15a",
        "victim exec→exit latency under a hostile exec storm",
        &["scenario", "victims", "median ms", "vs baseline", "verdict"],
    );
    e15a.rowd(&[
        "alone (no attackers, quotas off)".to_string(),
        format!("{VICTIM_RUNS}"),
        format!("{:.2}", baseline.victim_ms),
        "1.0x".to_string(),
        "baseline".to_string(),
    ]);
    e15a.rowd(&[
        "storm, quotas off".to_string(),
        format!("{VICTIM_RUNS}"),
        format!("{:.2}", storm_off.victim_ms),
        format!("{:.1}x", storm_off.victim_ms / baseline.victim_ms),
        "unbounded".to_string(),
    ]);
    e15a.rowd(&[
        "storm, hostile user capped".to_string(),
        format!("{VICTIM_RUNS}"),
        format!("{:.2}", storm_on.victim_ms),
        format!("{ratio:.1}x"),
        ok(ratio <= 2.0).to_string(),
    ]);
    e15a.note(format!(
        "storm: {BOMBERS} bombers x {BOMB_ATTEMPTS} thread spawns, {FLOOD_PIPES} unread pipes \
         filled to {FLOOD_PIPE_CAPACITY}B, {STORM_EVENTS} actions at a {STORM_STALL:?}-stall \
         listener; victim does {VICTIM_WORK:?} of work plus one pipe round-trip"
    ));
    e15a.note("acceptance: capped-storm victim latency <= 2x the no-attacker baseline");

    let mut e15b = Table::new(
        "E15b",
        "quota enforcement accounting (storm with hostile user capped)",
        &["check", "value", "verdict"],
    );
    e15b.rowd(&[
        "vm quota.denied counter".to_string(),
        format!("{}", storm_on.quota_denied),
        ok(storm_on.quota_denied > 0).to_string(),
    ]);
    e15b.rowd(&[
        "audited denials for user mallory".to_string(),
        format!("{}", storm_on.audited),
        ok(storm_on.audited > 0).to_string(),
    ]);
    e15b.rowd(&[
        "breaches recorded on hostile ledgers".to_string(),
        format!("{}", storm_on.breaches),
        ok(storm_on.breaches > 0).to_string(),
    ]);
    e15b.rowd(&[
        "all ledgers drained after the storm".to_string(),
        format!("{}", storm_on.drained),
        ok(storm_on.drained).to_string(),
    ]);
    e15b.note(
        "every refused allocation fails with a typed QuotaExceeded, lands in the audit \
         trail, and bumps quota.denied; the ledgers read zero once the storm is reaped",
    );

    let summary = E15Summary {
        baseline_victim_ms: baseline.victim_ms,
        storm_off_victim_ms: storm_off.victim_ms,
        storm_on_victim_ms: storm_on.victim_ms,
        victim_ratio: ratio,
        quota_denied: storm_on.quota_denied,
        audited_denials: storm_on.audited,
        hostile_breaches: storm_on.breaches,
        ledgers_drained: storm_on.drained,
    };
    (vec![e15a, e15b], summary)
}

/// Runs E15 (tables only).
pub fn e15_quota_storm() -> Vec<Table> {
    e15_quota_storm_full().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_meets_the_acceptance_thresholds() {
        let _serial = crate::harness::latency_test_guard();
        let (tables, summary) = e15_quota_storm_full();
        assert_eq!(tables.len(), 2);
        assert!(
            !tables
                .iter()
                .any(|t| t.rows.iter().flatten().any(|c| c.contains("FAILED"))),
            "all verdicts ok: {tables:#?}"
        );
        assert!(
            summary.victim_ratio <= 2.0,
            "victim containment {:.2}x",
            summary.victim_ratio
        );
        assert!(summary.quota_denied > 0);
        assert!(summary.audited_denials > 0);
        assert!(summary.ledgers_drained);
    }
}
